#!/usr/bin/env python3
"""Cluster monitoring: the paper's §6 future-work extension, working.

The DSN'06 paper closes by proposing to apply its methodology "to
monitor intrusions and failures in a large cluster of machines dedicated
to running an e-commerce application".  This example does exactly that
with the *unchanged* pipeline: twelve replicas report (load, latency,
CPU) once a minute; the shared workload plays the hidden environment.

Three incidents are simulated:
  1. a memory leak wedging one replica          -> error / stuck-at
  2. a crypto-miner hiding behind faked metrics -> detected, type per
     the paper's "attacks can mimic errors" caveat
  3. a colluding third of the replicas hiding the evening traffic peak
     from the aggregated dashboard              -> attack / deletion

Run:  python examples/cluster_monitoring.py        (~15 s)
"""

from repro.clusters import (
    cryptominer_campaign,
    dashboard_deletion_campaign,
    memory_leak_campaign,
    run_cluster_scenario,
)


def show(title, run, sensor_id=None):
    print(f"=== {title} ===")
    pipeline = run.pipeline
    print(f"windows processed: {pipeline.n_windows}")
    model = pipeline.correct_model()
    print(
        "workload states (load, latency, cpu):",
        ", ".join(model.label(s) for s in model.state_ids),
    )
    tracked = sorted({t.sensor_id for t in pipeline.tracks.tracks})
    print(f"replicas tracked: {tracked} (truth: {sorted(run.ground_truth)})")
    system = pipeline.system_diagnosis()
    print(f"system verdict: {system.anomaly_type.value}")
    if sensor_id is not None:
        diagnosis = pipeline.diagnose_sensor(sensor_id)
        verdict = diagnosis.anomaly_type.value if diagnosis else "none"
        print(f"replica {sensor_id} diagnosis: {verdict}")
    print()


def main() -> None:
    print("simulating a 12-replica e-commerce cluster, 6 days each ...\n")

    run = run_cluster_scenario(n_days=6, campaign=memory_leak_campaign())
    show("memory leak on replica 4", run, sensor_id=4)

    run = run_cluster_scenario(n_days=6, campaign=cryptominer_campaign())
    show("crypto-miner hiding on replica 7", run, sensor_id=7)

    run = run_cluster_scenario(n_days=6, campaign=dashboard_deletion_campaign())
    show("colluding replicas hide the evening peak", run)

    print(
        "The pipeline code is identical to the sensor-network deployment —\n"
        "only the environment model changed, which is the paper's claim\n"
        "that the framework generalises to other distributed systems."
    )


if __name__ == "__main__":
    main()
