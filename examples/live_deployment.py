#!/usr/bin/env python3
"""Live deployment: streaming detection on a simulated mote field.

Unlike the batch examples, this drives the time-stepped network
simulator directly: motes placed on a field, distance-dependent radio
loss, batteries draining, and the detection pipeline consuming windows
*as they complete*.  A drift fault is injected mid-run and the script
logs operator-style events the moment filtered alarms rise and fall.

Run:  python examples/live_deployment.py        (~10 s)
"""

from repro import DetectionPipeline, PipelineConfig
from repro.faults import ActivationSchedule, DriftFault, FaultInjector
from repro.sensornet import (
    BatteryModel,
    CollectorNode,
    Deployment,
    GDIDiurnalEnvironment,
    Mote,
    NetworkSimulator,
)

SIM_DAYS = 12
FAULT_SENSOR = 4
FAULT_ONSET_DAYS = 3.0


def main() -> None:
    environment = GDIDiurnalEnvironment(n_days=SIM_DAYS, seed=7)

    # A 10-mote field; link quality falls off with distance to the base
    # station at the origin.
    deployment = Deployment.random_field(n_motes=10, field_size=180.0, seed=7)
    motes = [
        Mote(
            sensor_id=p.sensor_id,
            environment=environment,
            noise_std=0.35,
            battery=BatteryModel(drain_per_sample=1.5e-4),
            seed=7,
        )
        for p in deployment.placements
    ]
    print("deployment:")
    for placement in deployment.placements:
        loss = deployment.loss_probability_at(placement.distance)
        print(
            f"  mote {placement.sensor_id}: {placement.distance:5.1f} m "
            f"from base, packet loss {100 * loss:.0f}%"
        )

    # Sensor 4 starts drifting toward a dead-humidity state on day 3.
    injector = FaultInjector(environment=environment)
    injector.add(
        DriftFault(terminal=(15.0, 1.0), ramp_minutes=5 * 24 * 60.0),
        sensor_ids=[FAULT_SENSOR],
        schedule=ActivationSchedule(start_minutes=FAULT_ONSET_DAYS * 24 * 60.0),
    )

    config = PipelineConfig()
    pipeline = DetectionPipeline(config)
    collector = CollectorNode(window_minutes=config.window_minutes)
    simulator = NetworkSimulator(
        environment=environment,
        motes=motes,
        network=deployment.build_network(),
        collector=collector,
        corruption=injector,
    )

    def on_window(window) -> None:
        result = pipeline.process_window(window)
        for transition in result.filter_transitions:
            day = window.start_minutes / (24 * 60.0)
            action = "RAISED" if transition.raised else "cleared"
            print(
                f"  day {day:5.2f}: filtered alarm {action} "
                f"for sensor {transition.sensor_id}"
            )

    print(f"\nstreaming {SIM_DAYS} days of deployment ...")
    simulator.run(SIM_DAYS * 24 * 60.0, on_window=on_window)

    stats = collector.stats
    print(
        f"\ndelivery: {stats.accepted} accepted, {stats.lost} lost, "
        f"{stats.malformed} malformed "
        f"({100 * stats.acceptance_rate:.0f}% usable)"
    )
    diagnosis = pipeline.diagnose_sensor(FAULT_SENSOR)
    if diagnosis is None:
        print(f"sensor {FAULT_SENSOR}: no diagnosis (fault not yet tracked)")
    else:
        print(
            f"sensor {FAULT_SENSOR}: {diagnosis.category.value} / "
            f"{diagnosis.anomaly_type.value} "
            f"(ground truth: drift toward a stuck state)"
        )
    model = pipeline.correct_model()
    print("clean environment model M_C:", [model.label(s) for s in model.state_ids])


if __name__ == "__main__":
    main()
