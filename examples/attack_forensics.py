#!/usr/bin/env python3
"""Attack forensics: the paper's §4.2 injection study end to end.

Mounts the paper's two attacks with one third of the sensors
compromised — a Dynamic Deletion that hides the island's hottest state,
and a Dynamic Creation that injects a spurious warm/dry state at
night — then shows how the structural analysis of B^CO identifies each
attack and which sensors participated.

Run:  python examples/attack_forensics.py        (~25 s)
"""

from repro.analysis.metrics import detection_outcomes, summarize_detection
from repro.experiments import creation_scenario, deletion_scenario, table6, table7


def report(run, table_result) -> None:
    print(table_result.render())
    pipeline = run.pipeline
    truth = {s: 0.0 for s in run.campaign.malicious_sensor_ids()}
    outcomes = detection_outcomes(pipeline, truth, run.config.window_minutes)
    summary = summarize_detection(outcomes)
    print(
        f"\ndetection: precision {summary.precision:.2f}, "
        f"recall {summary.recall:.2f}"
    )
    for sensor_id in run.campaign.malicious_sensor_ids():
        diagnosis = pipeline.diagnose_sensor(sensor_id)
        verdict = diagnosis.anomaly_type.value if diagnosis else "undetected"
        print(f"  sensor {sensor_id}: {verdict}")
    print()


def main() -> None:
    print("=== Dynamic Deletion (Fig. 10 / Table 6) ===\n")
    run = deletion_scenario(n_days=21)
    report(run, table6(run))

    print("=== Dynamic Creation (Fig. 11 / Table 7) ===\n")
    run = creation_scenario(n_days=21)
    report(run, table7(run))

    print(
        "Both attacks keep every malicious value inside its admissible\n"
        "range (temperature [-10, 60] °C, humidity [0, 100] %), so plain\n"
        "range checking never fires — yet the B^CO structure exposes them."
    )


if __name__ == "__main__":
    main()
