#!/usr/bin/env python3
"""Habitat monitoring: the paper's §4.1 fault study end to end.

Reproduces the Great Duck Island July scenario: ten motes sample
temperature and humidity every five minutes; sensor 6 degrades toward a
stuck (15, 1) state while losing packets, and sensor 7 develops a
calibration error.  The script prints the reproduction of Figures 7, 8,
and 12 and Tables 2-5.

Run:  python examples/habitat_monitoring.py        (~15 s)
"""

from repro.experiments import (
    faulty_sensors_scenario,
    figure7,
    figure8,
    figure12,
    table2_3,
    table4_5,
)


def main() -> None:
    print("simulating one GDI month with faulty sensors 6 and 7 ...")
    run = faulty_sensors_scenario(n_days=21)

    print()
    print(figure7(run).render())
    print()
    print(figure8(run).render())
    print()
    print(table2_3(run).render())
    print()
    print(table4_5(run).render())
    print()
    print(figure12(run).render())

    print("\nsummary:")
    for sensor_id in (6, 7):
        diagnosis = run.pipeline.diagnose_sensor(sensor_id)
        assert diagnosis is not None
        print(
            f"  sensor {sensor_id}: {diagnosis.category.value} / "
            f"{diagnosis.anomaly_type.value}"
        )
    print(
        "  (the paper classifies sensor 6 stuck-at and sensor 7 "
        "calibration — §4.1)"
    )


if __name__ == "__main__":
    main()
