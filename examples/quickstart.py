#!/usr/bin/env python3
"""Quickstart: detect and diagnose a stuck sensor in two dozen lines.

Generates a week of synthetic Great Duck Island data with one sensor
stuck at (15 °C, 1 %RH), runs the paper's detection pipeline, and prints
the clean environment model plus the per-sensor diagnosis.

Run:  python examples/quickstart.py
"""

from repro import DetectionPipeline, PipelineConfig
from repro.faults import ActivationSchedule, CampaignSpec, PacketDropper, StuckAtFault
from repro.traces import GDITraceConfig, build_environment, generate_gdi_trace
from repro.traces import window_trace_by_samples


def main() -> None:
    # 1. A corruption plan: sensor 6 sticks at (15, 1) after day 2, and
    #    its degrading radio drops about half of its packets.
    campaign = CampaignSpec(name="quickstart")
    campaign.plant(
        PacketDropper(inner=StuckAtFault(value=(15.0, 1.0)), drop_probability=0.5),
        sensor_ids=[6],
        schedule=ActivationSchedule(start_minutes=2 * 24 * 60.0),
    )

    # 2. Generate one synthetic GDI week and corrupt it.
    trace_config = GDITraceConfig(n_days=10)
    injector = campaign.build_injector(build_environment(trace_config))
    trace = generate_gdi_trace(trace_config, corruption=injector)
    print(f"trace: {len(trace)} readings from sensors {trace.sensor_ids}")

    # 3. Run the paper's pipeline (Table 1 parameters by default).
    config = PipelineConfig()
    pipeline = DetectionPipeline(config)
    for window in window_trace_by_samples(trace, config.window_samples):
        pipeline.process_window(window)

    # 4. The clean environment model M_C (step 5 of the methodology).
    model = pipeline.correct_model()
    print("\nM_C states (temp, humidity):")
    for state_id in model.state_ids:
        print(
            f"  {model.label(state_id)}  "
            f"visited {100 * model.visit_fraction(state_id):.0f}% of windows"
        )

    # 5. Diagnoses: who misbehaved, and was it an error or an attack?
    print("\ndiagnoses:")
    diagnoses = pipeline.diagnose_all()
    if not diagnoses:
        print("  (no anomalies)")
    for sensor_id, diagnosis in diagnoses.items():
        print(
            f"  sensor {sensor_id}: {diagnosis.category.value} / "
            f"{diagnosis.anomaly_type.value} "
            f"(confidence {diagnosis.confidence:.2f})"
        )
    system = pipeline.system_diagnosis()
    print(f"\nsystem-level verdict: {system.anomaly_type.value}")


if __name__ == "__main__":
    main()
