"""Cluster-monitoring scenario builders (the §6 extension, end to end).

Builds a monitored e-commerce cluster out of the existing substrate:
each replica is a :class:`~repro.sensornet.sensor.Mote` observing the
shared :class:`EcommerceWorkloadEnvironment`, metric reports flow over
(reliable, datacentre-grade) links to a collector, and the unchanged
:class:`~repro.core.pipeline.DetectionPipeline` detects and diagnoses:

* a replica with a **memory leak** — latency drifts up until the node
  is effectively wedged (a drift-to-stuck *error*);
* a **compromised replica hiding a crypto-miner** — it under-reports
  its CPU by a constant factor (a calibration *error* signature, though
  malicious in origin: exactly the paper's caveat that an adversary can
  mimic an error);
* a colluding set of replicas mounting a **deletion attack** that hides
  the evening peak from the aggregated dashboard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..config import PipelineConfig
from ..core.pipeline import DetectionPipeline
from ..faults.attacks import DynamicDeletionAttack
from ..faults.base import ActivationSchedule
from ..faults.campaign import CampaignSpec, choose_compromised
from ..faults.errors import CalibrationFault, DriftFault
from ..sensornet.collector import CollectorNode
from ..sensornet.network import StarNetwork
from ..sensornet.sensor import Mote
from ..sensornet.simulator import NetworkSimulator
from .environment import CLUSTER_ADMISSIBLE_RANGES, EcommerceWorkloadEnvironment

#: Metric reports every minute; windows of 15 samples (quarter hour).
CLUSTER_SAMPLE_PERIOD_MINUTES = 1.0
CLUSTER_WINDOW_SAMPLES = 15


def cluster_pipeline_config() -> PipelineConfig:
    """Pipeline parameters adapted to the cluster's attribute scales.

    Same methodology, different units: the workload states sit ~8-15
    normalised units apart, so the spawn/merge thresholds shrink
    accordingly; everything else keeps its Table 1 value.
    """
    return PipelineConfig(
        n_sensors=12,
        window_samples=CLUSTER_WINDOW_SAMPLES,
        sample_period_minutes=CLUSTER_SAMPLE_PERIOD_MINUTES,
        spawn_threshold=7.0,
        merge_threshold=3.5,
    )


@dataclass
class ClusterRun:
    """Outcome of a monitored-cluster simulation."""

    pipeline: DetectionPipeline
    campaign: Optional[CampaignSpec]
    environment: EcommerceWorkloadEnvironment
    n_replicas: int

    @property
    def ground_truth(self) -> Dict[int, str]:
        """replica id -> planted condition kind."""
        return self.campaign.ground_truth() if self.campaign else {}


def run_cluster_scenario(
    n_replicas: int = 12,
    n_days: int = 7,
    seed: int = 77,
    campaign: Optional[CampaignSpec] = None,
    config: Optional[PipelineConfig] = None,
) -> ClusterRun:
    """Simulate a monitored cluster and run the detection pipeline."""
    if n_replicas <= 0:
        raise ValueError("n_replicas must be positive")
    environment = EcommerceWorkloadEnvironment(n_days=n_days, seed=seed)
    replicas = [
        Mote(
            sensor_id=i,
            environment=environment,
            noise_std=0.25,
            seed=seed,
        )
        for i in range(n_replicas)
    ]
    # Datacentre links: essentially lossless, rare malformed reports.
    network = StarNetwork.homogeneous(
        sensor_ids=range(n_replicas),
        loss_probability=0.005,
        corruption_probability=0.001,
        seed=seed,
    )
    config = config or cluster_pipeline_config()
    pipeline = DetectionPipeline(config)
    collector = CollectorNode(window_minutes=config.window_minutes)
    injector = campaign.build_injector(environment) if campaign else None
    simulator = NetworkSimulator(
        environment=environment,
        motes=replicas,
        network=network,
        collector=collector,
        sample_period_minutes=config.sample_period_minutes,
        corruption=injector,
    )
    simulator.run(
        n_days * 24 * 60.0, on_window=lambda w: pipeline.process_window(w)
    )
    return ClusterRun(
        pipeline=pipeline,
        campaign=campaign,
        environment=environment,
        n_replicas=n_replicas,
    )


def memory_leak_campaign(
    replica_id: int = 4, onset_days: float = 1.0, seed: int = 77
) -> CampaignSpec:
    """A replica whose latency drifts up until it is wedged."""
    campaign = CampaignSpec(name="memory-leak")
    campaign.plant(
        DriftFault(
            # Wedged node: load accepted collapses, latency pinned at
            # the timeout ceiling, CPU thrashing.
            terminal=(1.0, 55.0, 48.0),
            ramp_minutes=3 * 24 * 60.0,
        ),
        [replica_id],
        ActivationSchedule(start_minutes=onset_days * 24 * 60.0),
    )
    return campaign


def cryptominer_campaign(
    replica_id: int = 7, onset_days: float = 1.0, seed: int = 77
) -> CampaignSpec:
    """A compromised replica misreporting its metrics to hide a miner.

    The falsified metrics are constant *factors* of the true ones.  The
    replica is reliably detected and tracked; because the falsification
    does not slide along the workload's state ladder the way the GDI
    calibration fault does, its type typically lands in
    {calibration, unknown_error} — an instance of the paper's §3.3
    caveat that an adversary can mimic an accidental error and of the
    quantisation limits of state-snapped attribute ratios.
    """
    campaign = CampaignSpec(name="cryptominer")
    campaign.plant(
        CalibrationFault(gains=(1.0, 1.35, 0.55)),
        [replica_id],
        ActivationSchedule(start_minutes=onset_days * 24 * 60.0),
    )
    return campaign


def dashboard_deletion_campaign(
    n_replicas: int = 12,
    fraction: float = 1.0 / 3.0,
    seed: int = 77,
    peak_state: Optional[np.ndarray] = None,
    hold_state: Optional[np.ndarray] = None,
) -> CampaignSpec:
    """Colluding replicas hide the evening peak from the dashboard.

    Defaults anchor the deleted/held states on the workload model's own
    peak and mid-load conditions.
    """
    environment = EcommerceWorkloadEnvironment(seed=seed)
    if peak_state is None:
        peak_state = environment.value_at(20 * 60.0)  # evening peak
    if hold_state is None:
        hold_state = environment.value_at(15 * 60.0)  # mid-afternoon
    compromised = choose_compromised(range(n_replicas), fraction, seed=seed)
    campaign = CampaignSpec(name="dashboard-deletion")
    campaign.plant(
        DynamicDeletionAttack(
            deleted_state=tuple(float(x) for x in peak_state),
            hold_state=tuple(float(x) for x in hold_state),
            radius=7.0,
            fraction=len(compromised) / n_replicas,
            ranges=CLUSTER_ADMISSIBLE_RANGES,
        ),
        compromised,
    )
    return campaign
