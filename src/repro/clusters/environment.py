"""E-commerce cluster workload environment (the paper's §6 extension).

The paper closes by proposing to apply the methodology "to monitor
intrusions and failures in a large cluster of machines dedicated to
running an e-commerce application".  The framework is attribute-vector
agnostic, so the extension needs only a new environment model: the
hidden phenomenon Θ(t) becomes the *shared workload* every replica of
the cluster observes, and each replica's metrics play the role of a
sensor's readings.

Attributes (in normalised operational units, the feature scaling any
monitoring deployment performs so distances are comparable):

* ``load`` — request rate, in hundreds of requests/second (0-20),
* ``latency`` — median response time, in tens of milliseconds (0-50),
* ``cpu`` — CPU utilisation, in percent halved (0-50).

The workload follows a business-day cycle (quiet nights, office-hours
ramp, an evening shopping peak) with occasional flash-sale surges, and
latency/CPU respond to load through a simple queueing-flavoured model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..sensornet.environment import MINUTES_PER_DAY, EnvironmentModel

#: Admissible ranges for the cluster attributes (normalised units), the
#: analogue of the GDI temperature/humidity ranges.
CLUSTER_ADMISSIBLE_RANGES: Tuple[Tuple[float, float], ...] = (
    (0.0, 25.0),  # load: hundreds of requests/second
    (0.0, 60.0),  # latency: tens of milliseconds
    (0.0, 50.0),  # cpu: percent / 2
)


@dataclass
class EcommerceWorkloadEnvironment(EnvironmentModel):
    """Shared cluster workload Θ(t) = (load, latency, cpu).

    Parameters
    ----------
    base_load / peak_load:
        Night floor and evening peak of the request rate (normalised
        units; defaults span 3-18 ≈ 300-1800 req/s).
    surge_probability:
        Chance per day of a flash-sale surge (adds a two-hour spike).
    seed:
        Seed for per-day load modulation and surge placement.
    """

    base_load: float = 3.0
    peak_load: float = 18.0
    surge_probability: float = 0.15
    surge_boost: float = 5.0
    n_days: int = 31
    seed: int = 77
    attribute_names: Tuple[str, ...] = ("load", "latency", "cpu")
    _day_factors: np.ndarray = field(init=False, repr=False)
    _surge_days: set = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.peak_load <= self.base_load:
            raise ValueError("peak_load must exceed base_load")
        if self.n_days <= 0:
            raise ValueError("n_days must be positive")
        rng = np.random.default_rng(self.seed)
        self._day_factors = 1.0 + rng.normal(0.0, 0.05, size=self.n_days + 1)
        self._surge_days = {
            day
            for day in range(self.n_days)
            if rng.random() < self.surge_probability
        }

    def load_at(self, minutes: float) -> float:
        """Request rate in normalised units."""
        day = int(minutes // MINUTES_PER_DAY)
        hour = (minutes % MINUTES_PER_DAY) / 60.0
        # Office-hours ramp with an evening shopping peak at ~20:00.
        daily = 0.5 * (1.0 - math.cos(2.0 * math.pi * (hour - 4.0) / 24.0))
        evening = math.exp(-(((hour - 20.0) % 24.0) ** 2) / 8.0)
        shape = 0.7 * daily + 0.6 * evening
        factor = self._day_factors[min(day, len(self._day_factors) - 1)]
        load = self.base_load + (self.peak_load - self.base_load) * shape * factor
        if day in self._surge_days and 12.0 <= hour < 14.0:
            load += self.surge_boost
        return float(max(load, 0.0))

    def latency_for_load(self, load: float) -> float:
        """Median latency in normalised units.

        Smooth, bounded load response (quadratic): the environment must
        stay approximately constant within an observation window for
        Eq. 1's assumption to hold, so the unbounded M/M/1 knee is
        deliberately avoided (a saturating service tier behaves this
        way once autoscaling/admission control engages).
        """
        utilisation = min(load / 22.0, 1.0)
        return float(2.0 + 22.0 * utilisation**2)

    def cpu_for_load(self, load: float) -> float:
        """CPU utilisation in normalised units (linear with load)."""
        return float(min(4.0 + 2.1 * load, 50.0))

    def value_at(self, minutes: float) -> np.ndarray:
        load = self.load_at(minutes)
        return np.asarray(
            [load, self.latency_for_load(load), self.cpu_for_load(load)],
            dtype=float,
        )
