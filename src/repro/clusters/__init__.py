"""The paper's §6 future-work extension: cluster monitoring.

Applies the unchanged detection/classification pipeline to a simulated
e-commerce server cluster — the replicas' shared workload plays Θ(t),
their metric reports play sensor readings.
"""

from .environment import (
    CLUSTER_ADMISSIBLE_RANGES,
    EcommerceWorkloadEnvironment,
)
from .scenario import (
    CLUSTER_SAMPLE_PERIOD_MINUTES,
    CLUSTER_WINDOW_SAMPLES,
    ClusterRun,
    cluster_pipeline_config,
    cryptominer_campaign,
    dashboard_deletion_campaign,
    memory_leak_campaign,
    run_cluster_scenario,
)

__all__ = [
    "CLUSTER_ADMISSIBLE_RANGES",
    "CLUSTER_SAMPLE_PERIOD_MINUTES",
    "CLUSTER_WINDOW_SAMPLES",
    "ClusterRun",
    "EcommerceWorkloadEnvironment",
    "cluster_pipeline_config",
    "cryptominer_campaign",
    "dashboard_deletion_campaign",
    "memory_leak_campaign",
    "run_cluster_scenario",
]
