"""Adversarial fuzz/soak harness for the detection pipeline.

Drives :class:`~repro.core.pipeline.DetectionPipeline` with seeded,
deterministic *pathological* window streams — NaN/Inf bursts, constant
floods, all-sensors-corrupt windows, ±1e300 magnitudes, duplicate
sensor ids, empty and single-sensor windows, interleaved with healthy
traffic — and asserts after every step that

* ``process_window`` never raises (a crash is a finding),
* every invariant of :mod:`~repro.resilience.invariants` holds, and
* (periodically) a checkpoint JSON round-trip reproduces the digest
  bit-exactly, i.e. pathological state stays checkpointable.

The harness is exposed as ``repro fuzz --seeds N`` (and a ``--soak``
variant with longer streams and denser checkpointing); the CI smoke job
runs it as a blocking gate.  Everything is derived from
``np.random.default_rng(base_seed + seed_index)``, so any finding
reproduces from its seed alone.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import PipelineConfig
from ..core.pipeline import DetectionPipeline
from ..sensornet.collector import ObservationWindow
from ..sensornet.messages import SensorMessage
from .checkpoint import restore, snapshot
from .invariants import check_invariants

#: The pathological window kinds the generator draws from.
PATHOLOGY_KINDS = (
    "healthy",
    "nan_burst",
    "inf_burst",
    "constant_flood",
    "all_corrupt",
    "huge_magnitude",
    "duplicate_ids",
    "empty",
    "single_sensor",
)

#: Draw weights: healthy traffic dominates so models actually form and
#: the pathologies hit *established* state, which is the hard case.
_KIND_WEIGHTS = {
    "healthy": 0.40,
    "nan_burst": 0.08,
    "inf_burst": 0.08,
    "constant_flood": 0.07,
    "all_corrupt": 0.09,
    "huge_magnitude": 0.08,
    "duplicate_ids": 0.07,
    "empty": 0.06,
    "single_sensor": 0.07,
}

_BASE_VALUE = np.array([20.0, 75.0])


def _window(index: int, rows: List[Tuple[int, Tuple[float, float]]]) -> ObservationWindow:
    """Build a 60-minute window from ``(sensor_id, attributes)`` rows."""
    start = (index - 1) * 60.0
    messages = tuple(
        SensorMessage(
            sensor_id=sensor_id,
            timestamp=start + 1.0 + offset * 0.25,
            attributes=tuple(float(x) for x in attrs),
        )
        for offset, (sensor_id, attrs) in enumerate(rows)
    )
    return ObservationWindow(
        index=index,
        start_minutes=start,
        end_minutes=start + 60.0,
        messages=messages,
        n_attributes=2,
    )


def pathological_window(
    index: int, kind: str, rng: np.random.Generator, n_sensors: int = 8
) -> ObservationWindow:
    """One deterministic pathological window of the given kind."""
    if kind not in PATHOLOGY_KINDS:
        raise ValueError(f"unknown pathology kind {kind!r}")
    healthy = [
        (sensor, tuple(_BASE_VALUE + rng.normal(0.0, 0.5, size=2)))
        for sensor in range(n_sensors)
    ]
    if kind == "healthy":
        rows = healthy
    elif kind == "nan_burst":
        rows = list(healthy)
        for sensor in rng.choice(n_sensors, size=rng.integers(1, n_sensors + 1), replace=False):
            vec = list(rows[sensor][1])
            vec[int(rng.integers(0, 2))] = float("nan")
            rows[sensor] = (int(sensor), tuple(vec))
    elif kind == "inf_burst":
        rows = list(healthy)
        for sensor in rng.choice(n_sensors, size=rng.integers(1, n_sensors + 1), replace=False):
            sign = -1.0 if rng.random() < 0.5 else 1.0
            rows[sensor] = (int(sensor), (sign * float("inf"), sign * float("inf")))
    elif kind == "constant_flood":
        # Every sensor hammers the identical constant, twelve times over.
        rows = [
            (sensor, (42.0, 42.0))
            for sensor in range(n_sensors)
            for _ in range(12)
        ]
    elif kind == "all_corrupt":
        # Every sensor corrupt at once, scattered: no majority exists.
        rows = [
            (sensor, tuple(rng.uniform(-300.0, 300.0, size=2)))
            for sensor in range(n_sensors)
        ]
    elif kind == "huge_magnitude":
        rows = list(healthy)
        for sensor in rng.choice(n_sensors, size=rng.integers(1, n_sensors + 1), replace=False):
            sign = -1.0 if rng.random() < 0.5 else 1.0
            rows[sensor] = (int(sensor), (sign * 1e300, sign * 1e300))
    elif kind == "duplicate_ids":
        rows = list(healthy)
        for _ in range(int(rng.integers(1, 6))):
            sensor = int(rng.integers(0, n_sensors))
            rows.append(
                (sensor, tuple(_BASE_VALUE + rng.normal(0.0, 30.0, size=2)))
            )
    elif kind == "empty":
        rows = []
    else:  # single_sensor
        sensor = int(rng.integers(0, n_sensors))
        rows = [(sensor, tuple(_BASE_VALUE + rng.normal(0.0, 0.5, size=2)))]
    return _window(index, rows)


@dataclass
class FuzzReport:
    """Outcome of one fuzz/soak run (see :func:`run_fuzz`)."""

    n_seeds: int
    windows_per_seed: int
    base_seed: int
    mode: str
    soak: bool = False
    n_windows: int = 0
    kind_counts: Dict[str, int] = field(default_factory=dict)
    #: ``"seed S window W: invariant: detail"`` per violation found.
    violations: List[str] = field(default_factory=list)
    #: ``"seed S window W kind K: ExceptionRepr"`` per crash.
    crashes: List[str] = field(default_factory=list)
    #: Digest mismatches / restore errors from checkpoint round-trips.
    checkpoint_failures: List[str] = field(default_factory=list)
    meta_alarms_raised: int = 0
    frozen_windows: int = 0

    @property
    def ok(self) -> bool:
        """True when the run found nothing: no crashes, no violations,
        no checkpoint divergence."""
        return not (self.violations or self.crashes or self.checkpoint_failures)

    def render(self) -> str:
        """Human-readable multi-line report."""
        label = "soak" if self.soak else "fuzz"
        lines = [
            f"{label}: {self.n_seeds} seeds x {self.windows_per_seed} windows "
            f"(base seed {self.base_seed}, supervisor mode {self.mode}) -> "
            f"{self.n_windows} windows processed",
            "pathologies: "
            + ", ".join(
                f"{kind}={self.kind_counts.get(kind, 0)}"
                for kind in PATHOLOGY_KINDS
            ),
            f"meta-alarms raised: {self.meta_alarms_raised} "
            f"(learning frozen for {self.frozen_windows} windows)",
            f"crashes: {len(self.crashes)}",
            f"invariant violations: {len(self.violations)}",
            f"checkpoint round-trip failures: {len(self.checkpoint_failures)}",
        ]
        for crash in self.crashes[:10]:
            lines.append(f"  crash: {crash}")
        for violation in self.violations[:10]:
            lines.append(f"  violation: {violation}")
        for failure in self.checkpoint_failures[:10]:
            lines.append(f"  checkpoint: {failure}")
        lines.append("verdict: " + ("OK" if self.ok else "FINDINGS"))
        return "\n".join(lines)


def _roundtrip_digest(pipeline: DetectionPipeline) -> str:
    """Digest of the pipeline after a snapshot -> JSON -> restore trip."""
    payload = json.loads(json.dumps(snapshot(pipeline), sort_keys=True))
    return restore(payload).digest()


def run_fuzz(
    n_seeds: int = 25,
    windows_per_seed: int = 80,
    base_seed: int = 0,
    mode: str = "warn",
    checkpoint_every: int = 5,
    n_sensors: int = 8,
    config: Optional[PipelineConfig] = None,
    soak: bool = False,
) -> FuzzReport:
    """Fuzz the pipeline with ``n_seeds`` independent pathological streams.

    Each seed drives a fresh supervised pipeline through
    ``windows_per_seed`` windows whose kinds are drawn from
    :data:`PATHOLOGY_KINDS`.  After every window all invariants are
    checked; every ``checkpoint_every`` windows (and once at end of
    stream) the pipeline is snapshotted, JSON round-tripped, restored,
    and digest-compared.  ``mode`` selects the supervisor mode under
    test (warn-mode :class:`InvariantWarning` emissions are captured
    into the report rather than escalating under ``-W error``).
    """
    if n_seeds < 1 or windows_per_seed < 1:
        raise ValueError("n_seeds and windows_per_seed must be positive")
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be positive")
    report = FuzzReport(
        n_seeds=n_seeds,
        windows_per_seed=windows_per_seed,
        base_seed=base_seed,
        mode=mode,
        soak=soak,
        kind_counts={kind: 0 for kind in PATHOLOGY_KINDS},
    )
    kinds = list(_KIND_WEIGHTS)
    weights = np.array([_KIND_WEIGHTS[k] for k in kinds])
    weights = weights / weights.sum()

    for seed_index in range(n_seeds):
        seed = base_seed + seed_index
        rng = np.random.default_rng(seed)
        if config is None:
            run_config = PipelineConfig(
                n_sensors=n_sensors, supervisor_mode=mode
            )
        else:
            run_config = config
        pipeline = DetectionPipeline(run_config)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # findings are *recorded*
            for step in range(1, windows_per_seed + 1):
                kind = str(rng.choice(kinds, p=weights))
                report.kind_counts[kind] += 1
                window = pathological_window(
                    step, kind, rng, n_sensors=n_sensors
                )
                try:
                    result = pipeline.process_window(window)
                except Exception as exc:  # noqa: BLE001 - crash = finding
                    report.crashes.append(
                        f"seed {seed} window {step} kind {kind}: {exc!r}"
                    )
                    break
                report.n_windows += 1
                if result.learning_frozen:
                    report.frozen_windows += 1
                for violation in check_invariants(pipeline):
                    report.violations.append(
                        f"seed {seed} window {step}: "
                        f"{violation.invariant}: {violation.detail}"
                    )
                if step % checkpoint_every == 0 or step == windows_per_seed:
                    try:
                        restored = _roundtrip_digest(pipeline)
                        original = pipeline.digest()
                        if restored != original:
                            report.checkpoint_failures.append(
                                f"seed {seed} window {step}: digest "
                                f"{original[:12]} != restored {restored[:12]}"
                            )
                    except Exception as exc:  # noqa: BLE001
                        report.checkpoint_failures.append(
                            f"seed {seed} window {step}: {exc!r}"
                        )
        if pipeline.supervisor is not None:
            report.meta_alarms_raised += len(pipeline.supervisor.meta_alarms)
    return report


@dataclass
class FleetFuzzReport:
    """Outcome of a fleet-mode fuzz run (see :func:`run_fleet_fuzz`)."""

    n_seeds: int
    n_tenants: int
    n_poisoned: int
    windows_per_seed: int
    base_seed: int
    mode: str
    n_windows: int = 0
    kind_counts: Dict[str, int] = field(default_factory=dict)
    #: ``"seed S tenant T: ..."`` per clean tenant whose fleet result
    #: diverged from its solo ``process_windows_fast`` run.
    mismatches: List[str] = field(default_factory=list)
    #: Unattributable fleet failures (these are *harness* findings).
    crashes: List[str] = field(default_factory=list)
    quarantines: int = 0
    readmissions: int = 0
    degradations: int = 0
    skipped_windows: int = 0

    @property
    def ok(self) -> bool:
        return not (self.mismatches or self.crashes)

    def render(self) -> str:
        lines = [
            f"fleet-fuzz: {self.n_seeds} seeds x {self.n_tenants} tenants "
            f"({self.n_poisoned} poisoned) x {self.windows_per_seed} windows "
            f"(base seed {self.base_seed}, supervisor mode {self.mode}) -> "
            f"{self.n_windows} windows processed",
            "pathologies: "
            + ", ".join(
                f"{kind}={self.kind_counts.get(kind, 0)}"
                for kind in PATHOLOGY_KINDS
            ),
            f"quarantines: {self.quarantines} "
            f"(readmitted {self.readmissions}, degraded {self.degradations}, "
            f"windows skipped {self.skipped_windows})",
            f"clean-tenant solo mismatches: {len(self.mismatches)}",
            f"fleet crashes: {len(self.crashes)}",
        ]
        for mismatch in self.mismatches[:10]:
            lines.append(f"  mismatch: {mismatch}")
        for crash in self.crashes[:10]:
            lines.append(f"  crash: {crash}")
        lines.append("verdict: " + ("OK" if self.ok else "FINDINGS"))
        return "\n".join(lines)


def run_fleet_fuzz(
    n_seeds: int = 5,
    windows_per_seed: int = 60,
    base_seed: int = 0,
    mode: str = "warn",
    n_tenants: int = 6,
    n_poisoned: int = 2,
    n_sensors: int = 8,
) -> FleetFuzzReport:
    """Fuzz an N-tenant resilient fleet with per-tenant pathologies.

    Each seed builds a fleet in which ``n_poisoned`` tenants stream
    windows drawn from all of :data:`PATHOLOGY_KINDS` (under the
    supervisor mode under test) while the remaining tenants stream
    healthy traffic unsupervised.  The fleet advance must never
    propagate a failure, and every non-poisoned tenant must finish
    digest- and snapshot-identical to its own solo
    ``process_windows_fast`` run — the poison one lane over must be
    invisible, bit for bit.
    """
    from ..fleet import ResilientFleetEngine
    from .fleet_chaos import _sha_u64

    if n_seeds < 1 or windows_per_seed < 1:
        raise ValueError("n_seeds and windows_per_seed must be positive")
    if not 0 <= n_poisoned <= n_tenants:
        raise ValueError("n_poisoned must be in [0, n_tenants]")
    report = FleetFuzzReport(
        n_seeds=n_seeds,
        n_tenants=n_tenants,
        n_poisoned=n_poisoned,
        windows_per_seed=windows_per_seed,
        base_seed=base_seed,
        mode=mode,
        kind_counts={kind: 0 for kind in PATHOLOGY_KINDS},
    )
    kinds = list(_KIND_WEIGHTS)
    weights = np.array([_KIND_WEIGHTS[k] for k in kinds])
    weights = weights / weights.sum()

    for seed_index in range(n_seeds):
        seed = base_seed + seed_index
        victims = set(
            sorted(
                range(n_tenants),
                key=lambda tid: _sha_u64(f"fleet-fuzz:{seed}:{tid}"),
            )[:n_poisoned]
        )
        streams: List[List[ObservationWindow]] = []
        for tid in range(n_tenants):
            rng = np.random.default_rng(seed * 100003 + tid)
            stream = []
            for step in range(1, windows_per_seed + 1):
                if tid in victims:
                    kind = str(rng.choice(kinds, p=weights))
                else:
                    kind = "healthy"
                report.kind_counts[kind] += 1
                stream.append(
                    pathological_window(step, kind, rng, n_sensors=n_sensors)
                )
            streams.append(stream)

        def build(tid: int) -> DetectionPipeline:
            return DetectionPipeline(
                PipelineConfig(
                    n_sensors=n_sensors,
                    supervisor_mode=mode if tid in victims else "off",
                )
            )

        solo: Dict[int, Tuple[str, str]] = {}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # findings are *recorded*
            for tid in range(n_tenants):
                if tid in victims:
                    continue
                pipeline = build(tid)
                pipeline.process_windows_fast(list(streams[tid]))
                solo[tid] = (
                    pipeline.digest(),
                    json.dumps(snapshot(pipeline), sort_keys=True),
                )
            engine = ResilientFleetEngine(
                [build(tid) for tid in range(n_tenants)],
                checkpoint_interval=max(8, windows_per_seed // 4),
                probation=8,
            )
            try:
                report.n_windows += engine.process_windows(
                    [list(stream) for stream in streams]
                )
            except Exception as exc:  # noqa: BLE001 - crash = finding
                report.crashes.append(f"seed {seed}: {exc!r}")
                continue
        health = engine.health_report()["counters"]
        report.quarantines += health["quarantines"]
        report.readmissions += health["readmissions"]
        report.degradations += health["degradations"]
        report.skipped_windows += health["skipped_windows"]
        for tid in range(n_tenants):
            if tid in victims:
                continue
            digest = engine.pipelines[tid].digest()
            blob = json.dumps(
                snapshot(engine.pipelines[tid]), sort_keys=True
            )
            if (digest, blob) != solo[tid]:
                report.mismatches.append(
                    f"seed {seed} tenant {tid}: fleet digest "
                    f"{digest[:12]} != solo {solo[tid][0][:12]}"
                )
    return report


def fuzz_command(
    n_seeds: int,
    windows: Optional[int],
    soak: bool,
    base_seed: int,
    mode: str,
    fleet: bool = False,
    tenants: int = 6,
    poisoned: int = 2,
) -> "tuple[str, int]":
    """CLI body for ``repro fuzz``; returns (report text, exit code)."""
    if fleet:
        report = run_fleet_fuzz(
            n_seeds=n_seeds,
            windows_per_seed=windows if windows is not None else 60,
            base_seed=base_seed,
            mode=mode,
            n_tenants=tenants,
            n_poisoned=poisoned,
        )
        return report.render(), 0 if report.ok else 1
    if windows is None:
        windows = 400 if soak else 80
    report = run_fuzz(
        n_seeds=n_seeds,
        windows_per_seed=windows,
        base_seed=base_seed,
        mode=mode,
        checkpoint_every=10 if soak else 5,
        soak=soak,
    )
    return report.render(), 0 if report.ok else 1
