"""Resilience subsystem: surviving infrastructure failures.

The paper's detector runs *on-the-fly* on a collector node fed by lossy
radio links; its windowing tolerates missed and corrupted packets
(§4.1), but a production deployment must also survive failures of the
*infrastructure itself* — collector crashes, bursty loss, duplicated and
out-of-order packets, skewed clocks, non-finite readings.  This package
provides the three pillars:

* :mod:`repro.resilience.checkpoint` — versioned JSON
  ``snapshot()``/``restore()`` of the full :class:`DetectionPipeline`
  state, so a collector can crash mid-trace and resume with identical
  downstream diagnoses.
* :mod:`repro.resilience.chaos` — a :class:`ChaosCampaign` composing
  infrastructure faults (Gilbert–Elliott bursty loss, per-link delay /
  duplication / reordering, clock skew, collector kill + restart from
  checkpoint) orthogonally to the :mod:`repro.faults` data corruptors,
  and reporting graceful-degradation statistics.
* Hardened ingest lives with the collector itself
  (:mod:`repro.sensornet.collector` quarantines duplicate / late /
  non-finite messages) and in the :mod:`repro.core` input guards.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    load_checkpoint,
    restore,
    save_checkpoint,
    snapshot,
)
from .chaos import ChaosCampaign, ChaosReport, ChaosSpec

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "ChaosCampaign",
    "ChaosReport",
    "ChaosSpec",
    "load_checkpoint",
    "restore",
    "save_checkpoint",
    "snapshot",
]
