"""Resilience subsystem: surviving infrastructure failures.

The paper's detector runs *on-the-fly* on a collector node fed by lossy
radio links; its windowing tolerates missed and corrupted packets
(§4.1), but a production deployment must also survive failures of the
*infrastructure itself* — collector crashes, bursty loss, duplicated and
out-of-order packets, skewed clocks, non-finite readings.  This package
provides the three pillars:

* :mod:`repro.resilience.checkpoint` — versioned JSON
  ``snapshot()``/``restore()`` of the full :class:`DetectionPipeline`
  state, so a collector can crash mid-trace and resume with identical
  downstream diagnoses.
* :mod:`repro.resilience.chaos` — a :class:`ChaosCampaign` composing
  infrastructure faults (Gilbert–Elliott bursty loss, per-link delay /
  duplication / reordering, clock skew, collector kill + restart from
  checkpoint) orthogonally to the :mod:`repro.faults` data corruptors,
  and reporting graceful-degradation statistics.
* Hardened ingest lives with the collector itself
  (:mod:`repro.sensornet.collector` quarantines duplicate / late /
  non-finite messages) and in the :mod:`repro.core` input guards.

PR 4 added the *algorithmic* robustness leg:

* :mod:`repro.resilience.invariants` — a declarative registry of
  runtime invariants (finite centroids, bounded state count, alias
  acyclicity, row-stochastic HMMs, bounded track lengths) with bounded
  repair actions.
* :mod:`repro.resilience.supervisor` — checks the registry after every
  window (modes ``off | warn | repair | raise``) and monitors the
  paper's majority assumption, raising a :class:`ModelUnderAttack`
  meta-alarm and freezing β/γ learning while it is violated.
* :mod:`repro.resilience.fuzz` — the seeded adversarial fuzz/soak
  harness behind ``repro fuzz`` (including the ``--fleet`` mode that
  drives a poisoned multi-tenant engine).

The fleet-isolation leg (DESIGN.md §14) adds:

* :mod:`repro.resilience.fleet_chaos` — seeded per-tenant poison
  injectors (NaN/Inf bursts, exploding values, malformed window shapes,
  forced kernel exceptions) behind ``repro chaos --fleet`` and the
  ``repro fleet-soak`` sweep, asserting that non-poisoned tenants stay
  bit-identical to clean solo runs while poisoned ones are quarantined
  and re-admitted.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointVersionError,
    load_checkpoint,
    restore,
    save_checkpoint,
    snapshot,
)
from .chaos import (
    ChaosCampaign,
    ChaosReport,
    ChaosSpec,
    SimulatedWorkerCrash,
    WorkerChaos,
    WorkerChaosError,
)
from .fleet_chaos import (
    POISON_KINDS,
    FleetChaosReport,
    FleetPoison,
    InjectedKernelFault,
    run_fleet_chaos,
)
from .fuzz import (
    FleetFuzzReport,
    FuzzReport,
    pathological_window,
    run_fleet_fuzz,
    run_fuzz,
)
from .invariants import (
    DEFAULT_INVARIANTS,
    Invariant,
    InvariantViolationError,
    InvariantWarning,
    Violation,
    check_invariants,
    default_invariants,
)
from .supervisor import ModelUnderAttack, PipelineSupervisor

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "ChaosCampaign",
    "ChaosReport",
    "ChaosSpec",
    "CheckpointVersionError",
    "DEFAULT_INVARIANTS",
    "FleetChaosReport",
    "FleetFuzzReport",
    "FleetPoison",
    "FuzzReport",
    "InjectedKernelFault",
    "Invariant",
    "InvariantViolationError",
    "InvariantWarning",
    "ModelUnderAttack",
    "POISON_KINDS",
    "PipelineSupervisor",
    "SimulatedWorkerCrash",
    "Violation",
    "WorkerChaos",
    "WorkerChaosError",
    "check_invariants",
    "default_invariants",
    "load_checkpoint",
    "pathological_window",
    "restore",
    "run_fleet_chaos",
    "run_fleet_fuzz",
    "run_fuzz",
    "save_checkpoint",
    "snapshot",
]
