"""Runtime invariant supervisor and the majority-assumption meta-alarm.

The pipeline's per-sensor alarms answer *"is sensor j misbehaving?"*;
this module answers the meta-question *"can the pipeline still be
trusted to answer that?"*.  Two mechanisms, both driven from
:meth:`DetectionPipeline.process_window`:

**Invariant supervision.**  After every window the registry of
:mod:`~repro.resilience.invariants` is checked against the live state.
The configured mode (``PipelineConfig.supervisor_mode``) decides the
response:

* ``off`` — no supervisor is constructed at all; the pipeline is
  bit-identical to the unsupervised implementation,
* ``warn`` — violations are recorded and an :class:`InvariantWarning`
  is emitted,
* ``repair`` — bounded self-healing actions run (see the invariant
  table in DESIGN.md §10); a repair that does not restore the invariant
  escalates to :class:`InvariantViolationError`,
* ``raise`` — the first violation raises
  :class:`InvariantViolationError`.

**Majority-assumption monitoring.**  The paper's correct-state
derivation (Eq. 4) is only meaningful while correct sensors form a
majority.  When the correct-state cluster holds at most half of the
reporting sensors for ``supervisor_majority_windows`` consecutive
windows, the supervisor raises a :class:`ModelUnderAttack` meta-alarm
and *freezes learning*: the β/γ forgetting updates of ``M_CO`` and
every track ``M_CE``, and the ``c_i``/``o_i`` sequence appends behind
``M_C``/``M_O``, are suspended so a coordinated compromise cannot poison
the learned models (alarm generation, filtering, and track open/close
keep running — detection continues, only model adaptation stops).
After ``supervisor_recovery_windows`` consecutive healthy-majority
windows the alarm clears and learning resumes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from .invariants import (
    Invariant,
    InvariantViolationError,
    InvariantWarning,
    Violation,
    default_invariants,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.identification import WindowIdentification
    from ..core.pipeline import DetectionPipeline

#: Supervisor modes that actually construct a supervisor.
ACTIVE_MODES = ("warn", "repair", "raise")


@dataclass
class ModelUnderAttack:
    """Meta-alarm: the majority assumption has broken down.

    Unlike the per-sensor alarms this does not accuse any sensor — it
    flags that the pipeline's *own* soundness precondition failed, so
    everything derived while it is active is suspect and learning is
    frozen.

    Attributes
    ----------
    raised_window:
        Window index at which the alarm was raised.
    cleared_window:
        Window index at which the majority recovered (None while
        active).
    """

    raised_window: int
    cleared_window: Optional[int] = None

    @property
    def is_active(self) -> bool:
        """True until the majority assumption recovers."""
        return self.cleared_window is None


class PipelineSupervisor:
    """Per-pipeline runtime supervisor (one per supervised pipeline).

    Parameters
    ----------
    mode:
        One of ``warn | repair | raise`` (``off`` never constructs one).
    majority_windows:
        k — consecutive majority-violated windows before the
        :class:`ModelUnderAttack` meta-alarm raises.
    recovery_windows:
        Consecutive healthy windows before the alarm clears.
    invariants:
        Override of the checked registry (defaults to
        :func:`~repro.resilience.invariants.default_invariants`).
    """

    def __init__(
        self,
        mode: str = "warn",
        majority_windows: int = 3,
        recovery_windows: int = 3,
        invariants: Optional[Sequence[Invariant]] = None,
    ):
        if mode not in ACTIVE_MODES:
            raise ValueError(f"mode must be one of {ACTIVE_MODES}")
        if majority_windows < 1 or recovery_windows < 1:
            raise ValueError("window thresholds must be positive")
        self.mode = mode
        self.majority_windows = majority_windows
        self.recovery_windows = recovery_windows
        self.invariants = tuple(
            invariants if invariants is not None else default_invariants()
        )
        self.violations: List[Violation] = []
        self.meta_alarms: List[ModelUnderAttack] = []
        self._bad_streak = 0
        self._good_streak = 0
        self._frozen = False

    @classmethod
    def from_config(cls, config) -> "PipelineSupervisor":
        """Build a supervisor from a :class:`PipelineConfig`."""
        return cls(
            mode=config.supervisor_mode,
            majority_windows=config.supervisor_majority_windows,
            recovery_windows=config.supervisor_recovery_windows,
        )

    # -- majority-assumption monitor --------------------------------------

    @property
    def learning_frozen(self) -> bool:
        """True while a :class:`ModelUnderAttack` alarm is active."""
        return self._frozen

    @property
    def active_meta_alarm(self) -> Optional[ModelUnderAttack]:
        """The currently active meta-alarm, if any."""
        if self.meta_alarms and self.meta_alarms[-1].is_active:
            return self.meta_alarms[-1]
        return None

    def observe_identification(
        self, window_index: int, identification: "WindowIdentification"
    ) -> bool:
        """Feed one window's Eq. 4 outcome; returns whether learning is
        frozen *for this window* (the pipeline consults this before the
        β/γ updates, so the window that trips the threshold is already
        excluded from learning)."""
        majority_holds = (
            identification.majority_size * 2 > identification.n_sensors
        )
        if majority_holds:
            self._good_streak += 1
            self._bad_streak = 0
        else:
            self._bad_streak += 1
            self._good_streak = 0
        if self._frozen:
            if majority_holds and self._good_streak >= self.recovery_windows:
                self._frozen = False
                self.meta_alarms[-1].cleared_window = window_index
        elif not majority_holds and self._bad_streak >= self.majority_windows:
            self._frozen = True
            self.meta_alarms.append(ModelUnderAttack(raised_window=window_index))
        return self._frozen

    # -- invariant supervision --------------------------------------------

    def after_window(self, pipeline: "DetectionPipeline") -> List[Violation]:
        """Check every invariant; respond per the configured mode.

        Returns the violations recorded for this window (empty when the
        state is healthy).  In ``repair`` mode each violated invariant's
        repair runs and is re-checked; an invariant still violated after
        its repair (or lacking one) escalates to
        :class:`InvariantViolationError` — self-healing must never fail
        silently.
        """
        window_index = pipeline.n_windows
        recorded: List[Violation] = []
        for invariant in self.invariants:
            details = invariant.check(pipeline)
            if not details:
                continue
            if self.mode == "raise":
                raise InvariantViolationError(
                    [
                        Violation(invariant.name, d, window_index)
                        for d in details
                    ]
                )
            action = ""
            if self.mode == "repair":
                actions = (
                    invariant.repair(pipeline)
                    if invariant.repair is not None
                    else []
                )
                remaining = invariant.check(pipeline)
                if remaining:
                    raise InvariantViolationError(
                        [
                            Violation(
                                invariant.name,
                                f"unrepaired: {d}",
                                window_index,
                                action="; ".join(actions),
                            )
                            for d in remaining
                        ]
                    )
                action = "; ".join(actions)
            else:  # warn
                warnings.warn(
                    f"pipeline invariant {invariant.name!r} violated at "
                    f"window {window_index}: {details[0]}",
                    InvariantWarning,
                    stacklevel=3,
                )
            recorded.extend(
                Violation(invariant.name, d, window_index, action=action)
                for d in details
            )
        self.violations.extend(recorded)
        return recorded

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of the monitor state and history.

        The mode and thresholds live in the pipeline configuration (the
        checkpoint embeds that separately), so only mutable state is
        stored here — a checkpoint taken while learning is frozen
        restores frozen, mid-streak, with the alarm still active.
        """
        return {
            "bad_streak": self._bad_streak,
            "good_streak": self._good_streak,
            "frozen": self._frozen,
            "meta_alarms": [
                [alarm.raised_window, alarm.cleared_window]
                for alarm in self.meta_alarms
            ],
            "violations": [
                [v.invariant, v.detail, v.window_index, v.action]
                for v in self.violations
            ],
        }

    def load_state_dict(self, payload: Dict[str, object]) -> None:
        """Restore monitor state from :meth:`state_dict` output."""
        self._bad_streak = int(payload["bad_streak"])
        self._good_streak = int(payload["good_streak"])
        self._frozen = bool(payload["frozen"])
        self.meta_alarms = [
            ModelUnderAttack(
                raised_window=int(raised),
                cleared_window=None if cleared is None else int(cleared),
            )
            for raised, cleared in payload["meta_alarms"]
        ]
        self.violations = [
            Violation(str(name), str(detail), int(window), str(action))
            for name, detail, window, action in payload["violations"]
        ]

    def digest_payload(self) -> Dict[str, object]:
        """What the pipeline digest records about supervision."""
        return {
            "frozen": self._frozen,
            "bad_streak": self._bad_streak,
            "good_streak": self._good_streak,
            "meta_alarms": [
                [alarm.raised_window, alarm.cleared_window]
                for alarm in self.meta_alarms
            ],
            "n_violations": len(self.violations),
        }
