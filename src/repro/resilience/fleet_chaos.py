"""Seeded per-tenant poison injection for multi-tenant fleets.

:mod:`repro.resilience.chaos` attacks the simulated infrastructure and
the campaign runtime; this module attacks the **fleet layer**: K of N
tenants in a :class:`~repro.fleet.ResilientFleetEngine` are fed seeded
poison bursts and the run must degrade per tenant, never collectively.

Poison kinds (the fleet analogue of the fuzz harness's pathologies):

``nan_burst`` / ``inf_burst``
    Non-finite readings.  The hardened ingest path drops them, so these
    are *absorbed* — the tenant must stay healthy without quarantine.
``exploding``
    Finite readings near the float64 ceiling whose window means
    overflow; the spawn guard raises ``ValueError`` deterministically
    on both the batched and the per-tenant exact path.
``malformed``
    Windows with the wrong attribute dimensionality; raises in the
    batched prepass (vstack dim mismatch) and in the scalar cluster
    update (broadcast mismatch).
``exception``
    A :class:`FaultingWindow` proxy whose data accessors raise
    :class:`InjectedKernelFault` — a forced kernel-level failure.

Selection, kind assignment, and burst placement are all drawn from
SHA-256 over the seed (the :class:`~repro.resilience.chaos.WorkerChaos`
idiom), so a fleet-chaos run is exactly reproducible from its CLI
arguments — which is what lets CI diff surviving-tenant digests against
independently computed clean solo runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sensornet.collector import ArrayWindow

#: All poison kinds, in kind-assignment order.
POISON_KINDS = (
    "nan_burst",
    "inf_burst",
    "exploding",
    "malformed",
    "exception",
)

#: Kinds the hardened ingest path is expected to absorb without any
#: quarantine: the poisoned tenant must finish healthy.
ABSORBED_KINDS = frozenset({"nan_burst", "inf_burst"})

#: Finite but near-ceiling reading magnitude: sums of a window of these
#: overflow to inf, so the spawn guard fails deterministically.
_EXPLODING_VALUE = 8e307


class InjectedKernelFault(RuntimeError):
    """Raised by :class:`FaultingWindow` on any data access."""


class FaultingWindow:
    """A window proxy that raises from every data accessor.

    Keeps real ``index`` / ``start_minutes`` / ``end_minutes`` so the
    bookkeeping around the failure stays coherent, but any attempt to
    read observations, messages, or means — on the batched path or the
    per-tenant exact path — raises :class:`InjectedKernelFault`.  This
    is the forced-kernel-exception poison: the failure happens *inside*
    the shared advance, exactly where containment must catch it.
    """

    __slots__ = ("index", "start_minutes", "end_minutes")

    def __init__(self, index: int, start_minutes: float, end_minutes: float):
        self.index = index
        self.start_minutes = start_minutes
        self.end_minutes = end_minutes

    def _boom(self):
        raise InjectedKernelFault(
            f"injected kernel fault (window {self.index})"
        )

    @property
    def observations(self):
        self._boom()

    @property
    def messages(self):
        self._boom()

    @property
    def sensor_ids(self):
        self._boom()

    @property
    def sensor_id_array(self):
        self._boom()

    @property
    def is_empty(self):
        self._boom()

    def per_sensor_mean(self):
        self._boom()

    def overall_mean(self):
        self._boom()


def _sha_u64(text: str) -> int:
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


@dataclass(frozen=True)
class FleetPoison:
    """Deterministic poison plan: which tenants, which kind, where.

    Victims are the ``n_poisoned`` tenants with the lowest SHA-256 rank
    over ``(seed, tid)``; each victim's kind is an independent seeded
    draw from ``kinds`` (so different seeds exercise different kind
    mixes), and its burst of ``burst`` consecutive poisoned windows
    lands in the middle third of its trace — early enough to hit
    mid-run, late enough to leave a clean tail for probation and
    re-admission.
    """

    n_poisoned: int = 2
    kinds: Tuple[str, ...] = POISON_KINDS
    burst: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_poisoned < 0:
            raise ValueError("n_poisoned must be >= 0")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if not self.kinds:
            raise ValueError("kinds must be non-empty")
        unknown = set(self.kinds) - set(POISON_KINDS)
        if unknown:
            raise ValueError(
                f"unknown poison kinds: {sorted(unknown)} "
                f"(choose from {list(POISON_KINDS)})"
            )

    def victims(self, n_tenants: int) -> Dict[int, str]:
        """Map of poisoned tenant id -> poison kind."""
        ranked = sorted(
            range(n_tenants),
            key=lambda tid: _sha_u64(f"fleet-poison:{self.seed}:{tid}"),
        )
        count = min(self.n_poisoned, n_tenants)
        return {
            tid: self.kinds[
                _sha_u64(f"fleet-poison-kind:{self.seed}:{tid}")
                % len(self.kinds)
            ]
            for tid in ranked[:count]
        }

    def burst_start(self, tid: int, n_windows: int) -> int:
        """First poisoned window position for this tenant."""
        span = max(1, n_windows // 3)
        offset = _sha_u64(f"fleet-poison-pos:{self.seed}:{tid}") % span
        return min(n_windows // 3 + offset, max(0, n_windows - self.burst))

    def poison_trace(self, windows: Sequence, tid: int, kind: str) -> List:
        """A copy of ``windows`` with this tenant's burst injected."""
        poisoned = list(windows)
        start = self.burst_start(tid, len(poisoned))
        for position in range(
            start, min(start + self.burst, len(poisoned))
        ):
            poisoned[position] = _poison_window(poisoned[position], kind)
        return poisoned


def _poison_window(window, kind: str):
    if kind == "exception":
        return FaultingWindow(
            window.index, window.start_minutes, window.end_minutes
        )
    observations = np.array(window.observations, dtype=float)
    sensor_ids = np.array(window.sensor_id_array)
    n_attributes = window.n_attributes
    if kind == "nan_burst":
        observations[:] = np.nan
    elif kind == "inf_burst":
        observations[:] = np.inf
    elif kind == "exploding":
        observations[:] = _EXPLODING_VALUE
    elif kind == "malformed":
        observations = np.ones(
            (observations.shape[0], observations.shape[1] + 1)
        )
        n_attributes += 1
    else:  # pragma: no cover - guarded by FleetPoison validation
        raise ValueError(f"unknown poison kind: {kind}")
    return ArrayWindow(
        window.index,
        window.start_minutes,
        window.end_minutes,
        observations,
        sensor_ids,
        n_attributes,
    )


@dataclass
class TenantOutcome:
    """How one tenant came through a fleet-chaos run."""

    tid: int
    kind: Optional[str]
    status: str
    quarantines: int
    readmissions: int
    degradations: int
    skipped_windows: int
    recovery_attempts: int
    digest: str
    failure_kinds: List[str] = field(default_factory=list)
    failure_windows: List[Optional[int]] = field(default_factory=list)
    #: For clean tenants: does the fleet result match the solo run
    #: bit-for-bit (digest and snapshot)?  None for poisoned tenants.
    solo_parity: Optional[bool] = None

    @property
    def handled(self) -> bool:
        """Did the runtime do the right thing with this tenant?

        Clean tenants must stay healthy and bit-identical to solo;
        absorbed kinds must sail through untouched; every other poison
        must have triggered at least one quarantine or degradation
        with its failure recorded.
        """
        if self.kind is None:
            return self.solo_parity is True and self.status == "healthy"
        if self.kind in ABSORBED_KINDS:
            return self.status == "healthy" and self.quarantines == 0
        contained = self.quarantines > 0 or self.degradations > 0
        recorded = bool(self.failure_kinds)
        recovered = self.status in ("healthy", "quarantined", "degraded")
        return contained and recorded and recovered


@dataclass
class FleetChaosReport:
    """Outcome of one seeded K-of-N fleet poisoning run."""

    seed: int
    n_tenants: int
    n_windows: int
    kinds: Tuple[str, ...]
    victims: Dict[int, str]
    consumed: int
    outcomes: List[TenantOutcome]
    health: Dict[str, object]

    @property
    def survivors_ok(self) -> bool:
        return all(
            outcome.solo_parity is True
            for outcome in self.outcomes
            if outcome.kind is None
        )

    @property
    def ok(self) -> bool:
        return all(outcome.handled for outcome in self.outcomes)

    def render(self) -> str:
        counters = self.health["counters"]
        absorbed = sum(
            1
            for outcome in self.outcomes
            if outcome.kind in ABSORBED_KINDS and outcome.quarantines == 0
        )
        lines = [
            (
                f"fleet-chaos: tenants={self.n_tenants} "
                f"poisoned={len(self.victims)} seed={self.seed} "
                f"windows={self.n_windows} kinds={','.join(self.kinds)}"
            )
        ]
        for outcome in self.outcomes:
            if outcome.kind is None:
                parity = "ok" if outcome.solo_parity else "MISMATCH"
                lines.append(
                    f"tenant={outcome.tid} digest={outcome.digest} "
                    f"solo_parity={parity}"
                )
            else:
                failures = ";".join(
                    f"{kind}@{window}"
                    for kind, window in zip(
                        outcome.failure_kinds, outcome.failure_windows
                    )
                )
                lines.append(
                    f"tenant={outcome.tid} kind={outcome.kind} "
                    f"status={outcome.status} "
                    f"quarantines={outcome.quarantines} "
                    f"readmissions={outcome.readmissions} "
                    f"attempts={outcome.recovery_attempts} "
                    f"skipped={outcome.skipped_windows} "
                    f"failures=[{failures or '-'}]"
                )
        lines.append(
            (
                f"summary: consumed={self.consumed} "
                f"quarantined={counters['quarantines']} "
                f"readmitted={counters['readmissions']} "
                f"degraded={counters['degradations']} "
                f"absorbed={absorbed} rollbacks={counters['rollbacks']} "
                f"epochs={counters['epochs']}"
            )
        )
        lines.append(
            "survivors: " + ("bit-identical" if self.survivors_ok else "MISMATCH")
        )
        lines.append("verdict: " + ("OK" if self.ok else "FINDINGS"))
        return "\n".join(lines)


def _tenant_trace(seed: int, tid: int, n_windows: int) -> List:
    from ..perf import _fleet_workload

    return list(
        _fleet_workload(seed * 1009 + tid, n_windows=n_windows)
    )


def run_fleet_chaos(
    n_tenants: int = 8,
    n_poisoned: int = 2,
    kinds: Tuple[str, ...] = POISON_KINDS,
    seed: int = 0,
    n_windows: int = 240,
    burst: int = 5,
    checkpoint_interval: int = 64,
    probation: int = 12,
    max_recoveries: int = 2,
) -> FleetChaosReport:
    """Poison K of N tenants and assert per-tenant degradation.

    Every clean tenant's post-run digest *and* snapshot must equal an
    independent clean ``process_windows_fast`` solo run on the same
    trace; every poisoned tenant must be absorbed, degraded, or
    quarantined (with its failure recorded) — never crash the fleet.
    """
    from .. import DetectionPipeline, PipelineConfig
    from ..fleet import ResilientFleetEngine
    from .checkpoint import snapshot

    if n_tenants < 1:
        raise ValueError("n_tenants must be >= 1")
    poison = FleetPoison(
        n_poisoned=n_poisoned, kinds=tuple(kinds), burst=burst, seed=seed
    )
    victims = poison.victims(n_tenants)
    traces = [_tenant_trace(seed, tid, n_windows) for tid in range(n_tenants)]

    solo: Dict[int, Tuple[str, object]] = {}
    for tid in range(n_tenants):
        if tid in victims:
            continue
        pipeline = DetectionPipeline(PipelineConfig())
        pipeline.process_windows_fast(list(traces[tid]))
        solo[tid] = (pipeline.digest(), snapshot(pipeline))

    fleet_traces = [
        poison.poison_trace(traces[tid], tid, victims[tid])
        if tid in victims
        else list(traces[tid])
        for tid in range(n_tenants)
    ]
    engine = ResilientFleetEngine(
        [DetectionPipeline(PipelineConfig()) for _ in range(n_tenants)],
        checkpoint_interval=checkpoint_interval,
        probation=probation,
        max_recoveries=max_recoveries,
    )
    consumed = engine.process_windows(fleet_traces)

    outcomes: List[TenantOutcome] = []
    for tid in range(n_tenants):
        record = engine.records[tid]
        digest = engine.pipelines[tid].digest()
        parity: Optional[bool] = None
        if tid not in victims:
            solo_digest, solo_snapshot = solo[tid]
            parity = (
                digest == solo_digest
                and snapshot(engine.pipelines[tid]) == solo_snapshot
            )
        outcomes.append(
            TenantOutcome(
                tid=tid,
                kind=victims.get(tid),
                status=record.status,
                quarantines=record.quarantines,
                readmissions=record.readmissions,
                degradations=record.degradations,
                skipped_windows=record.skipped_windows,
                recovery_attempts=record.recovery_attempts,
                digest=digest,
                failure_kinds=[f.kind for f in record.failures],
                failure_windows=[f.window_index for f in record.failures],
                solo_parity=parity,
            )
        )
    return FleetChaosReport(
        seed=seed,
        n_tenants=n_tenants,
        n_windows=n_windows,
        kinds=tuple(kinds),
        victims=victims,
        consumed=consumed,
        outcomes=outcomes,
        health=engine.health_report(),
    )


def solo_reference_digests(
    n_tenants: int,
    n_poisoned: int,
    kinds: Tuple[str, ...],
    seed: int,
    n_windows: int,
    burst: int = 5,
) -> str:
    """Clean tenants' solo digests in fleet-chaos report line format.

    An independent oracle for the CI gate: the ``tenant=N digest=...``
    lines printed here are computed without any fleet machinery, so
    diffing them against a fleet-chaos run's survivor lines proves the
    isolated fleet left healthy tenants bit-identical.
    """
    from .. import DetectionPipeline, PipelineConfig

    poison = FleetPoison(
        n_poisoned=n_poisoned, kinds=tuple(kinds), burst=burst, seed=seed
    )
    victims = poison.victims(n_tenants)
    lines = []
    for tid in range(n_tenants):
        if tid in victims:
            continue
        pipeline = DetectionPipeline(PipelineConfig())
        pipeline.process_windows_fast(_tenant_trace(seed, tid, n_windows))
        lines.append(f"tenant={tid} digest={pipeline.digest()}")
    return "\n".join(lines)


def fleet_chaos_command(
    n_tenants: int = 8,
    n_poisoned: int = 2,
    kinds: Tuple[str, ...] = POISON_KINDS,
    seed: int = 0,
    n_windows: int = 240,
    burst: int = 5,
    checkpoint_interval: int = 64,
    probation: int = 12,
    max_recoveries: int = 2,
    solo_reference: bool = False,
) -> Tuple[str, int]:
    """CLI entry: one seeded fleet-chaos run (or its solo oracle)."""
    if solo_reference:
        text = solo_reference_digests(
            n_tenants, n_poisoned, tuple(kinds), seed, n_windows, burst
        )
        return text, 0
    report = run_fleet_chaos(
        n_tenants=n_tenants,
        n_poisoned=n_poisoned,
        kinds=tuple(kinds),
        seed=seed,
        n_windows=n_windows,
        burst=burst,
        checkpoint_interval=checkpoint_interval,
        probation=probation,
        max_recoveries=max_recoveries,
    )
    return report.render(), 0 if report.ok else 1


def fleet_soak_command(
    n_seeds: int = 5,
    base_seed: int = 0,
    n_tenants: int = 8,
    n_poisoned: int = 2,
    kinds: Tuple[str, ...] = POISON_KINDS,
    n_windows: int = 240,
    burst: int = 5,
    checkpoint_interval: int = 64,
    probation: int = 12,
    max_recoveries: int = 2,
) -> Tuple[str, int]:
    """CLI entry: multi-seed fleet-chaos soak across all poison kinds.

    Each seed draws a fresh victim set, kind assignment, and burst
    placement; the soak passes only if *every* run degrades per tenant
    with survivors bit-identical to solo.
    """
    lines: List[str] = []
    failures = 0
    totals = {"quarantines": 0, "readmissions": 0, "absorbed": 0}
    for seed in range(base_seed, base_seed + n_seeds):
        report = run_fleet_chaos(
            n_tenants=n_tenants,
            n_poisoned=n_poisoned,
            kinds=tuple(kinds),
            seed=seed,
            n_windows=n_windows,
            burst=burst,
            checkpoint_interval=checkpoint_interval,
            probation=probation,
            max_recoveries=max_recoveries,
        )
        counters = report.health["counters"]
        absorbed = sum(
            1
            for outcome in report.outcomes
            if outcome.kind in ABSORBED_KINDS and outcome.quarantines == 0
        )
        totals["quarantines"] += counters["quarantines"]
        totals["readmissions"] += counters["readmissions"]
        totals["absorbed"] += absorbed
        status = "ok" if report.ok else "FINDINGS"
        if not report.ok:
            failures += 1
        lines.append(
            f"seed={seed} poisoned={len(report.victims)} "
            f"quarantined={counters['quarantines']} "
            f"readmitted={counters['readmissions']} absorbed={absorbed} "
            f"survivors={'ok' if report.survivors_ok else 'MISMATCH'} "
            f"{status}"
        )
        if not report.ok:
            lines.append(report.render())
    lines.append(
        f"fleet-soak: seeds={n_seeds} tenants={n_tenants} "
        f"poisoned_per_run={n_poisoned} "
        f"quarantined={totals['quarantines']} "
        f"readmitted={totals['readmissions']} "
        f"absorbed={totals['absorbed']} failures={failures}"
    )
    lines.append("verdict: " + ("OK" if failures == 0 else "FINDINGS"))
    return "\n".join(lines), 0 if failures == 0 else 1
