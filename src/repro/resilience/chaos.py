"""Infrastructure chaos campaigns (graceful-degradation harness).

The :mod:`repro.faults` injectors corrupt the *data* a sensor reports;
this module corrupts the *infrastructure* that carries and processes it.
A :class:`ChaosCampaign` drives a full GDI-style deployment through:

* **Gilbert–Elliott bursty loss** plus per-link delay / duplication /
  reordering (see :class:`repro.sensornet.network.RadioLink`),
* **clock-skewed motes** whose reports claim wrong sampling times,
* **collector crashes** at scheduled windows, with restart from the
  latest JSON checkpoint (buffered reports and un-checkpointed windows
  die with the process),

optionally composed with an ordinary data-corruption
:class:`~repro.faults.campaign.CampaignSpec` — infra and data faults are
orthogonal axes.  The campaign asserts *graceful degradation*: the
pipeline must never raise; skipped/starved windows and quarantined
packets are counted; detection still converges, just later.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import PipelineConfig
from ..core.pipeline import DetectionPipeline
from ..faults.campaign import CampaignSpec
from ..sensornet.collector import CollectorNode
from ..sensornet.messages import SensorMessage
from ..sensornet.network import GilbertElliottLoss, StarNetwork
from ..sensornet.sensor import Mote
from ..sensornet.simulator import NetworkSimulator
from ..traces.gdi import GDITraceConfig, build_environment
from .checkpoint import restore, snapshot


@dataclass
class ChaosSpec:
    """Declarative description of one infrastructure chaos campaign.

    All knobs default to a moderately hostile but survivable regime;
    setting the impairment fields to zero and ``crash_at_windows`` to
    empty degrades to a plain lossy-radio simulation.
    """

    #: Deployment length and workload seed.
    n_days: int = 7
    seed: int = 0
    #: Bursty loss process template (copied per link); None falls back
    #: to i.i.d. loss at ``loss_probability``.
    burst: Optional[GilbertElliottLoss] = field(
        default_factory=GilbertElliottLoss
    )
    #: i.i.d. per-packet loss used when ``burst`` is None.
    loss_probability: float = 0.15
    #: Chance an arriving packet is malformed (CRC failure).
    corruption_probability: float = 0.01
    #: Per-packet delay impairment; independent delays reorder streams.
    delay_probability: float = 0.10
    max_delay_minutes: float = 90.0
    #: Chance a delivered packet arrives twice.
    duplicate_probability: float = 0.05
    #: sensor id -> clock skew in minutes (negative = clock runs late,
    #: reports claim past timestamps and hit the late quarantine).
    clock_skew_minutes: Dict[int, float] = field(default_factory=dict)
    #: Window indices at which the collector process is killed and
    #: restarted from its latest checkpoint.
    crash_at_windows: Tuple[int, ...] = ()
    #: Checkpoint cadence in windows (0 = only the implicit checkpoint
    #: taken before the pipeline's first window).
    checkpoint_every_windows: int = 5
    #: Optional data-corruption plan composed with the infra faults.
    data_campaign: Optional[CampaignSpec] = None

    def __post_init__(self) -> None:
        if self.n_days <= 0:
            raise ValueError("n_days must be positive")
        if self.checkpoint_every_windows < 0:
            raise ValueError("checkpoint_every_windows must be non-negative")
        for name in (
            "loss_probability",
            "corruption_probability",
            "delay_probability",
            "duplicate_probability",
        ):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")


@dataclass
class ChaosReport:
    """What one chaos campaign did to the deployment, and what survived.

    ``n_exceptions == 0`` is the graceful-degradation contract: whatever
    the infrastructure did, the pipeline itself never raised.
    """

    n_windows_emitted: int = 0
    n_windows_processed: int = 0
    n_windows_skipped: int = 0
    n_windows_lost_to_crashes: int = 0
    n_crashes: int = 0
    n_checkpoints: int = 0
    checkpoint_bytes: int = 0
    n_buffered_messages_lost: int = 0
    n_in_flight_at_end: int = 0
    n_exceptions: int = 0
    delivery: Dict[str, int] = field(default_factory=dict)
    system_anomaly: Optional[str] = None
    sensor_anomalies: Dict[int, str] = field(default_factory=dict)

    @property
    def graceful(self) -> bool:
        """True when the pipeline survived the whole campaign."""
        return self.n_exceptions == 0

    @property
    def degradation_fraction(self) -> float:
        """Fraction of emitted windows that yielded no identification."""
        if self.n_windows_emitted == 0:
            return 0.0
        lost = self.n_windows_skipped + self.n_windows_lost_to_crashes
        return lost / self.n_windows_emitted

    def render(self) -> str:
        """Plain-text summary for the CLI."""
        lines = [
            "chaos campaign report",
            f"  windows: {self.n_windows_emitted} emitted, "
            f"{self.n_windows_processed} processed, "
            f"{self.n_windows_skipped} skipped, "
            f"{self.n_windows_lost_to_crashes} lost to crashes",
            f"  crashes: {self.n_crashes} "
            f"(restored from {self.n_checkpoints} checkpoints, "
            f"last checkpoint {self.checkpoint_bytes} bytes, "
            f"{self.n_buffered_messages_lost} buffered messages lost)",
            f"  in flight at shutdown: {self.n_in_flight_at_end}",
            f"  pipeline exceptions: {self.n_exceptions} "
            f"({'graceful' if self.graceful else 'NOT graceful'})",
            "  delivery: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.delivery.items())),
            f"  degradation: {self.degradation_fraction:.1%} of windows unusable",
            f"  system verdict: {self.system_anomaly}",
        ]
        if self.sensor_anomalies:
            lines.append("  per-sensor verdicts:")
            for sensor_id, anomaly in sorted(self.sensor_anomalies.items()):
                lines.append(f"    sensor {sensor_id}: {anomaly}")
        return "\n".join(lines)


class ChaosCampaign:
    """Runs one :class:`ChaosSpec` against a live simulated deployment.

    The campaign owns the whole stack — environment, motes, impaired
    star network, collector, pipeline — and emulates collector crashes
    by discarding the live pipeline object and rebuilding it from the
    latest checkpoint *through a JSON round-trip* (proving the
    checkpoint really is serializable, not just a Python deep copy).
    """

    def __init__(
        self, spec: Optional[ChaosSpec] = None, config: Optional[PipelineConfig] = None
    ):
        self.spec = spec or ChaosSpec()
        self.config = config or PipelineConfig()

    def _build_simulator(self) -> NetworkSimulator:
        spec = self.spec
        trace_config = GDITraceConfig(n_days=spec.n_days, seed=spec.seed)
        environment = build_environment(trace_config)
        sensor_ids = list(range(self.config.n_sensors))
        motes = [
            Mote(sensor_id=sensor_id, environment=environment, seed=spec.seed)
            for sensor_id in sensor_ids
        ]
        network = StarNetwork.impaired(
            sensor_ids,
            loss_probability=spec.loss_probability,
            corruption_probability=spec.corruption_probability,
            burst=spec.burst,
            delay_probability=spec.delay_probability,
            max_delay_minutes=spec.max_delay_minutes,
            duplicate_probability=spec.duplicate_probability,
            seed=spec.seed,
        )
        collector = CollectorNode(window_minutes=self.config.window_minutes)
        injector = (
            spec.data_campaign.build_injector(environment)
            if spec.data_campaign is not None
            else None
        )

        def corruption(message: SensorMessage) -> Optional[SensorMessage]:
            if injector is not None:
                message = injector(message)
                if message is None:
                    return None
            skew = spec.clock_skew_minutes.get(message.sensor_id)
            if skew:
                message = message.shifted(skew)
            return message

        return NetworkSimulator(
            environment=environment,
            motes=motes,
            collector=collector,
            network=network,
            sample_period_minutes=self.config.sample_period_minutes,
            corruption=corruption,
        )

    def run(self) -> "tuple[ChaosReport, DetectionPipeline]":
        """Execute the campaign; returns the report and final pipeline."""
        spec = self.spec
        report = ChaosReport()
        simulator = self._build_simulator()
        pipeline = DetectionPipeline(self.config)

        # The implicit day-zero checkpoint: even a crash in the very
        # first window has something to restore from.
        checkpoint_json = json.dumps(snapshot(pipeline), sort_keys=True)
        report.n_checkpoints = 1
        pending_crashes = set(spec.crash_at_windows)
        state = {"pipeline": pipeline, "checkpoint": checkpoint_json}

        def on_window(window) -> None:
            report.n_windows_emitted += 1
            current = state["pipeline"]
            if window.index in pending_crashes:
                pending_crashes.discard(window.index)
                report.n_crashes += 1
                # The crash destroys the in-memory pipeline, the window
                # being handed over, and every report still buffered at
                # the collector.
                report.n_buffered_messages_lost += simulator.collector.drop_buffer()
                restored = restore(json.loads(state["checkpoint"]))
                report.n_windows_lost_to_crashes += 1 + max(
                    current.n_windows - restored.n_windows, 0
                )
                state["pipeline"] = restored
                return
            try:
                result = current.process_window(window)
            except Exception:
                report.n_exceptions += 1
                return
            report.n_windows_processed += 1
            if result.skipped:
                report.n_windows_skipped += 1
            cadence = spec.checkpoint_every_windows
            if cadence and current.n_windows % cadence == 0:
                state["checkpoint"] = json.dumps(
                    snapshot(current), sort_keys=True
                )
                report.n_checkpoints += 1

        duration = spec.n_days * 24 * 60.0
        simulation = simulator.run(duration, on_window=on_window)

        pipeline = state["pipeline"]
        report.n_in_flight_at_end = simulation.n_in_flight_at_end
        report.checkpoint_bytes = len(state["checkpoint"])
        report.delivery = simulator.collector.stats.as_dict()
        try:
            if pipeline.results or pipeline.n_windows:
                diagnosis = pipeline.system_diagnosis()
                report.system_anomaly = diagnosis.anomaly_type.value
                report.sensor_anomalies = {
                    sensor_id: d.anomaly_type.value
                    for sensor_id, d in pipeline.diagnose_all().items()
                }
        except ValueError:
            # No window ever carried data (total blackout campaign).
            report.system_anomaly = None
        return report, pipeline


def run_chaos(
    spec: Optional[ChaosSpec] = None, config: Optional[PipelineConfig] = None
) -> "tuple[ChaosReport, DetectionPipeline]":
    """Convenience wrapper: build and run one chaos campaign."""
    return ChaosCampaign(spec, config).run()


# -- worker-level fault injection ------------------------------------------


class WorkerChaosError(RuntimeError):
    """Exception injected into a campaign worker by :class:`WorkerChaos`."""


class SimulatedWorkerCrash(RuntimeError):
    """Inline stand-in for a worker kill/hang.

    The serial in-process campaign path cannot SIGKILL itself or hang
    without deadlocking the orchestrator, so inline chaos converts both
    actions into this exception — still a task failure, still retried,
    but survivable without a process pool.
    """


@dataclass(frozen=True)
class WorkerChaos:
    """Seeded worker-level fault injection for campaign soak tests.

    The link and collector chaos in :class:`ChaosCampaign` attacks the
    *simulated* infrastructure; this policy attacks the *campaign
    runtime itself*, inside worker tasks, the way real fleets fail:
    the worker process dies (SIGKILL — stands in for OOM kills and
    segfaults), hangs past any reasonable deadline, or raises.

    Decisions are drawn deterministically from SHA-256 over
    ``(seed, task key, attempt)``: the same campaign with the same seed
    injects the same faults in every run, and a retried attempt gets a
    fresh independent draw — so with per-attempt fault probability
    ``p`` and ``r`` retries a spec is only lost with probability
    ``p ** (r + 1)``.  The policy is picklable and travels to workers
    inside the task payload.
    """

    #: Per-attempt probability the worker process is SIGKILLed.
    kill_probability: float = 0.0
    #: Per-attempt probability the task hangs for ``hang_seconds``.
    hang_probability: float = 0.0
    #: Per-attempt probability the task raises :class:`WorkerChaosError`.
    exception_probability: float = 0.0
    #: How long a hang sleeps (pool deadlines should be far shorter).
    hang_seconds: float = 600.0
    seed: int = 0

    def __post_init__(self) -> None:
        total = 0.0
        for name in (
            "kill_probability",
            "hang_probability",
            "exception_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
            total += value
        if total > 1.0:
            raise ValueError("fault probabilities must sum to at most 1")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be non-negative")

    def draw(self, key: str, attempt: int) -> Optional[str]:
        """The fault injected for this (task, attempt), or None.

        Deterministic: one uniform draw from a SHA-256 over
        ``(seed, key, attempt)`` partitioned into kill / hang /
        exception bands.
        """
        text = f"worker-chaos:{self.seed}:{key}:{attempt}"
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        u = int.from_bytes(digest[:8], "big") / 2.0**64
        edge = self.kill_probability
        if u < edge:
            return "kill"
        edge += self.hang_probability
        if u < edge:
            return "hang"
        edge += self.exception_probability
        if u < edge:
            return "exception"
        return None

    def apply(self, key: str, attempt: int, inline: bool = False) -> None:
        """Inject the drawn fault (if any) into the current task.

        In a pool worker a ``kill`` SIGKILLs the process (the parent
        sees ``BrokenProcessPool``) and a ``hang`` sleeps past the
        task deadline; inline both degrade to
        :class:`SimulatedWorkerCrash` so the serial path stays
        testable.
        """
        action = self.draw(key, attempt)
        if action is None:
            return
        if action == "exception":
            raise WorkerChaosError(
                f"injected exception (task {key[:12]}, attempt {attempt})"
            )
        if inline:
            raise SimulatedWorkerCrash(
                f"injected {action} (task {key[:12]}, attempt {attempt})"
            )
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(self.hang_seconds)
