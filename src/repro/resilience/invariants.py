"""Declarative runtime invariants over the live detection pipeline.

The paper's procedure is only sound while a handful of structural
properties hold: model-state centroids stay finite, the state set stays
small (``n_states <= max_states``, or the majority assumption breaks),
the merge-alias table stays acyclic (or
:meth:`~repro.core.states.StateSet.resolve` hangs), every online HMM
stays row-stochastic (the paper proves the β/γ updates preserve this),
and no error/attack track records more windows than have elapsed since
it opened.  The pipeline maintains all of these by construction — this
module makes them *checkable at runtime*, so a corrupted restore, a
pathological input stream, or a future bug surfaces as a named
:class:`Violation` instead of silently poisoning weeks of learned state.

Each :class:`Invariant` couples a side-effect-free ``check`` with an
optional bounded ``repair`` action (used by the supervisor's ``repair``
mode): expelling poisoned centroids, force-merging an exploded state
set, re-pointing broken aliases, renormalizing near-degenerate HMM rows
(re-initializing a model to the paper's ``A = B = I`` start-up when it
is poisoned beyond row repair), and truncate-and-replay for runaway
tracks.  See :mod:`repro.resilience.supervisor` for the modes and
DESIGN.md §10 for the invariant table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import DetectionPipeline


class InvariantWarning(RuntimeWarning):
    """Emitted (mode ``warn``) when a runtime invariant is violated."""


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation (plus any repair applied).

    Attributes
    ----------
    invariant:
        Name of the violated :class:`Invariant`.
    detail:
        Human-readable description of what was wrong.
    window_index:
        ``pipeline.n_windows`` when the violation was detected.
    action:
        Description of the repair applied (empty when none was).
    """

    invariant: str
    detail: str
    window_index: int
    action: str = ""


class InvariantViolationError(RuntimeError):
    """Raised (mode ``raise``, or on a failed repair) on violations."""

    def __init__(self, violations: Sequence[Violation]):
        self.violations = tuple(violations)
        lines = [
            f"{v.invariant} @ window {v.window_index}: {v.detail}"
            for v in self.violations
        ]
        super().__init__(
            "pipeline invariant violation\n" + "\n".join(lines)
        )


@dataclass(frozen=True)
class Invariant:
    """One named runtime invariant with its check and optional repair.

    Attributes
    ----------
    name:
        Stable identifier (used in reports and violation records).
    description:
        What must hold, in one sentence.
    check:
        ``pipeline -> list of problem descriptions`` (empty = healthy).
        Must be side-effect free.
    repair:
        Optional bounded self-healing action,
        ``pipeline -> list of action descriptions``.  After a repair the
        check must pass; the supervisor escalates otherwise.
    """

    name: str
    description: str
    check: Callable[["DetectionPipeline"], List[str]]
    repair: Optional[Callable[["DetectionPipeline"], List[str]]] = None


# -- finite state centroids -------------------------------------------------


def _check_finite_centroids(pipeline: "DetectionPipeline") -> List[str]:
    if pipeline.clusterer is None:
        return []
    return [
        f"state {state.state_id} centroid is non-finite"
        for state in pipeline.clusterer.states
        if not np.all(np.isfinite(state.vector))
    ]


def _repair_finite_centroids(pipeline: "DetectionPipeline") -> List[str]:
    """Expel poisoned centroids, aliasing them to a finite survivor.

    A merge would fold the non-finite vector into the survivor, so the
    poisoned state is *expelled* instead: dropped from the live set with
    its id aliased to the lowest-id finite state, keeping HMM histories
    resolvable.  When no finite state survives the clusterer is cleared
    entirely — the next window re-bootstraps the state set, mirroring
    the paper's footnote-5 observation that initialisation is forgiving.
    """
    clusterer = pipeline.clusterer
    if clusterer is None:
        return []
    actions: List[str] = []
    finite_ids = [
        state.state_id
        for state in clusterer.states
        if np.all(np.isfinite(state.vector))
    ]
    poisoned = [
        state.state_id
        for state in clusterer.states
        if not np.all(np.isfinite(state.vector))
    ]
    if finite_ids:
        survivor = finite_ids[0]
        for state_id in poisoned:
            clusterer.states.expel(state_id, alias_to=survivor)
            actions.append(
                f"expelled poisoned state {state_id} (alias -> {survivor})"
            )
    else:
        pipeline.clusterer = None
        actions.append(
            "no finite centroid left; cleared the clusterer for "
            "re-bootstrap on the next window"
        )
    return actions


# -- bounded state count ----------------------------------------------------


def _check_state_count(pipeline: "DetectionPipeline") -> List[str]:
    clusterer = pipeline.clusterer
    if clusterer is None:
        return []
    if clusterer.n_states > clusterer.max_states:
        return [
            f"{clusterer.n_states} live states exceed "
            f"max_states={clusterer.max_states}"
        ]
    return []


def _repair_state_count(pipeline: "DetectionPipeline") -> List[str]:
    clusterer = pipeline.clusterer
    if clusterer is None:
        return []
    merged = clusterer.force_merge_to(clusterer.max_states)
    return [f"force-merged state {drop} into {keep}" for keep, drop in merged]


# -- alias acyclicity -------------------------------------------------------


def _check_alias_acyclicity(pipeline: "DetectionPipeline") -> List[str]:
    if pipeline.clusterer is None:
        return []
    return pipeline.clusterer.states.alias_defects()


def _repair_alias_acyclicity(pipeline: "DetectionPipeline") -> List[str]:
    if pipeline.clusterer is None:
        return []
    return pipeline.clusterer.states.repair_aliases()


# -- row-stochastic HMMs ----------------------------------------------------


def _iter_models(pipeline: "DetectionPipeline"):
    yield "M_CO", pipeline.m_co
    for track in pipeline.tracks.tracks:
        yield f"track {track.track_id} M_CE", track.model


def _check_row_stochastic(pipeline: "DetectionPipeline") -> List[str]:
    details: List[str] = []
    for label, model in _iter_models(pipeline):
        details.extend(f"{label}: {d}" for d in model.row_defects())
    return details


def _repair_row_stochastic(pipeline: "DetectionPipeline") -> List[str]:
    actions: List[str] = []
    for label, model in _iter_models(pipeline):
        if not model.row_defects():
            continue
        actions.extend(f"{label}: {a}" for a in model.renormalize_rows())
        if model.row_defects():  # beyond row-level repair
            model.reinitialize_identity()
            actions.append(f"{label}: re-initialized model to identity")
    return actions


# -- bounded track lengths --------------------------------------------------


def _track_length_bound(pipeline: "DetectionPipeline", track) -> int:
    """Windows a track can legitimately have recorded: one per window
    processed since it opened (window indices advance with processing)."""
    return max(pipeline.n_windows - track.opened_window + 1, 0)


def _check_track_lengths(pipeline: "DetectionPipeline") -> List[str]:
    details: List[str] = []
    for track in pipeline.tracks.tracks:
        bound = _track_length_bound(pipeline, track)
        if track.length > bound:
            details.append(
                f"track {track.track_id} recorded {track.length} windows "
                f"but only {bound} elapsed since it opened at window "
                f"{track.opened_window}"
            )
    return details


def _repair_track_lengths(pipeline: "DetectionPipeline") -> List[str]:
    actions: List[str] = []
    for track in pipeline.tracks.tracks:
        bound = _track_length_bound(pipeline, track)
        dropped = track.truncate(bound)
        if dropped:
            actions.append(
                f"truncated track {track.track_id} to its most recent "
                f"{bound} windows ({dropped} dropped, M_CE replayed)"
            )
    return actions


#: The registry checked by the supervisor after every processed window.
DEFAULT_INVARIANTS: Tuple[Invariant, ...] = (
    Invariant(
        name="finite-state-centroids",
        description="every live model-state centroid is finite",
        check=_check_finite_centroids,
        repair=_repair_finite_centroids,
    ),
    Invariant(
        name="state-count-bound",
        description="the live state set never exceeds max_states",
        check=_check_state_count,
        repair=_repair_state_count,
    ),
    Invariant(
        name="alias-acyclicity",
        description="every merge-alias chain terminates at a live state",
        check=_check_alias_acyclicity,
        repair=_repair_alias_acyclicity,
    ),
    Invariant(
        name="row-stochastic-models",
        description="M_CO and every track M_CE keep row-stochastic A and B",
        check=_check_row_stochastic,
        repair=_repair_row_stochastic,
    ),
    Invariant(
        name="bounded-track-lengths",
        description="no track records more windows than elapsed since open",
        check=_check_track_lengths,
        repair=_repair_track_lengths,
    ),
)


def default_invariants() -> Tuple[Invariant, ...]:
    """The built-in invariant registry (a fresh tuple view)."""
    return DEFAULT_INVARIANTS


def check_invariants(
    pipeline: "DetectionPipeline",
    invariants: Optional[Sequence[Invariant]] = None,
) -> List[Violation]:
    """Run every invariant check once; returns violations (no repairs).

    Side-effect free — usable from tests and the fuzz harness against
    any pipeline, supervised or not.
    """
    violations: List[Violation] = []
    for invariant in invariants or DEFAULT_INVARIANTS:
        for detail in invariant.check(pipeline):
            violations.append(
                Violation(
                    invariant=invariant.name,
                    detail=detail,
                    window_index=pipeline.n_windows,
                )
            )
    return violations
