"""Pipeline checkpoint/restore (versioned JSON).

A collector node running the detection pipeline accumulates weeks of
irreplaceable statistical state: clusterer centroids and visit counts,
the global online HMM ``M_CO``, one ``M_CE`` per error/attack track,
per-sensor alarm-filter state, and the ``c_i``/``o_i`` sequences behind
``M_C``/``M_O``.  :func:`snapshot` captures *all* of it into a
JSON-serializable document and :func:`restore` rebuilds a pipeline that
continues the run exactly where the snapshot was taken: feeding the same
remaining windows to the restored pipeline yields identical diagnoses,
alarm counts, and ``B`` matrices (within float round-off of one JSON
encode/decode).

The per-window :class:`~repro.core.pipeline.WindowResult` log is a
derived artifact (nothing downstream of ``process_window`` reads it) and
is deliberately *not* checkpointed; ``n_windows`` and every piece of
statistical state are.

The document is versioned independently of the report format in
:mod:`repro.analysis.serialization`; bump
:data:`CHECKPOINT_FORMAT_VERSION` whenever a component's ``state_dict``
layout changes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..config import PipelineConfig
from ..core.alarms import AlarmGenerator
from ..core.clustering import OnlineStateClusterer
from ..core.online_hmm import OnlineHMM
from ..core.pipeline import DetectionPipeline
from ..core.tracks import TrackManager

PathLike = Union[str, Path]

#: Format version stamped into every checkpoint document.
#: v2: supervisor state (invariant violations, meta-alarms, learning
#: freeze) joined the document alongside the new supervisor config keys.
CHECKPOINT_FORMAT_VERSION = 2


class CheckpointVersionError(ValueError):
    """A checkpoint's schema version is missing or unsupported.

    Raised with a message naming the found and expected versions so a
    payload written by an older (or newer) release fails loudly and
    actionably instead of with a raw ``KeyError`` deep in a
    ``from_state_dict``.
    """

    def __init__(self, found: object, expected: int):
        self.found = found
        self.expected = expected
        super().__init__(
            "unsupported checkpoint format version: found "
            f"{found!r}, expected {expected} — this checkpoint was "
            "written by a different release and cannot be restored"
        )


def snapshot(pipeline: DetectionPipeline) -> Dict[str, object]:
    """Capture the full pipeline state as a JSON-ready document.

    The document survives ``json.dumps``/``json.loads`` round-trips
    losslessly (all keys are strings, all values JSON scalars/lists).
    """
    return {
        "checkpoint_format_version": CHECKPOINT_FORMAT_VERSION,
        "config": pipeline.config.to_json_dict(),
        "n_windows": pipeline.n_windows,
        "initial_states": (
            None
            if pipeline._initial_states is None
            else [[float(x) for x in vector] for vector in pipeline._initial_states]
        ),
        "clusterer": (
            None if pipeline.clusterer is None else pipeline.clusterer.state_dict()
        ),
        "alarm_generator": pipeline.alarm_generator.state_dict(),
        "filter_bank": pipeline.filter_bank.state_dict(),
        "tracks": pipeline.tracks.state_dict(),
        "m_co": pipeline.m_co.state_dict(),
        "correct_sequence": list(pipeline.correct_sequence),
        "observable_sequence": list(pipeline.observable_sequence),
        "supervisor": (
            None
            if pipeline.supervisor is None
            else pipeline.supervisor.state_dict()
        ),
    }


def restore(
    payload: Dict[str, object], config: Optional[PipelineConfig] = None
) -> DetectionPipeline:
    """Rebuild a pipeline from a :func:`snapshot` document.

    Parameters
    ----------
    payload:
        A snapshot document (possibly round-tripped through JSON).
    config:
        Optional configuration override; when omitted the configuration
        embedded in the snapshot is reconstructed, so a checkpoint is
        fully self-contained.

    Raises
    ------
    CheckpointVersionError
        For a missing or unsupported checkpoint format version (e.g. a
        payload written by an older release).
    """
    version = payload.get("checkpoint_format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointVersionError(version, CHECKPOINT_FORMAT_VERSION)
    if config is None:
        config = PipelineConfig.from_json_dict(payload["config"])

    initial = payload.get("initial_states")
    pipeline = DetectionPipeline(
        config,
        initial_states=(
            None
            if initial is None
            else [np.asarray(vector, dtype=float) for vector in initial]
        ),
    )
    clusterer_state = payload.get("clusterer")
    pipeline.clusterer = (
        None
        if clusterer_state is None
        else OnlineStateClusterer.from_state_dict(clusterer_state)
    )
    if pipeline.clusterer is not None:
        # The restored clusterer runs under the restoring pipeline's
        # backend (which may differ from the one that wrote the
        # checkpoint — backends are bit-identical, so this is free).
        pipeline.clusterer.states._kernels = pipeline._backend
    pipeline.alarm_generator = AlarmGenerator.from_state_dict(
        payload["alarm_generator"]
    )
    pipeline.filter_bank.load_state_dict(payload["filter_bank"])
    pipeline.tracks = TrackManager.from_state_dict(payload["tracks"])
    pipeline.m_co = OnlineHMM.from_state_dict(payload["m_co"])
    pipeline.correct_sequence = [int(s) for s in payload["correct_sequence"]]
    pipeline.observable_sequence = [int(s) for s in payload["observable_sequence"]]
    pipeline._n_windows = int(payload["n_windows"])
    supervisor_state = payload.get("supervisor")
    if pipeline.supervisor is not None and supervisor_state is not None:
        # A checkpoint taken mid-degradation restores degraded: the
        # meta-alarm stays active and learning stays frozen.
        pipeline.supervisor.load_state_dict(supervisor_state)
    return pipeline


def save_checkpoint(pipeline: DetectionPipeline, path: PathLike) -> None:
    """Write a pipeline checkpoint to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(snapshot(pipeline), handle, sort_keys=True)


def load_checkpoint(
    path: PathLike, config: Optional[PipelineConfig] = None
) -> DetectionPipeline:
    """Read a JSON checkpoint and rebuild the pipeline it captured."""
    path = Path(path)
    with path.open("r") as handle:
        payload = json.load(handle)
    return restore(payload, config=config)
