"""Baseline detectors the paper positions itself against.

* :class:`~repro.baselines.threshold.RangeThresholdDetector` — range
  checking, which the paper's in-range attack injections evade (§4.2).
* :class:`~repro.baselines.majority.MajorityVoteDetector` — windowed
  majority voting: detects, cannot diagnose.
* :class:`~repro.baselines.markov_chain.MarkovChainDetector` — Jha et
  al. [11]-style Markov-chain scoring with a clean training phase.
* :class:`~repro.baselines.offline_hmm.OfflineHMMDetector` — Warrender
  et al. [5]-style trained-HMM likelihood detector.
"""

from .majority import MajorityVoteDetector
from .markov_chain import MarkovChainDetector, MarkovChainScore
from .offline_hmm import HMMScore, OfflineHMMDetector
from .threshold import RangeThresholdDetector, ThresholdAlarm

__all__ = [
    "HMMScore",
    "MajorityVoteDetector",
    "MarkovChainDetector",
    "MarkovChainScore",
    "OfflineHMMDetector",
    "RangeThresholdDetector",
    "ThresholdAlarm",
]
