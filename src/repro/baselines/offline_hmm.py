"""Warrender-style offline-HMM anomaly detector ([5] in the paper).

The host-based intrusion-detection approach the paper contrasts itself
with: fit an HMM to anomaly-free behaviour in a separate *training
phase* (Baum-Welch), then flag test windows whose per-symbol
log-likelihood falls below a threshold η.

The paper's §2 critique is reproducible with this class:

1. hidden states are arbitrary (``n_hidden`` is a free parameter with no
   physical meaning),
2. a clean training phase is required — during which the system is
   unprotected — and training cost grows steeply with state count,
3. detection is global: no per-sensor localisation, no error/attack
   typing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..hmm.baum_welch import TrainingResult, fit_random_restarts
from ..hmm.algorithms import per_symbol_log_likelihood
from ..hmm.model import DiscreteHMM


@dataclass(frozen=True)
class HMMScore:
    """Per-window anomaly score from the offline-HMM detector."""

    start_index: int
    log_likelihood_per_symbol: float
    anomalous: bool


@dataclass
class OfflineHMMDetector:
    """Trained-HMM likelihood detector over a discrete symbol alphabet.

    Parameters
    ----------
    n_hidden:
        Number of hidden states (arbitrary, per the paper's critique).
    n_symbols:
        Observation alphabet size.
    threshold:
        η — per-symbol log-likelihood below which a window is flagged.
    seed:
        RNG seed for the Baum-Welch random restarts.
    """

    n_hidden: int = 5
    n_symbols: int = 8
    threshold: float = -5.0
    seed: int = 0
    n_restarts: int = 3
    max_iterations: int = 40
    model: Optional[DiscreteHMM] = field(default=None, repr=False)
    training_result: Optional[TrainingResult] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_hidden <= 0 or self.n_symbols <= 0:
            raise ValueError("n_hidden and n_symbols must be positive")

    @property
    def is_trained(self) -> bool:
        """True once :meth:`train` has run."""
        return self.model is not None

    def train(self, sequences: Sequence[Sequence[int]]) -> TrainingResult:
        """Fit the HMM to attack-free training sequences."""
        rng = np.random.default_rng(self.seed)
        result = fit_random_restarts(
            self.n_hidden,
            self.n_symbols,
            sequences,
            rng,
            n_restarts=self.n_restarts,
            max_iterations=self.max_iterations,
        )
        self.model = result.model
        self.training_result = result
        return result

    def score(self, sequence: Sequence[int]) -> float:
        """Per-symbol log-likelihood of one sequence under the model."""
        if self.model is None:
            raise RuntimeError("detector is not trained")
        return per_symbol_log_likelihood(self.model, sequence)

    def score_windows(
        self, sequence: Sequence[int], window: int = 6
    ) -> List[HMMScore]:
        """Slide a scoring window over a test sequence."""
        if window < 2:
            raise ValueError("window must be at least 2")
        sequence = np.asarray(sequence, dtype=int)
        scores: List[HMMScore] = []
        for start in range(0, sequence.size - window + 1):
            value = self.score(sequence[start : start + window])
            scores.append(
                HMMScore(
                    start_index=start,
                    log_likelihood_per_symbol=value,
                    anomalous=value < self.threshold,
                )
            )
        return scores

    def calibrate_threshold(
        self,
        clean_sequence: Sequence[int],
        window: int = 6,
        quantile: float = 0.01,
        slack: float = 0.5,
    ) -> float:
        """Choose η from clean-data score statistics (like [5] does)."""
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        scores = [
            s.log_likelihood_per_symbol
            for s in self.score_windows(clean_sequence, window)
        ]
        if not scores:
            raise ValueError("clean sequence too short to calibrate")
        self.threshold = float(np.quantile(scores, quantile) - slack)
        return self.threshold

    def detection_rate(self, sequence: Sequence[int], window: int = 6) -> float:
        """Fraction of scored windows flagged anomalous."""
        scores = self.score_windows(sequence, window)
        if not scores:
            return 0.0
        return sum(s.anomalous for s in scores) / len(scores)
