"""Range-checking baseline detector.

The simplest defence a sensor network deploys: flag any reading outside
its physically admissible range.  The paper explicitly designs its
attack injections to evade this check ("we have decided to maintain
malicious values within their admissible range", §4.2), so this baseline
exists to demonstrate that gap: it catches gross hardware faults but is
blind to coordinated in-range attacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..sensornet.messages import SensorMessage


@dataclass(frozen=True)
class ThresholdAlarm:
    """One out-of-range reading."""

    sensor_id: int
    timestamp: float
    attribute_index: int
    value: float
    low: float
    high: float


@dataclass
class RangeThresholdDetector:
    """Flags readings whose attributes leave their admissible ranges.

    Parameters
    ----------
    ranges:
        Per-attribute (low, high) bounds.  Defaults match the GDI
        configuration: temperature in [-10, 60] °C, humidity in
        [0, 100] %.
    margin:
        Optional tightening applied symmetrically to each range, for
        sensitivity studies (0 keeps the raw physical bounds).
    """

    ranges: Tuple[Tuple[float, float], ...] = ((-10.0, 60.0), (0.0, 100.0))
    margin: float = 0.0
    alarms: List[ThresholdAlarm] = field(default_factory=list)
    _n_checked: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.margin < 0:
            raise ValueError("margin must be non-negative")
        for low, high in self.ranges:
            if low + 2 * self.margin >= high:
                raise ValueError("margin collapses an admissible range")

    def check(self, message: SensorMessage) -> List[ThresholdAlarm]:
        """Check one reading; returns (and records) any alarms."""
        if message.n_attributes != len(self.ranges):
            raise ValueError("message/ranges dimensionality mismatch")
        self._n_checked += 1
        new: List[ThresholdAlarm] = []
        for index, value in enumerate(message.attributes):
            low, high = self.ranges[index]
            low += self.margin
            high -= self.margin
            if not low <= value <= high:
                alarm = ThresholdAlarm(
                    sensor_id=message.sensor_id,
                    timestamp=message.timestamp,
                    attribute_index=index,
                    value=float(value),
                    low=low,
                    high=high,
                )
                self.alarms.append(alarm)
                new.append(alarm)
        return new

    def check_all(self, messages: Sequence[SensorMessage]) -> int:
        """Check a batch; returns the number of new alarms."""
        before = len(self.alarms)
        for message in messages:
            self.check(message)
        return len(self.alarms) - before

    @property
    def n_checked(self) -> int:
        """Readings examined so far."""
        return self._n_checked

    def flagged_sensors(self) -> List[int]:
        """Sensors with at least one out-of-range reading."""
        return sorted({a.sensor_id for a in self.alarms})

    def alarm_rate(self) -> float:
        """Alarms per checked reading."""
        if self._n_checked == 0:
            return 0.0
        return len(self.alarms) / self._n_checked
