"""Markov-chain anomaly-detection baseline (Jha, Tan & Maxion [11]).

Learns a first-order Markov chain over discretised system states from a
*training* sequence assumed anomaly-free, then scores test windows by
the likelihood of their transitions.  The related-work observation the
paper cites (Ye et al. [14]) — Markov chains only perform well at low
noise — is directly measurable with this implementation.

Unlike the paper's method, this baseline (a) requires a clean training
phase, and (b) only answers "anomalous or not": it cannot localise the
misbehaving sensor nor type the anomaly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class MarkovChainScore:
    """Per-window anomaly score from the chain detector."""

    start_index: int
    log_likelihood_per_step: float
    anomalous: bool


@dataclass
class MarkovChainDetector:
    """First-order Markov chain over a discrete state alphabet.

    Parameters
    ----------
    n_states:
        Size of the discrete state alphabet.
    smoothing:
        Additive (Laplace) smoothing on transition counts, so unseen
        transitions score a finite penalty instead of -inf.
    threshold:
        Per-step log-likelihood below which a window is anomalous.
        Calibrate with :meth:`calibrate_threshold`.
    """

    n_states: int
    smoothing: float = 0.5
    threshold: float = -5.0
    _transition: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_states <= 0:
            raise ValueError("n_states must be positive")
        if self.smoothing <= 0:
            raise ValueError("smoothing must be positive")

    @property
    def is_trained(self) -> bool:
        """True once :meth:`train` has run."""
        return self._transition is not None

    def train(self, sequence: Sequence[int]) -> None:
        """Estimate the chain from an anomaly-free state sequence."""
        sequence = self._validate(sequence)
        counts = np.full((self.n_states, self.n_states), self.smoothing)
        for prev, curr in zip(sequence[:-1], sequence[1:]):
            counts[prev, curr] += 1.0
        self._transition = counts / counts.sum(axis=1, keepdims=True)

    def _validate(self, sequence: Sequence[int]) -> np.ndarray:
        arr = np.asarray(sequence, dtype=int)
        if arr.ndim != 1 or arr.size < 2:
            raise ValueError("need a 1-D sequence of at least 2 states")
        if arr.min() < 0 or arr.max() >= self.n_states:
            raise ValueError(f"states must be in [0, {self.n_states})")
        return arr

    def log_likelihood_per_step(self, sequence: Sequence[int]) -> float:
        """Average log transition probability along ``sequence``."""
        if self._transition is None:
            raise RuntimeError("detector is not trained")
        sequence = self._validate(sequence)
        total = 0.0
        steps = 0
        for prev, curr in zip(sequence[:-1], sequence[1:]):
            total += math.log(self._transition[prev, curr])
            steps += 1
        return total / steps

    def score_windows(
        self, sequence: Sequence[int], window: int = 6
    ) -> List[MarkovChainScore]:
        """Slide a scoring window over a test sequence."""
        if window < 2:
            raise ValueError("window must be at least 2")
        sequence = self._validate(sequence)
        scores: List[MarkovChainScore] = []
        for start in range(0, sequence.size - window + 1):
            chunk = sequence[start : start + window]
            value = self.log_likelihood_per_step(chunk)
            scores.append(
                MarkovChainScore(
                    start_index=start,
                    log_likelihood_per_step=value,
                    anomalous=value < self.threshold,
                )
            )
        return scores

    def calibrate_threshold(
        self,
        clean_sequence: Sequence[int],
        window: int = 6,
        quantile: float = 0.01,
        slack: float = 0.5,
    ) -> float:
        """Set the threshold from clean-data score statistics.

        Places the threshold ``slack`` below the given lower quantile of
        clean scores, targeting a false-positive rate around
        ``quantile``.  Returns the chosen threshold.
        """
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        scores = [
            s.log_likelihood_per_step
            for s in self.score_windows(clean_sequence, window)
        ]
        if not scores:
            raise ValueError("clean sequence too short to calibrate")
        self.threshold = float(np.quantile(scores, quantile) - slack)
        return self.threshold

    def detection_rate(
        self, sequence: Sequence[int], window: int = 6
    ) -> float:
        """Fraction of scored windows flagged anomalous."""
        scores = self.score_windows(sequence, window)
        if not scores:
            return 0.0
        return sum(s.anomalous for s in scores) / len(scores)
