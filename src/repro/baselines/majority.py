"""Majority-vote baseline detector.

Uses the same windowed majority machinery as the paper's pipeline (Eqs.
3-4 + k-of-n filtering) but stops at detection: no HMMs are estimated,
so the detector can say *which* sensor misbehaves but never *why*.  It
isolates the contribution of the paper's HMM layer — the diagnosis — in
the baseline-comparison experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.clustering import OnlineStateClusterer
from ..core.filtering import FilterBank, KOfNFilter
from ..core.identification import identify_window
from ..sensornet.collector import ObservationWindow


@dataclass
class MajorityVoteDetector:
    """Windowed majority-disagreement detector (detection only).

    Parameters
    ----------
    alpha / spawn_threshold / merge_threshold:
        Clustering knobs, same semantics as the full pipeline.
    filter_k / filter_n:
        k-of-n alarm filter parameters.
    """

    alpha: float = 0.10
    spawn_threshold: float = 10.0
    merge_threshold: float = 5.0
    filter_k: int = 3
    filter_n: int = 5
    clusterer: Optional[OnlineStateClusterer] = None
    filter_bank: FilterBank = field(default_factory=FilterBank)
    suspicious: Dict[int, int] = field(default_factory=dict)
    _n_windows: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        k, n = self.filter_k, self.filter_n
        self.filter_bank = FilterBank(factory=lambda: KOfNFilter(k=k, n=n))

    def process_window(self, window: ObservationWindow) -> List[int]:
        """Consume one window; returns sensors whose alarm is active."""
        per_sensor = window.per_sensor_mean()
        if not per_sensor:
            return self.filter_bank.active_sensors()
        if self.clusterer is None:
            self.clusterer = OnlineStateClusterer(
                initial_vectors=list(per_sensor.values())[:1],
                alpha=self.alpha,
                spawn_threshold=self.spawn_threshold,
                merge_threshold=self.merge_threshold,
            )
        sensor_ids = sorted(per_sensor)
        update = self.clusterer.update(
            np.vstack([per_sensor[s] for s in sensor_ids])
        )
        # The update already batch-assigned every sensor over the final
        # state positions; reuse those instead of re-scanning per sensor.
        assignment_of = dict(zip(sensor_ids, update.sensor_assignments))
        identification = identify_window(
            self.clusterer,
            per_sensor,
            overall_mean=window.overall_mean(),
            sensor_states={s: assignment_of[s] for s in per_sensor},
        )
        raw = {
            sensor_id: state != identification.correct_state
            for sensor_id, state in identification.sensor_states.items()
        }
        self.filter_bank.update(window.index, raw)
        self._n_windows += 1
        active = self.filter_bank.active_sensors()
        for sensor_id in active:
            self.suspicious[sensor_id] = self.suspicious.get(sensor_id, 0) + 1
        return active

    def process_windows(self, windows: Sequence[ObservationWindow]) -> List[int]:
        """Batch entry point; returns all sensors ever flagged."""
        for window in windows:
            self.process_window(window)
        return self.flagged_sensors()

    def flagged_sensors(self) -> List[int]:
        """Sensors whose filtered alarm was active at least once."""
        return sorted(self.suspicious.keys())

    @property
    def n_windows(self) -> int:
        """Windows processed so far."""
        return self._n_windows
