"""Offline clustering for the initial model-state estimate.

Table 1's six initial states are "determined by running an off-line
clustering algorithm on the entire data" (§4.1).  This module provides a
deterministic, dependency-free k-means (k-means++ seeding, Lloyd
iterations) used by the experiment harness for exactly that purpose, and
by the baselines to discretise traces into state alphabets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means fit.

    Attributes
    ----------
    centers:
        ``(k, d)`` cluster centres.
    labels:
        ``(n,)`` index of the centre each point belongs to.
    inertia:
        Sum of squared distances of points to their centres.
    iterations:
        Lloyd iterations performed.
    """

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int


def _kmeans_pp_seed(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centres proportionally to D²."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]))
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            centers[i:] = points[int(rng.integers(n))]
            break
        probs = closest_sq / total
        choice = int(rng.choice(n, p=probs))
        centers[i] = points[choice]
        dist_sq = np.sum((points - centers[i]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    seed: int = 0,
    max_iterations: int = 100,
    tol: float = 1e-6,
) -> KMeansResult:
    """Deterministic k-means over a point cloud.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix with ``n >= k``.
    k:
        Number of clusters.
    seed:
        Seeding RNG seed (results are deterministic given it).
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if k <= 0:
        raise ValueError("k must be positive")
    if points.shape[0] < k:
        raise ValueError("need at least k points")
    rng = np.random.default_rng(seed)
    centers = _kmeans_pp_seed(points, k, rng)

    labels = np.zeros(points.shape[0], dtype=int)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        labels = np.argmin(distances, axis=1)
        new_centers = centers.copy()
        for j in range(k):
            members = points[labels == j]
            if members.shape[0] > 0:
                new_centers[j] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the farthest point.
                farthest = int(np.argmax(distances.min(axis=1)))
                new_centers[j] = points[farthest]
        shift = float(np.linalg.norm(new_centers - centers))
        centers = new_centers
        if shift < tol:
            break

    distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
    labels = np.argmin(distances, axis=1)
    inertia = float(np.sum((distances[np.arange(points.shape[0]), labels]) ** 2))
    return KMeansResult(
        centers=centers, labels=labels, inertia=inertia, iterations=iterations
    )


def initial_states_from_trace(
    observations: np.ndarray, n_states: int, seed: int = 0
) -> np.ndarray:
    """Table 1's offline initial-state estimate from historical data.

    Sorts the centres by their first attribute so the returned order is
    stable across runs (useful for golden tests).
    """
    result = kmeans(observations, n_states, seed=seed)
    order = np.argsort(result.centers[:, 0])
    return result.centers[order]


def discretize(
    observations: np.ndarray, centers: np.ndarray
) -> np.ndarray:
    """Map observations to nearest-centre indices (baseline alphabets)."""
    observations = np.atleast_2d(np.asarray(observations, dtype=float))
    centers = np.atleast_2d(np.asarray(centers, dtype=float))
    distances = np.linalg.norm(
        observations[:, None, :] - centers[None, :, :], axis=2
    )
    return np.argmin(distances, axis=1)
