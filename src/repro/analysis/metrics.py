"""Evaluation metrics for detection and classification experiments.

Quantifies what the paper reports qualitatively: raw/filtered alarm
rates (Fig. 12's "1.5 % false alarm rate"), detection latency from fault
onset, and — for the ablation campaigns — a full classification
confusion matrix over the §3.3 taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.classification import AnomalyType, Diagnosis
from ..core.pipeline import DetectionPipeline


@dataclass(frozen=True)
class DetectionOutcome:
    """Detection-level result for one sensor in one run."""

    sensor_id: int
    corrupted: bool
    detected: bool
    detection_window: Optional[int]
    onset_window: Optional[int]

    @property
    def latency_windows(self) -> Optional[int]:
        """Windows from onset to the first filtered alarm (None if N/A)."""
        if self.detection_window is None or self.onset_window is None:
            return None
        return max(0, self.detection_window - self.onset_window)


def detection_outcomes(
    pipeline: DetectionPipeline,
    corrupted_sensors: Mapping[int, float],
    window_minutes: float,
) -> List[DetectionOutcome]:
    """Score detection per sensor against a ground-truth corruption map.

    Parameters
    ----------
    pipeline:
        A pipeline that has consumed the full run.
    corrupted_sensors:
        sensor id -> corruption onset time in minutes.
    window_minutes:
        Window duration, to convert onsets to window indices.
    """
    outcomes: List[DetectionOutcome] = []
    all_sensors = sorted(pipeline.alarm_generator.sensors_seen())
    for sensor_id in all_sensors:
        tracks = pipeline.tracks.tracks_for_sensor(sensor_id)
        detected = bool(tracks)
        detection_window = tracks[0].opened_window if tracks else None
        onset = corrupted_sensors.get(sensor_id)
        onset_window = (
            int(onset // window_minutes) + 1 if onset is not None else None
        )
        outcomes.append(
            DetectionOutcome(
                sensor_id=sensor_id,
                corrupted=sensor_id in corrupted_sensors,
                detected=detected,
                detection_window=detection_window,
                onset_window=onset_window,
            )
        )
    return outcomes


@dataclass(frozen=True)
class DetectionSummary:
    """Aggregate detection quality over one run."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int
    mean_latency_windows: Optional[float]

    @property
    def precision(self) -> float:
        """TP / (TP + FP), 1.0 when nothing was flagged."""
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN), 1.0 when nothing was corrupted."""
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0


def summarize_detection(outcomes: Sequence[DetectionOutcome]) -> DetectionSummary:
    """Reduce per-sensor outcomes to a precision/recall/latency summary."""
    tp = sum(1 for o in outcomes if o.corrupted and o.detected)
    fp = sum(1 for o in outcomes if not o.corrupted and o.detected)
    fn = sum(1 for o in outcomes if o.corrupted and not o.detected)
    tn = sum(1 for o in outcomes if not o.corrupted and not o.detected)
    latencies = [
        o.latency_windows
        for o in outcomes
        if o.corrupted and o.detected and o.latency_windows is not None
    ]
    return DetectionSummary(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        true_negatives=tn,
        mean_latency_windows=float(np.mean(latencies)) if latencies else None,
    )


@dataclass
class ConfusionMatrix:
    """Classification confusion matrix over the §3.3 taxonomy.

    Rows are ground-truth kinds (corruptor ``kind`` strings), columns
    are diagnosed :class:`AnomalyType` values.
    """

    counts: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def record(self, truth: str, diagnosed: AnomalyType) -> None:
        """Add one (truth, diagnosis) observation."""
        key = (truth, diagnosed.value)
        self.counts[key] = self.counts.get(key, 0) + 1

    def record_diagnoses(
        self,
        ground_truth: Mapping[int, str],
        diagnoses: Mapping[int, Diagnosis],
    ) -> None:
        """Record one run: per-sensor truth map vs per-sensor diagnoses.

        Corrupted sensors with no diagnosis at all are recorded against
        the pseudo-diagnosis ``"none"`` (missed detection).
        """
        for sensor_id, truth in ground_truth.items():
            diagnosis = diagnoses.get(sensor_id)
            if diagnosis is None:
                self.counts[(truth, "none")] = (
                    self.counts.get((truth, "none"), 0) + 1
                )
            else:
                self.record(truth, diagnosis.anomaly_type)

    @property
    def truths(self) -> List[str]:
        """Ground-truth labels seen so far, sorted."""
        return sorted({t for t, _ in self.counts})

    @property
    def labels(self) -> List[str]:
        """Diagnosis labels seen so far, sorted."""
        return sorted({d for _, d in self.counts})

    def accuracy(self, equivalences: Optional[Mapping[str, str]] = None) -> float:
        """Fraction of observations where diagnosis matches truth.

        ``equivalences`` maps truth labels to their acceptable diagnosis
        label when the two vocabularies differ (e.g. ground truth
        ``"drift"`` is acceptably diagnosed ``"stuck_at"`` once the
        drift saturates — the paper's own sensor 6 is that case).
        """
        equivalences = dict(equivalences or {})
        total = sum(self.counts.values())
        if total == 0:
            return 0.0
        correct = 0
        for (truth, diagnosed), count in self.counts.items():
            expected = equivalences.get(truth, truth)
            if diagnosed == expected:
                correct += count
        return correct / total

    def as_array(self) -> Tuple[np.ndarray, List[str], List[str]]:
        """(matrix, truth labels, diagnosis labels) for display."""
        truths = self.truths
        labels = self.labels
        matrix = np.zeros((len(truths), len(labels)), dtype=int)
        for (truth, diagnosed), count in self.counts.items():
            matrix[truths.index(truth), labels.index(diagnosed)] = count
        return matrix, truths, labels


def alarm_rates(pipeline: DetectionPipeline) -> Dict[int, float]:
    """Per-sensor raw-alarm rates (the Fig. 12 statistic)."""
    return {
        sensor_id: pipeline.alarm_generator.alarm_rate(sensor_id)
        for sensor_id in sorted(pipeline.alarm_generator.sensors_seen())
    }


def false_alarm_rate(
    pipeline: DetectionPipeline, corrupted_sensors: Sequence[int]
) -> float:
    """Mean raw-alarm rate over *healthy* sensors.

    The paper measures ≈1.5 % for a non-faulty GDI node; this is the
    matching aggregate.
    """
    corrupted = set(corrupted_sensors)
    rates = [
        rate
        for sensor_id, rate in alarm_rates(pipeline).items()
        if sensor_id not in corrupted
    ]
    return float(np.mean(rates)) if rates else 0.0
