"""Operator-facing incident reports.

Turns a pipeline's findings into the multi-section plain-text report an
on-call operator would read: what the environment has been doing, which
sensors are suspect, what kind of condition each one is in, and what
the recommended recovery action is.  The action table encodes the
paper's motivation for *distinguishing* errors from attacks:
"distinguishing faults from attacks is necessary to initiate a correct
recovery action" (§1).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.classification import AnomalyCategory, AnomalyType, Diagnosis
from ..core.pipeline import DetectionPipeline
from .reporting import render_kv, render_markov_model, render_table

#: Recommended recovery action per anomaly type (§1's motivation).
RECOVERY_ACTIONS: Dict[AnomalyType, str] = {
    AnomalyType.STUCK_AT: "schedule sensor replacement; exclude readings",
    AnomalyType.CALIBRATION: "re-calibrate remotely; correct readings by ratio",
    AnomalyType.ADDITIVE: "re-zero sensor; correct readings by offset",
    AnomalyType.RANDOM_NOISE: "monitor; readings still average correctly",
    AnomalyType.UNKNOWN_ERROR: "inspect device; exclude readings meanwhile",
    AnomalyType.DYNAMIC_CREATION: "SECURITY: isolate node, audit injected state",
    AnomalyType.DYNAMIC_DELETION: "SECURITY: isolate node, audit masked states",
    AnomalyType.DYNAMIC_CHANGE: "SECURITY: isolate node, audit remapped states",
    AnomalyType.MIXED: "SECURITY: isolate node, full forensic audit",
    AnomalyType.NONE: "no action",
}


def recommended_action(diagnosis: Diagnosis) -> str:
    """The §1-motivated recovery action for one diagnosis."""
    return RECOVERY_ACTIONS.get(diagnosis.anomaly_type, "inspect manually")


def incident_report(pipeline: DetectionPipeline, title: str = "Incident report") -> str:
    """Render the full operator report for a pipeline's current state."""
    if pipeline.n_windows == 0:
        raise ValueError("pipeline has processed no windows")

    sections: List[str] = [title, "=" * len(title)]

    system = pipeline.system_diagnosis()
    overview = {
        "windows processed": pipeline.n_windows,
        "model states": (
            pipeline.clusterer.n_states if pipeline.clusterer else 0
        ),
        "system verdict": system.anomaly_type.value,
        "open tracks": len(pipeline.tracks.open_sensor_ids),
        "total tracks": pipeline.tracks.n_tracks,
    }
    sections.append(render_kv(overview, title="overview"))

    model = pipeline.correct_model(prune=True)
    sections.append(
        render_markov_model(model, title="environment model M_C (clean)")
    )

    diagnoses = pipeline.diagnose_all()
    if diagnoses:
        rows = []
        for sensor_id, diagnosis in sorted(diagnoses.items()):
            rows.append(
                (
                    sensor_id,
                    diagnosis.category.value,
                    diagnosis.anomaly_type.value,
                    f"{diagnosis.confidence:.2f}",
                    recommended_action(diagnosis),
                )
            )
        sections.append(
            render_table(
                ("sensor", "category", "type", "confidence", "recommended action"),
                rows,
                title="per-sensor diagnoses",
            )
        )
    else:
        sections.append("per-sensor diagnoses: none — network healthy")

    attacks = [
        d for d in diagnoses.values() if d.category is AnomalyCategory.ATTACK
    ]
    if attacks:
        sections.append(
            "SECURITY ALERT: %d sensor(s) participating in a %s attack"
            % (len(attacks), attacks[0].anomaly_type.value)
        )

    return "\n\n".join(sections)
