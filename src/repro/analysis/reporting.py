"""Plain-text rendering of tables, matrices, and series.

The benchmark harness prints the same artefacts the paper shows —
emission matrices with ``(temp,humidity)`` state labels, Markov-model
edge lists, alarm time series — as aligned ASCII so ``pytest
benchmarks/`` output can be compared to the paper's tables directly.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core.markov import MarkovModel
from ..core.online_hmm import EmissionMatrix


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    headers = [str(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def state_label(
    state_id: int, state_vectors: Mapping[int, np.ndarray]
) -> str:
    """``(t,h)`` label for a state id, or ``⊥`` / ``s<id>`` fallbacks."""
    if state_id < 0:
        return "⊥"
    vector = state_vectors.get(state_id)
    if vector is None:
        return f"s{state_id}"
    coords = ",".join(f"{x:.0f}" for x in np.asarray(vector))
    return f"({coords})"


def render_emission_matrix(
    emission: EmissionMatrix,
    state_vectors: Mapping[int, np.ndarray],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render a ``B`` matrix the way the paper's Tables 2-7 do."""
    headers = ["i↓ j→"] + [
        state_label(s, state_vectors) for s in emission.symbol_ids
    ]
    rows = []
    for row_index, state_id in enumerate(emission.state_ids):
        cells: List[object] = [state_label(state_id, state_vectors)]
        cells.extend(
            f"{value:.{precision}f}" for value in emission.matrix[row_index]
        )
        rows.append(cells)
    return render_table(headers, rows, title=title)


def render_markov_model(
    model: MarkovModel,
    title: Optional[str] = None,
    min_probability: float = 0.01,
) -> str:
    """Render a Markov model as a labelled edge list (Fig. 7 style)."""
    rows = []
    for src, dst, p in model.transitions(min_probability):
        rows.append((model.label(src), model.label(dst), f"{p:.2f}"))
    header = ["from", "to", "prob"]
    visits = ", ".join(
        f"{model.label(s)}×{model.visit_counts[i]}"
        for i, s in enumerate(model.state_ids)
    )
    table = render_table(header, rows, title=title)
    return f"{table}\nvisits: {visits}"


def render_alarm_series(
    series: Sequence[bool], width: int = 72, title: Optional[str] = None
) -> str:
    """Render a raw-alarm boolean series as a compact strip (Fig. 12).

    Each output character aggregates ``ceil(len/width)`` windows:
    ``.`` none fired, ``:`` some fired, ``#`` all fired.
    """
    if not series:
        return (title + "\n" if title else "") + "(empty)"
    chunk = max(1, int(np.ceil(len(series) / width)))
    chars = []
    for start in range(0, len(series), chunk):
        window = series[start : start + chunk]
        fired = sum(window)
        if fired == 0:
            chars.append(".")
        elif fired == len(window):
            chars.append("#")
        else:
            chars.append(":")
    strip = "".join(chars)
    rate = 100.0 * sum(series) / len(series)
    body = f"{strip}  ({rate:.1f}% of {len(series)} windows)"
    return f"{title}\n{body}" if title else body


def render_kv(pairs: Mapping[str, object], title: Optional[str] = None) -> str:
    """Render key-value pairs, one per line."""
    lines = [title] if title else []
    width = max((len(k) for k in pairs), default=0)
    for key, value in pairs.items():
        lines.append(f"{key.ljust(width)} : {value}")
    return "\n".join(lines)
