"""JSON export of pipeline results.

A deployment wants its collector's findings to outlive the process:
this module serialises everything a pipeline derived — the clean
environment model ``M_C``, the learned ``B`` matrices, per-sensor
diagnoses, alarm statistics — into a stable, versioned JSON document,
and parses such documents back into plain summaries for dashboards or
archival comparison.

Two sibling document kinds live side by side:

* **reports** (this module, :data:`REPORT_FORMAT_VERSION`) — derived
  findings for humans and dashboards; lossy by design.
* **checkpoints** (:mod:`repro.resilience.checkpoint`,
  re-exported here as :func:`save_checkpoint`/:func:`load_checkpoint`) —
  the complete pipeline state, lossless, for crash recovery.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..core.classification import AnomalyType, Diagnosis
from ..core.pipeline import DetectionPipeline
from ..resilience.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    load_checkpoint,
    save_checkpoint,
)

PathLike = Union[str, Path]

#: Format version stamped into every report document.
REPORT_FORMAT_VERSION = 1

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "REPORT_FORMAT_VERSION",
    "ReportSummary",
    "load_checkpoint",
    "load_report",
    "pipeline_to_dict",
    "save_checkpoint",
    "save_report",
]


def _emission_to_dict(emission) -> Dict[str, object]:
    return {
        "states": list(emission.state_ids),
        "symbols": list(emission.symbol_ids),
        "matrix": [[round(float(x), 6) for x in row] for row in emission.matrix],
    }


def _diagnosis_to_dict(diagnosis: Diagnosis) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "anomaly_type": diagnosis.anomaly_type.value,
        "category": diagnosis.category.value,
        "confidence": round(float(diagnosis.confidence), 4),
    }
    stuck_vector = diagnosis.evidence.get("stuck_vector")
    if stuck_vector is not None:
        entry["stuck_vector"] = [round(float(x), 3) for x in np.asarray(stuck_vector)]
    comparison = diagnosis.evidence.get("comparison")
    if comparison is not None and comparison.ratio_mean is not None:
        entry["ratio_mean"] = [round(float(x), 4) for x in comparison.ratio_mean]
        entry["diff_mean"] = [round(float(x), 4) for x in comparison.diff_mean]
    return entry


def pipeline_to_dict(pipeline: DetectionPipeline) -> Dict[str, object]:
    """Serialise a pipeline's findings into a JSON-ready dictionary."""
    if pipeline.n_windows == 0:
        raise ValueError("pipeline has processed no windows")
    model = pipeline.correct_model(prune=True)
    state_vectors = pipeline.state_vectors()
    min_visits = pipeline.config.classifier.min_state_visits

    document: Dict[str, object] = {
        "format_version": REPORT_FORMAT_VERSION,
        "n_windows": pipeline.n_windows,
        "config": pipeline.config.as_dict(),
        "model_states": {
            str(state_id): [round(float(x), 3) for x in vector]
            for state_id, vector in sorted(state_vectors.items())
        },
        "correct_model": {
            "states": list(model.state_ids),
            "visit_counts": list(model.visit_counts),
            "transitions": [
                {"from": src, "to": dst, "p": round(p, 4)}
                for src, dst, p in model.transitions(0.01)
            ],
        },
        "b_co": _emission_to_dict(
            pipeline.m_co.emission_matrix(
                min_state_visits=min_visits, min_symbol_visits=min_visits
            )
        ),
        "system_diagnosis": _diagnosis_to_dict(pipeline.system_diagnosis()),
        "alarm_rates": {
            str(sensor_id): round(
                pipeline.alarm_generator.alarm_rate(sensor_id), 4
            )
            for sensor_id in sorted(pipeline.alarm_generator.sensors_seen())
        },
        "tracks": [
            {
                "track_id": track.track_id,
                "sensor_id": track.sensor_id,
                "opened_window": track.opened_window,
                "closed_window": track.closed_window,
                "length": track.length,
            }
            for track in pipeline.tracks.tracks
        ],
        "diagnoses": {
            str(sensor_id): _diagnosis_to_dict(diagnosis)
            for sensor_id, diagnosis in pipeline.diagnose_all().items()
        },
    }
    return document


def save_report(pipeline: DetectionPipeline, path: PathLike) -> None:
    """Write the pipeline's findings to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(pipeline_to_dict(pipeline), handle, indent=2, sort_keys=True)


@dataclass(frozen=True)
class ReportSummary:
    """Parsed essentials of a saved report document."""

    format_version: int
    n_windows: int
    system_anomaly: AnomalyType
    sensor_anomalies: Dict[int, AnomalyType]
    n_model_states: int
    n_tracks: int

    @property
    def anomalous_sensors(self) -> List[int]:
        """Sensors diagnosed with anything other than NONE."""
        return sorted(
            s for s, a in self.sensor_anomalies.items() if a is not AnomalyType.NONE
        )


def load_report(path: PathLike) -> ReportSummary:
    """Parse a saved report into a :class:`ReportSummary`.

    Raises
    ------
    ValueError
        For missing fields or an unsupported format version.
    """
    path = Path(path)
    with path.open("r") as handle:
        document = json.load(handle)
    version = document.get("format_version")
    if version != REPORT_FORMAT_VERSION:
        raise ValueError(f"unsupported report format version: {version!r}")
    try:
        return ReportSummary(
            format_version=version,
            n_windows=int(document["n_windows"]),
            system_anomaly=AnomalyType(
                document["system_diagnosis"]["anomaly_type"]
            ),
            sensor_anomalies={
                int(sensor_id): AnomalyType(entry["anomaly_type"])
                for sensor_id, entry in document["diagnoses"].items()
            },
            n_model_states=len(document["model_states"]),
            n_tracks=len(document["tracks"]),
        )
    except KeyError as missing:
        raise ValueError(f"report is missing field {missing}") from None
