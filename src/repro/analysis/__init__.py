"""Analysis utilities: offline clustering, metrics, plain-text reports,
operator incident reports, and JSON persistence of findings."""

from .incident import RECOVERY_ACTIONS, incident_report, recommended_action
from .metrics import (
    ConfusionMatrix,
    DetectionOutcome,
    DetectionSummary,
    alarm_rates,
    detection_outcomes,
    false_alarm_rate,
    summarize_detection,
)
from .offline_clustering import (
    KMeansResult,
    discretize,
    initial_states_from_trace,
    kmeans,
)
from .reporting import (
    render_alarm_series,
    render_emission_matrix,
    render_kv,
    render_markov_model,
    render_table,
    state_label,
)
from .serialization import (
    REPORT_FORMAT_VERSION,
    ReportSummary,
    load_report,
    pipeline_to_dict,
    save_report,
)

__all__ = [
    "ConfusionMatrix",
    "DetectionOutcome",
    "DetectionSummary",
    "KMeansResult",
    "RECOVERY_ACTIONS",
    "REPORT_FORMAT_VERSION",
    "ReportSummary",
    "alarm_rates",
    "detection_outcomes",
    "discretize",
    "false_alarm_rate",
    "incident_report",
    "initial_states_from_trace",
    "kmeans",
    "load_report",
    "pipeline_to_dict",
    "recommended_action",
    "render_alarm_series",
    "render_emission_matrix",
    "render_kv",
    "render_markov_model",
    "render_table",
    "save_report",
    "state_label",
    "summarize_detection",
]
