"""Command-line interface: reproduce paper artefacts from the shell.

Usage (also available as ``python -m repro``)::

    python -m repro list
    python -m repro reproduce fig7 --days 21
    python -m repro reproduce table6 --days 21 --seed 2003
    python -m repro scenario stuck_at --days 14
    python -m repro scenario clean --checkpoint state.json
    python -m repro sweep a1
    python -m repro chaos --days 7 --crash-at 40 --crash-at 90
    python -m repro chaos --fleet --tenants 8 --poisoned 2 --fleet-seed 1
    python -m repro chaos --fleet --solo-reference --tenants 8 --poisoned 2
    python -m repro fleet-soak --seeds 5 --tenants 8 --poisoned 3
    python -m repro campaign clean stuck_at calibration --jobs 4
    python -m repro campaign clean stuck_at --journal runs/j1 --task-timeout 120
    python -m repro campaign clean stuck_at --jobs 2 --chaos-kill-prob 0.2
    python -m repro bench
    python -m repro bench --check --tolerance 0.3
    python -m repro bench --profile
    python -m repro parity --days 3 --seed 7
    python -m repro parity --fleet --tenants 18
    python -m repro fleet-bench --sizes 1,4,16,64
    python -m repro fuzz --seeds 100
    python -m repro fuzz --seeds 5 --soak
    python -m repro fuzz --fleet --tenants 6 --poisoned 2

``reproduce`` regenerates one paper table/figure and prints its ASCII
rendering; ``scenario`` runs one standard corruption scenario and prints
the per-sensor diagnoses (``--checkpoint`` also writes a restorable
pipeline checkpoint); ``sweep`` runs one ablation study; ``chaos`` runs
an infrastructure chaos campaign (bursty loss, delay/reordering,
duplication, clock skew, collector crash + checkpoint restart) and
prints the degradation report (``--fleet`` instead poisons K of N
tenants of a fault-isolating :class:`~repro.fleet.ResilientFleetEngine`
with seeded NaN/Inf bursts, exploding values, malformed shapes, and
forced kernel exceptions, asserting survivors stay bit-identical to
solo runs; ``--solo-reference`` prints the clean tenants' independent
solo digests in the same line format for external diffing);
``fleet-soak`` repeats the fleet poisoning across many seeds and kind
mixes; ``campaign`` fans several scenarios out
across the fault-tolerant worker runtime (per-task retries with
backoff, deadlines via ``--task-timeout``, worker-crash recovery,
poison-spec quarantine — exits non-zero if any spec was quarantined —
and a durable resume journal via ``--journal``; the ``--chaos-*``
flags soak-test it with seeded worker-level faults) and prints one
verdict line each; ``bench``
times the hot kernels and writes (or, with ``--check``, verifies)
``BENCH_pipeline.json`` (``--profile`` appends a cProfile table of the
fused hot path); ``parity`` replays one trace through the per-window
oracle and the fused fast path and exits non-zero unless digests,
snapshots, and per-window results match exactly (``--fleet`` instead
packs a heterogeneous tenant fleet into one batched
:class:`~repro.fleet.FleetEngine` and checks every tenant against its
own independent run); ``fleet-bench`` measures the fleet engine's
amortized cost per deployment-window against independent per-tenant
runs across fleet sizes; ``fuzz`` drives the
pipeline with seeded
adversarial streams (NaN/Inf bursts, floods, coordinated corruption)
and exits non-zero on any crash, invariant violation, or checkpoint
round-trip divergence.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from . import experiments
from .experiments import cached_scenario

#: artefact name -> (scenario name, callable taking a ScenarioRun).
_ARTEFACTS: Dict[str, "tuple[str, Callable]"] = {
    "table1": ("clean", lambda run: experiments.table1(run.config)),
    "fig6": ("clean", lambda run: experiments.figure6(run, day_index=8)),
    "fig7": ("clean", experiments.figure7),
    "fig8": ("faulty", experiments.figure8),
    "fig9": ("faulty", experiments.figure9),
    "fig12": ("faulty", experiments.figure12),
    "table2_3": ("faulty", experiments.table2_3),
    "table4_5": ("faulty", experiments.table4_5),
    "table6": ("deletion", experiments.table6),
    "table7": ("creation", experiments.table7),
}

#: ablation id -> zero-argument callable returning a renderable result.
_SWEEPS: Dict[str, Callable] = {
    "a1": experiments.window_size_sweep,
    "a2": experiments.learning_factor_sweep,
    "a3": experiments.compromised_fraction_sweep,
    "a4": experiments.filter_comparison,
    "a6": experiments.baseline_comparison,
    "a7": experiments.dynamic_change_study,
}

_SCENARIOS = (
    "clean",
    "faulty",
    "stuck_at",
    "calibration",
    "additive",
    "random_noise",
    "deletion",
    "creation",
    "change",
    "mixed",
)


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the DSN'06 error-vs-attack paper artefacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available artefacts and scenarios")

    reproduce = sub.add_parser("reproduce", help="regenerate a paper artefact")
    reproduce.add_argument("artefact", choices=sorted(_ARTEFACTS))
    reproduce.add_argument("--days", type=int, default=21)
    reproduce.add_argument("--seed", type=int, default=2003)

    scenario = sub.add_parser("scenario", help="run a standard scenario")
    scenario.add_argument("name", choices=_SCENARIOS)
    scenario.add_argument("--days", type=int, default=14)
    scenario.add_argument("--seed", type=int, default=2003)
    scenario.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="also write the findings to PATH as JSON",
    )
    scenario.add_argument(
        "--incident-report",
        action="store_true",
        help="print the full operator incident report",
    )
    scenario.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="write a restorable pipeline checkpoint to PATH as JSON",
    )

    sweep = sub.add_parser("sweep", help="run an ablation study")
    sweep.add_argument("id", choices=sorted(_SWEEPS))

    chaos = sub.add_parser("chaos", help="run an infrastructure chaos campaign")
    chaos.add_argument("--days", type=int, default=7)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--no-burst",
        action="store_true",
        help="disable the Gilbert-Elliott bursty loss process",
    )
    chaos.add_argument(
        "--loss-prob",
        type=float,
        default=0.15,
        help="i.i.d. packet loss used when the burst process is disabled",
    )
    chaos.add_argument("--corruption-prob", type=float, default=0.01)
    chaos.add_argument("--delay-prob", type=float, default=0.10)
    chaos.add_argument("--max-delay", type=float, default=90.0, metavar="MINUTES")
    chaos.add_argument("--duplicate-prob", type=float, default=0.05)
    chaos.add_argument(
        "--crash-at",
        type=int,
        action="append",
        default=None,
        metavar="WINDOW",
        help="kill the collector at this window index and restart from "
        "the latest checkpoint (repeatable)",
    )
    chaos.add_argument(
        "--checkpoint-every",
        type=int,
        default=5,
        metavar="WINDOWS",
        help="checkpoint cadence in processed windows",
    )
    chaos.add_argument(
        "--skew",
        action="append",
        default=None,
        metavar="SENSOR:MINUTES",
        help="give one mote a skewed clock, e.g. --skew 2:-90 (repeatable)",
    )
    chaos.add_argument(
        "--fleet",
        action="store_true",
        help="fleet mode: poison K of N tenants of a fault-isolating "
        "fleet engine instead of attacking the infrastructure",
    )
    _add_fleet_poison_args(chaos)
    chaos.add_argument(
        "--fleet-seed",
        type=int,
        default=0,
        help="seed for victim selection, kinds, and burst placement",
    )
    chaos.add_argument(
        "--solo-reference",
        action="store_true",
        help="with --fleet: print only the clean tenants' independent "
        "solo digests (the oracle the fleet run is diffed against)",
    )

    fleet_soak = sub.add_parser(
        "fleet-soak",
        help="multi-seed fleet poisoning soak across all poison kinds",
    )
    fleet_soak.add_argument(
        "--seeds", type=int, default=5, help="independent soak seeds to run"
    )
    fleet_soak.add_argument("--base-seed", type=int, default=0)
    _add_fleet_poison_args(fleet_soak)

    campaign = sub.add_parser(
        "campaign", help="run several scenarios across worker processes"
    )
    campaign.add_argument("names", nargs="+", choices=_SCENARIOS)
    campaign.add_argument("--days", type=int, default=14)
    campaign.add_argument("--seed", type=int, default=2003)
    campaign.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes (0 = all cores, 1 = serial in-process)",
    )
    campaign.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "scenario trace cache directory: reruns load generated "
            "traces instead of re-simulating (identical results)"
        ),
    )
    campaign.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help=(
            "durable campaign journal directory: an append-only JSONL "
            "write-ahead log; rerunning with the same DIR resumes an "
            "interrupted campaign, replaying completed specs "
            "exactly-once and executing only the remainder"
        ),
    )
    campaign.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per spec after its first failed attempt; a spec "
        "that fails every retry is quarantined, not fatal (default 2)",
    )
    campaign.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt deadline; a task past it is declared hung, "
        "its pool is rebuilt, and the attempt counts as a failure "
        "(default: no deadline; enforced only with --jobs >= 2)",
    )
    campaign.add_argument(
        "--backoff-base",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="first retry delay; doubles per attempt with "
        "deterministic jitter (default 0.05)",
    )
    campaign.add_argument(
        "--chaos-kill-prob",
        type=float,
        default=0.0,
        metavar="P",
        help="worker chaos: per-attempt probability the worker process "
        "is SIGKILLed (soak-tests the recovery path)",
    )
    campaign.add_argument(
        "--chaos-hang-prob",
        type=float,
        default=0.0,
        metavar="P",
        help="worker chaos: per-attempt probability the task hangs "
        "(pair with --task-timeout)",
    )
    campaign.add_argument(
        "--chaos-exception-prob",
        type=float,
        default=0.0,
        metavar="P",
        help="worker chaos: per-attempt probability the task raises",
    )
    campaign.add_argument(
        "--chaos-hang-seconds",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="how long an injected hang sleeps (default 600)",
    )
    campaign.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the deterministic worker-chaos draws",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="adversarially fuzz the pipeline with pathological streams",
    )
    fuzz.add_argument(
        "--seeds", type=int, default=25, help="independent fuzz seeds to run"
    )
    fuzz.add_argument(
        "--windows",
        type=int,
        default=None,
        help="windows per seed (default 80, or 400 with --soak)",
    )
    fuzz.add_argument(
        "--soak",
        action="store_true",
        help="soak variant: longer streams per seed",
    )
    fuzz.add_argument("--base-seed", type=int, default=0)
    fuzz.add_argument(
        "--mode",
        choices=("warn", "repair", "raise"),
        default="warn",
        help="supervisor mode under test",
    )
    fuzz.add_argument(
        "--fleet",
        action="store_true",
        help="drive an N-tenant resilient fleet through the pathology "
        "kinds; non-poisoned tenants must stay digest-identical to "
        "solo runs",
    )
    fuzz.add_argument(
        "--tenants",
        type=int,
        default=6,
        help="fleet size for --fleet (default 6)",
    )
    fuzz.add_argument(
        "--poisoned",
        type=int,
        default=2,
        help="tenants fed pathological streams with --fleet (default 2)",
    )

    bench = sub.add_parser(
        "bench", help="time the hot kernels / check for perf regressions"
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="compare against the existing JSON instead of overwriting it",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional slowdown before --check fails (default 0.30)",
    )
    bench.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="benchmark JSON location (default BENCH_pipeline.json)",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes for the campaign timing (0 = all cores)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of repetitions per kernel",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="append a cProfile top-25 cumulative table for the fused "
        "pipeline hot path",
    )

    parity = sub.add_parser(
        "parity",
        help="verify the fused fast path is bit-identical to the "
        "per-window oracle",
    )
    parity.add_argument("--days", type=int, default=3)
    parity.add_argument("--seed", type=int, default=7)
    parity.add_argument(
        "--fleet",
        action="store_true",
        help="verify the batched fleet engine against independent "
        "per-tenant runs over a heterogeneous fleet instead",
    )
    parity.add_argument(
        "--tenants",
        type=int,
        default=18,
        help="fleet size for --fleet (default 18)",
    )
    parity.add_argument(
        "--backend",
        choices=("numpy", "compiled"),
        default="numpy",
        help="kernel backend to verify (compiled falls back to the "
        "numpy flavor, with a warning, when numba is unavailable)",
    )

    fleet_bench = sub.add_parser(
        "fleet-bench",
        help="amortized fleet-engine cost per deployment-window vs "
        "fleet size",
    )
    fleet_bench.add_argument(
        "--sizes",
        default="1,4,16,64",
        help="comma-separated fleet sizes to measure (default 1,4,16,64)",
    )
    fleet_bench.add_argument(
        "--windows",
        type=int,
        default=400,
        help="windows per tenant (default 400)",
    )
    fleet_bench.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="best-of repetitions per fleet size",
    )

    return parser


def _add_fleet_poison_args(parser: argparse.ArgumentParser) -> None:
    """Shared poison-plan knobs for ``chaos --fleet`` and ``fleet-soak``."""
    parser.add_argument(
        "--tenants", type=int, default=8, help="fleet size N (default 8)"
    )
    parser.add_argument(
        "--poisoned",
        type=int,
        default=2,
        help="tenants K poisoned per run (default 2)",
    )
    parser.add_argument(
        "--kinds",
        default=None,
        metavar="KIND,KIND,...",
        help="poison kinds to draw from (default: all of nan_burst, "
        "inf_burst, exploding, malformed, exception)",
    )
    parser.add_argument(
        "--fleet-windows",
        type=int,
        default=240,
        help="windows per tenant (default 240)",
    )
    parser.add_argument(
        "--burst",
        type=int,
        default=5,
        help="consecutive poisoned windows per victim (default 5)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=64,
        help="epoch length / checkpoint cadence in windows (default 64)",
    )
    parser.add_argument(
        "--probation",
        type=int,
        default=12,
        help="consecutive clean windows before re-admission (default 12)",
    )
    parser.add_argument(
        "--max-recoveries",
        type=int,
        default=2,
        help="quarantine/restore cycles per tenant before it is parked "
        "permanently (default 2)",
    )


def _parse_kinds(text: Optional[str]) -> "tuple[str, ...]":
    from .resilience.fleet_chaos import POISON_KINDS

    if text is None:
        return POISON_KINDS
    kinds = tuple(part.strip() for part in text.split(",") if part.strip())
    unknown = set(kinds) - set(POISON_KINDS)
    if not kinds or unknown:
        raise SystemExit(
            f"--kinds expects a comma list from {list(POISON_KINDS)}, "
            f"got {text!r}"
        )
    return kinds


def _cmd_list() -> str:
    lines = ["artefacts:"]
    lines += [f"  {name}" for name in sorted(_ARTEFACTS)]
    lines.append("scenarios:")
    lines += [f"  {name}" for name in _SCENARIOS]
    lines.append("sweeps:")
    lines += [f"  {name}" for name in sorted(_SWEEPS)]
    return "\n".join(lines)


def _cmd_reproduce(artefact: str, days: int, seed: int) -> str:
    scenario_name, build = _ARTEFACTS[artefact]
    run = cached_scenario(scenario_name, n_days=days, seed=seed)
    return build(run).render()


def _cmd_scenario(
    name: str,
    days: int,
    seed: int,
    save: Optional[str] = None,
    full_report: bool = False,
    checkpoint: Optional[str] = None,
) -> str:
    run = cached_scenario(name, n_days=days, seed=seed)
    pipeline = run.pipeline
    if save is not None:
        from .analysis.serialization import save_report

        save_report(pipeline, save)
    if checkpoint is not None:
        from .resilience.checkpoint import save_checkpoint

        save_checkpoint(pipeline, checkpoint)
    if full_report:
        from .analysis.incident import incident_report

        return incident_report(pipeline, title=f"Incident report — {name}")
    lines = [f"scenario {name}: {pipeline.n_windows} windows processed"]
    system = pipeline.system_diagnosis()
    lines.append(f"system verdict: {system.anomaly_type.value}")
    truth = run.ground_truth
    if truth:
        lines.append(f"ground truth: {truth}")
    diagnoses = pipeline.diagnose_all()
    if diagnoses:
        lines.append("per-sensor diagnoses:")
        for sensor_id, diagnosis in diagnoses.items():
            lines.append(
                f"  sensor {sensor_id}: {diagnosis.category.value} / "
                f"{diagnosis.anomaly_type.value} "
                f"(confidence {diagnosis.confidence:.2f})"
            )
    else:
        lines.append("per-sensor diagnoses: none")
    model = pipeline.correct_model()
    lines.append(
        "M_C states: " + ", ".join(model.label(s) for s in model.state_ids)
    )
    return "\n".join(lines)


def _parse_skews(entries: Optional[List[str]]) -> Dict[int, float]:
    skews: Dict[int, float] = {}
    for entry in entries or ():
        sensor_text, _, minutes_text = entry.partition(":")
        try:
            skews[int(sensor_text)] = float(minutes_text)
        except ValueError:
            raise SystemExit(
                f"--skew expects SENSOR:MINUTES (e.g. 2:-90), got {entry!r}"
            )
    return skews


def _cmd_chaos(args: argparse.Namespace) -> "tuple[str, int]":
    from .resilience.chaos import ChaosSpec, run_chaos
    from .sensornet.network import GilbertElliottLoss

    if args.fleet:
        from .resilience.fleet_chaos import fleet_chaos_command

        return fleet_chaos_command(
            n_tenants=args.tenants,
            n_poisoned=args.poisoned,
            kinds=_parse_kinds(args.kinds),
            seed=args.fleet_seed,
            n_windows=args.fleet_windows,
            burst=args.burst,
            checkpoint_interval=args.checkpoint_interval,
            probation=args.probation,
            max_recoveries=args.max_recoveries,
            solo_reference=args.solo_reference,
        )
    spec = ChaosSpec(
        n_days=args.days,
        seed=args.seed,
        burst=None if args.no_burst else GilbertElliottLoss(),
        loss_probability=args.loss_prob,
        corruption_probability=args.corruption_prob,
        delay_probability=args.delay_prob,
        max_delay_minutes=args.max_delay,
        duplicate_probability=args.duplicate_prob,
        clock_skew_minutes=_parse_skews(args.skew),
        crash_at_windows=tuple(args.crash_at or ()),
        checkpoint_every_windows=args.checkpoint_every,
    )
    report, _ = run_chaos(spec)
    return report.render(), 0


def _cmd_fleet_soak(args: argparse.Namespace) -> "tuple[str, int]":
    from .resilience.fleet_chaos import fleet_soak_command

    return fleet_soak_command(
        n_seeds=args.seeds,
        base_seed=args.base_seed,
        n_tenants=args.tenants,
        n_poisoned=args.poisoned,
        kinds=_parse_kinds(args.kinds),
        n_windows=args.fleet_windows,
        burst=args.burst,
        checkpoint_interval=args.checkpoint_interval,
        probation=args.probation,
        max_recoveries=args.max_recoveries,
    )


def _cmd_campaign(args: argparse.Namespace) -> "tuple[str, int]":
    from .experiments.retry import RetryPolicy
    from .experiments.runner import ScenarioSpec, run_campaign

    chaos = None
    if (
        args.chaos_kill_prob
        or args.chaos_hang_prob
        or args.chaos_exception_prob
    ):
        from .resilience.chaos import WorkerChaos

        chaos = WorkerChaos(
            kill_probability=args.chaos_kill_prob,
            hang_probability=args.chaos_hang_prob,
            exception_probability=args.chaos_exception_prob,
            hang_seconds=args.chaos_hang_seconds,
            seed=args.chaos_seed,
        )
    policy = RetryPolicy(
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        backoff_base=args.backoff_base,
    )
    specs = [
        ScenarioSpec(name=name, n_days=args.days, seed=args.seed)
        for name in args.names
    ]
    try:
        report = run_campaign(
            specs,
            n_jobs=args.jobs,
            cache_dir=args.cache_dir,
            policy=policy,
            chaos=chaos,
            journal_dir=args.journal,
        )
    except KeyboardInterrupt:
        lines = ["campaign interrupted"]
        if args.journal is not None:
            lines.append(
                f"journal flushed to {args.journal}; rerun the same "
                "command to resume (completed specs are skipped)"
            )
        else:
            lines.append(
                "no --journal was given, so finished work is lost; "
                "use --journal DIR to make campaigns resumable"
            )
        return "\n".join(lines), 130
    outcomes = report.outcomes
    lines = [
        f"campaign: {len(outcomes)} scenarios, {args.days} days, "
        f"seed {args.seed}, jobs {args.jobs if args.jobs else 'all'}"
    ]
    for outcome in outcomes:
        if outcome.quarantined:
            reason = outcome.error.splitlines()[0]
            lines.append(
                f"  {outcome.name}: QUARANTINED after "
                f"{outcome.attempts} attempts ({reason})"
            )
            continue
        flagged = ", ".join(
            f"{sensor}:{kind}" for sensor, (_, kind, _) in
            sorted(outcome.sensor_diagnoses.items())
        ) or "none"
        lines.append(
            f"  {outcome.name}: system={outcome.system_diagnosis} "
            f"sensors=[{flagged}] windows={outcome.n_windows} "
            f"digest={outcome.digest[:12]}"
        )
    if args.cache_dir is not None:
        hits = sum(1 for outcome in outcomes if outcome.from_cache)
        lines.append(f"cache: hits={hits} misses={len(outcomes) - hits}")
    if (
        report.n_retries
        or report.n_journal_skips
        or report.quarantined
        or args.journal is not None
        or chaos is not None
    ):
        lines.append(report.stats_line())
    return "\n".join(lines), 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> "tuple[str, int]":
    from . import perf

    return perf.bench_command(
        output=args.output or perf.DEFAULT_OUTPUT,
        check=args.check,
        tolerance=(
            perf.DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
        ),
        n_jobs=args.jobs,
        repeats=args.repeats,
        profile=args.profile,
    )


def _cmd_parity(args: argparse.Namespace) -> "tuple[str, int]":
    from . import perf

    if args.fleet:
        return perf.fleet_parity_command(
            n_tenants=args.tenants, n_days=args.days, backend=args.backend
        )
    return perf.parity_command(
        n_days=args.days, seed=args.seed, backend=args.backend
    )


def _cmd_fleet_bench(args: argparse.Namespace) -> "tuple[str, int]":
    from . import perf

    sizes = tuple(
        int(part) for part in args.sizes.split(",") if part.strip()
    )
    result = perf.bench_fleet(
        n_list=sizes, repeats=args.repeats, n_windows=args.windows
    )
    workload = result["workload"]
    lines = [
        "fleet bench: amortized cost per deployment-window "
        f"({workload['n_windows']} windows/tenant, dwell "
        f"{workload['dwell']}, noise {workload['noise']})"
    ]
    for point in result["curve"]:
        parity = "OK" if point["digest_parity"] else "FAIL"
        lines.append(
            f"  N={point['n']:3d}  fleet "
            f"{point['fleet_us_per_deployment_window']:7.2f} us  "
            f"independent "
            f"{point['baseline_us_per_deployment_window']:7.2f} us  "
            f"-> {point['speedup']}x  parity={parity}"
        )
    return "\n".join(lines), 0 if result["digest_parity"] else 1


def _cmd_fuzz(args: argparse.Namespace) -> "tuple[str, int]":
    from .resilience.fuzz import fuzz_command

    return fuzz_command(
        n_seeds=args.seeds,
        windows=args.windows,
        soak=args.soak,
        base_seed=args.base_seed,
        mode=args.mode,
        fleet=args.fleet,
        tenants=args.tenants,
        poisoned=args.poisoned,
    )


def _cmd_sweep(sweep_id: str) -> str:
    result = _SWEEPS[sweep_id]()
    if isinstance(result, tuple):  # classification_matrix-style pairs
        return "\n\n".join(part.render() for part in result if hasattr(part, "render"))
    return result.render()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print(_cmd_list())
    elif args.command == "reproduce":
        print(_cmd_reproduce(args.artefact, args.days, args.seed))
    elif args.command == "scenario":
        print(
            _cmd_scenario(
                args.name,
                args.days,
                args.seed,
                save=args.save,
                full_report=args.incident_report,
                checkpoint=args.checkpoint,
            )
        )
    elif args.command == "sweep":
        print(_cmd_sweep(args.id))
    elif args.command == "chaos":
        text, code = _cmd_chaos(args)
        print(text)
        return code
    elif args.command == "fleet-soak":
        text, code = _cmd_fleet_soak(args)
        print(text)
        return code
    elif args.command == "campaign":
        text, code = _cmd_campaign(args)
        print(text)
        return code
    elif args.command == "bench":
        text, code = _cmd_bench(args)
        print(text)
        return code
    elif args.command == "parity":
        text, code = _cmd_parity(args)
        print(text)
        return code
    elif args.command == "fleet-bench":
        text, code = _cmd_fleet_bench(args)
        print(text)
        return code
    elif args.command == "fuzz":
        text, code = _cmd_fuzz(args)
        print(text)
        return code
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
