"""Numba ``njit`` ports of the backend kernel surface.

Importing this module requires Numba; :func:`repro.backend.get_backend`
gates the import and falls back to :mod:`.numpy_backend` when it fails.

Bit-identity: every loop below accumulates in exactly the order the
NumPy reference does — ``np.bincount`` adds sequentially in input
order, and the einsum reductions sum the tiny attribute axis
sequentially — so each float accumulator sees the identical sequence
of IEEE-754 additions and the results match the NumPy kernels
bit-for-bit (pinned by ``repro parity --backend compiled``).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np
from numba import njit


@njit(cache=True)
def _grouped_accumulate(keys, weights, counts, sums):  # pragma: no cover
    for i in range(keys.shape[0]):
        key = keys[i]
        counts[key] += 1
        for column in range(weights.shape[1]):
            sums[key, column] += weights[i, column]


def grouped_sums(
    keys: np.ndarray,
    weights: np.ndarray,
    minlength: int,
    scratch: "Dict[str, object] | None" = None,
) -> "Tuple[np.ndarray, np.ndarray]":
    counts = np.zeros(minlength, dtype=np.int64)
    shape = (minlength, weights.shape[1])
    sums = None
    if scratch is not None:
        sums = scratch.get("sums")
        if sums is None or sums.shape != shape:
            sums = np.empty(shape)
            scratch["sums"] = sums
    if sums is None:
        sums = np.empty(shape)
    sums[:] = 0.0
    _grouped_accumulate(
        keys.astype(np.int64, copy=False),
        np.asarray(weights, dtype=np.float64),
        counts,
        sums,
    )
    return counts, sums


@njit(cache=True)
def _pairwise(points, matrix, out):  # pragma: no cover
    n, d = points.shape
    m = matrix.shape[0]
    for i in range(n):
        for j in range(m):
            acc = 0.0
            for column in range(d):
                delta = points[i, column] - matrix[j, column]
                acc += delta * delta
            out[i, j] = math.sqrt(acc)


def pairwise_distances(
    points: np.ndarray,
    matrix: np.ndarray,
    scratch: "Dict[str, object] | None" = None,
) -> np.ndarray:
    # The compiled kernel needs no difference-tensor scratch; the
    # caller-owned dict is accepted (and ignored) for signature parity.
    out = np.empty((points.shape[0], matrix.shape[0]))
    _pairwise(
        np.asarray(points, dtype=np.float64),
        np.asarray(matrix, dtype=np.float64),
        out,
    )
    return out


@njit(cache=True)
def _batched(obs, states, out):  # pragma: no cover
    groups, n, d = obs.shape
    m = states.shape[1]
    for g in range(groups):
        for i in range(n):
            for j in range(m):
                acc = 0.0
                for column in range(d):
                    delta = obs[g, i, column] - states[g, j, column]
                    acc += delta * delta
                out[g, i, j] = math.sqrt(acc)


def batched_distances(obs: np.ndarray, states: np.ndarray) -> np.ndarray:
    out = np.empty((obs.shape[0], obs.shape[1], states.shape[1]))
    _batched(
        np.asarray(obs, dtype=np.float64),
        np.asarray(states, dtype=np.float64),
        out,
    )
    return out


@njit(cache=True)
def _k_of_n_lockstep(buf, position, raws, count, active, k):  # pragma: no cover
    for i in range(raws.shape[0]):
        raw = raws[i]
        evicted = buf[i, position]
        delta = (1 if raw else 0) - (1 if evicted else 0)
        count[i] += delta
        buf[i, position] = raw
        active[i] = count[i] >= k


def k_of_n_lockstep(
    buf: np.ndarray,
    position: int,
    raws: np.ndarray,
    count: np.ndarray,
    active: np.ndarray,
    k: int,
) -> None:
    _k_of_n_lockstep(buf, position, raws, count, active, k)


@njit(cache=True)
def _sprt(llr, raws, active, log_up, log_down, upper, lower, new_llr, new_active):  # pragma: no cover
    for i in range(llr.shape[0]):
        value = llr[i] + (log_up if raws[i] else log_down)
        accept_h1 = value >= upper
        accept_h0 = value <= lower
        if accept_h1:
            new_active[i] = True
        elif accept_h0:
            new_active[i] = False
        else:
            new_active[i] = active[i]
        new_llr[i] = 0.0 if (accept_h1 or accept_h0) else value


def sprt_step(
    llr: np.ndarray,
    raws: np.ndarray,
    active: np.ndarray,
    log_up: float,
    log_down: float,
    upper: float,
    lower: float,
) -> "Tuple[np.ndarray, np.ndarray]":
    new_llr = np.empty(llr.shape[0])
    new_active = np.empty(llr.shape[0], dtype=np.bool_)
    _sprt(
        np.ascontiguousarray(llr),
        raws,
        np.ascontiguousarray(active),
        log_up,
        log_down,
        upper,
        lower,
        new_llr,
        new_active,
    )
    return new_llr, new_active


@njit(cache=True)
def _cusum(g, raws, active, drift, threshold, new_g, new_active):  # pragma: no cover
    for i in range(g.shape[0]):
        value = g[i] + (1.0 if raws[i] else 0.0) - drift
        # Mirrors np.maximum(0.0, value): -0.0 normalizes to +0.0 and
        # NaN propagates (NaN <= 0.0 is False).
        if value <= 0.0:
            value = 0.0
        new_g[i] = value
        if value > threshold:
            new_active[i] = True
        elif value == 0.0:
            new_active[i] = False
        else:
            new_active[i] = active[i]


def cusum_step(
    g: np.ndarray,
    raws: np.ndarray,
    active: np.ndarray,
    drift: float,
    threshold: float,
) -> "Tuple[np.ndarray, np.ndarray]":
    new_g = np.empty(g.shape[0])
    new_active = np.empty(g.shape[0], dtype=np.bool_)
    _cusum(
        np.ascontiguousarray(g),
        raws,
        np.ascontiguousarray(active),
        drift,
        threshold,
        new_g,
        new_active,
    )
    return new_g, new_active
