"""Kernel backend registry (DESIGN.md §15).

The hot kernels of the pipeline — the grouped window-mean pass
(:func:`repro.core.pipeline._batched_window_means`), the full-lane
distance scan behind :class:`repro.core.states.StateSet` and
:class:`repro.fleet.engine.FleetEngine`, and the
:class:`repro.core.filtering.VectorFilterBank` update recurrences —
are routed through a :class:`KernelBackend` selected at pipeline /
fleet construction from ``PipelineConfig.backend``:

* ``"numpy"`` — the reference implementations (always available).
* ``"compiled"`` — Numba ``njit`` ports of the same kernels.  When
  Numba is not importable the registry falls back to the NumPy
  implementations with a single :class:`BackendFallbackWarning` per
  process, so the flag is always importable and tests never
  hard-depend on the compiler.

Every compiled kernel accumulates in exactly the order its NumPy
counterpart does (``np.bincount`` adds sequentially in input order;
``np.einsum`` over the small trailing attribute axis reduces
sequentially), so results — and therefore pipeline digests — are
bit-identical across backends.  ``repro parity --backend compiled``
pins this.

This package must stay importable with nothing but NumPy present and
must not import ``repro.core`` (the core modules import it).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

#: Supported values of ``PipelineConfig.backend``.
BACKEND_NAMES: Tuple[str, ...] = ("numpy", "compiled")


class UnknownBackendError(ValueError):
    """Structured error for an unrecognized backend name.

    Carries the offending name (:attr:`backend`) and the supported
    names (:attr:`available`) so callers can render actionable
    messages without parsing the string.
    """

    def __init__(self, backend: object):
        self.backend = backend
        self.available = BACKEND_NAMES
        super().__init__(
            f"unknown backend {backend!r}; available backends: "
            f"{', '.join(BACKEND_NAMES)}"
        )


class BackendFallbackWarning(UserWarning):
    """``backend="compiled"`` was requested but Numba is unavailable."""


@dataclass(frozen=True)
class KernelBackend:
    """One resolved set of kernel implementations.

    ``name`` is the requested registry name (``"numpy"`` or
    ``"compiled"``); ``flavor`` is what actually executes (``"numpy"``
    or ``"numba"`` — they differ exactly when the compiled tier fell
    back).  The kernel attributes share one calling convention with
    the NumPy reference implementations in :mod:`.numpy_backend`.
    """

    name: str
    flavor: str
    grouped_sums: Callable
    pairwise_distances: Callable
    batched_distances: Callable
    k_of_n_lockstep: Callable
    sprt_step: Callable
    cusum_step: Callable


def numba_available() -> bool:
    """True when ``import numba`` succeeds in this interpreter."""
    try:  # pragma: no cover - exercised only where numba is installed
        import numba  # noqa: F401
    except Exception:
        return False
    return True  # pragma: no cover


_CACHE: Dict[str, KernelBackend] = {}
_FALLBACK_WARNED = False


def _numpy_backend(name: str) -> KernelBackend:
    from . import numpy_backend

    return KernelBackend(
        name=name,
        flavor="numpy",
        grouped_sums=numpy_backend.grouped_sums,
        pairwise_distances=numpy_backend.pairwise_distances,
        batched_distances=numpy_backend.batched_distances,
        k_of_n_lockstep=numpy_backend.k_of_n_lockstep,
        sprt_step=numpy_backend.sprt_step,
        cusum_step=numpy_backend.cusum_step,
    )


def get_backend(name: str = "numpy") -> KernelBackend:
    """Resolve a backend name to a :class:`KernelBackend`.

    Raises :class:`UnknownBackendError` for names outside
    :data:`BACKEND_NAMES`.  ``"compiled"`` without an importable Numba
    resolves to the NumPy implementations (``flavor == "numpy"``) and
    emits one :class:`BackendFallbackWarning` per process.
    """
    if name not in BACKEND_NAMES:
        raise UnknownBackendError(name)
    cached = _CACHE.get(name)
    if cached is not None:
        return cached
    if name == "numpy":
        backend = _numpy_backend("numpy")
    else:
        try:  # pragma: no cover - numba absent in the default test env
            from . import numba_backend

            backend = KernelBackend(
                name="compiled",
                flavor="numba",
                grouped_sums=numba_backend.grouped_sums,
                pairwise_distances=numba_backend.pairwise_distances,
                batched_distances=numba_backend.batched_distances,
                k_of_n_lockstep=numba_backend.k_of_n_lockstep,
                sprt_step=numba_backend.sprt_step,
                cusum_step=numba_backend.cusum_step,
            )
        except ImportError:
            global _FALLBACK_WARNED
            if not _FALLBACK_WARNED:
                _FALLBACK_WARNED = True
                warnings.warn(
                    "backend='compiled' requested but Numba is not "
                    "installed; falling back to the bit-identical NumPy "
                    "kernels",
                    BackendFallbackWarning,
                    stacklevel=2,
                )
            backend = _numpy_backend("compiled")
    _CACHE[name] = backend
    return backend
