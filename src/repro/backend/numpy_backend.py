"""Reference NumPy implementations of the backend kernel surface.

These are the exact array programs the core modules ran before the
backend registry existed, lifted out verbatim so the compiled tier has
a pinned reference to match bit-for-bit.  Each kernel documents the
accumulation-order contract its Numba port must honour.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def grouped_sums(
    keys: np.ndarray,
    weights: np.ndarray,
    minlength: int,
    scratch: "Dict[str, object] | None" = None,
) -> "Tuple[np.ndarray, np.ndarray]":
    """Per-key occurrence counts and per-column weighted sums.

    ``keys`` is ``(N,)`` int, ``weights`` is ``(N, d)`` float; returns
    ``(counts, sums)`` of shapes ``(minlength,)`` / ``(minlength, d)``.
    Accumulation order contract: each ``(key, column)`` accumulator
    receives its addends in input-row order, exactly like the
    ``np.bincount`` passes here — a sequential-loop port sees the same
    float sums.

    ``scratch`` (optional, owner-private) recycles the ``sums`` buffer
    across same-shape calls.  Callers that let the result escape the
    call (e.g. grouped overall means stored in per-window stats) must
    pass ``scratch=None`` so they own a fresh array.
    """
    counts = np.bincount(keys, minlength=minlength)
    shape = (minlength, weights.shape[1])
    sums = None
    if scratch is not None:
        sums = scratch.get("sums")
        if sums is None or sums.shape != shape:
            sums = np.empty(shape)
            scratch["sums"] = sums
    if sums is None:
        sums = np.empty(shape)
    for column in range(weights.shape[1]):
        sums[:, column] = np.bincount(
            keys, weights=weights[:, column], minlength=minlength
        )
    return counts, sums


def pairwise_distances(
    points: np.ndarray,
    matrix: np.ndarray,
    scratch: "Dict[str, object] | None" = None,
) -> np.ndarray:
    """``(N, M)`` Euclidean distances from ``points`` to ``matrix`` rows.

    The ``(N, M, d)`` difference tensor and its squared-norm reduction
    are scratch: recycled across same-shape calls through the caller's
    private ``scratch`` dict (the steady fused loop hits one shape for
    whole stretches).  Only the returned distance matrix is freshly
    allocated — callers hold on to it across further queries.  The
    attribute axis ``d`` is tiny (1–3), so the einsum reduction is a
    sequential sum — the order a compiled per-element loop uses.
    """
    shape = (points.shape[0], matrix.shape[0], matrix.shape[1])
    buffers = scratch.get("pair") if scratch is not None else None
    if buffers is None or buffers[0].shape != shape:
        buffers = (np.empty(shape), np.empty(shape[:2]))
        if scratch is not None:
            scratch["pair"] = buffers
    diff, sq = buffers
    np.subtract(points[:, None, :], matrix[None, :, :], out=diff)
    np.einsum("nmd,nmd->nm", diff, diff, out=sq)
    return np.sqrt(sq)


def batched_distances(obs: np.ndarray, states: np.ndarray) -> np.ndarray:
    """``(G, N, M)`` distances for the fleet's padded tenant batch.

    Same sequential-over-``d`` reduction contract as
    :func:`pairwise_distances`, one leading fleet axis added.
    """
    diff = obs[:, :, None, :] - states[:, None, :, :]
    return np.sqrt(np.einsum("gnmd,gnmd->gnm", diff, diff))


def k_of_n_lockstep(
    buf: np.ndarray,
    position: int,
    raws: np.ndarray,
    count: np.ndarray,
    active: np.ndarray,
    k: int,
) -> None:
    """Advance all lockstep k-of-n rings one window, in place.

    ``buf``/``count``/``active`` are the live-slot views of the filter
    bank's ring buffers, counts, and active flags; every ring shares
    write ``position``.  Pure integer/bool arithmetic — any port is
    trivially bit-identical.
    """
    delta = raws.astype(np.int64)
    delta -= buf[:, position]
    count += delta
    buf[:, position] = raws
    np.greater_equal(count, k, out=active)


def sprt_step(
    llr: np.ndarray,
    raws: np.ndarray,
    active: np.ndarray,
    log_up: float,
    log_down: float,
    upper: float,
    lower: float,
) -> "Tuple[np.ndarray, np.ndarray]":
    """One SPRT update over gathered per-sensor statistics.

    Returns fresh ``(llr, active)`` arrays; the caller scatters them
    back.  Scalar precedence contract: ``>= upper`` wins when both
    thresholds trip, and either acceptance resets the ratio to zero.
    """
    llr = llr + np.where(raws, log_up, log_down)
    accept_h1 = llr >= upper
    accept_h0 = llr <= lower
    new_active = np.where(accept_h1, True, np.where(accept_h0, False, active))
    new_llr = np.where(accept_h1 | accept_h0, 0.0, llr)
    return new_llr, new_active


def cusum_step(
    g: np.ndarray,
    raws: np.ndarray,
    active: np.ndarray,
    drift: float,
    threshold: float,
) -> "Tuple[np.ndarray, np.ndarray]":
    """One CUSUM update over gathered per-sensor statistics.

    Returns fresh ``(g, active)``.  Contract: the score saturates at
    zero, alarms latch above ``threshold`` and clear only at zero.
    """
    new_g = np.maximum(0.0, g + raws.astype(float) - drift)
    new_active = np.where(
        new_g > threshold, True, np.where(new_g == 0.0, False, active)
    )
    return new_g, new_active
