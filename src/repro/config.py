"""Pipeline configuration (paper Table 1 defaults).

Table 1 of the paper lists the experimental setup: K=10 sensors, M=6
initial model states, w=12 samples per observation window, α=0.10,
β=0.90, γ=0.90.  :class:`PipelineConfig` carries those values plus the
knobs the paper mentions without numbering (clustering spawn/merge
thresholds, alarm-filter parameters, classifier tolerances), with the
defaults recorded in DESIGN.md §6.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from .core.classification import ClassifierConfig
from .core.filtering import AlarmFilter, CUSUMFilter, KOfNFilter, SPRTFilter

#: Supported alarm-filter kinds.
FILTER_KINDS = ("k_of_n", "sprt", "cusum")

#: Supported runtime invariant-supervisor modes.
SUPERVISOR_MODES = ("off", "warn", "repair", "raise")

#: Supported kernel backends (mirrors repro.backend.BACKEND_NAMES;
#: kept literal here so importing the config never pulls kernel code).
BACKEND_NAMES = ("numpy", "compiled")


@dataclass
class PipelineConfig:
    """All knobs of the detection pipeline.

    The first block reproduces Table 1; the rest are implementation
    parameters the paper leaves unnumbered.
    """

    # --- Table 1 -------------------------------------------------------
    #: K — number of sensors in the deployment.
    n_sensors: int = 10
    #: M — number of initial model states.
    n_initial_states: int = 6
    #: w — observation window size, in samples.
    window_samples: int = 12
    #: Sampling period of the motes, in minutes (GDI: 5 minutes).
    sample_period_minutes: float = 5.0
    #: α — learning factor for model-state estimation (Eq. 6).
    alpha: float = 0.10
    #: β — learning factor for the transition distribution A (§3.2).
    beta: float = 0.90
    #: γ — learning factor for the emission distribution B (§3.2).
    gamma: float = 0.90

    # --- clustering ------------------------------------------------------
    #: Observations farther than this from every state spawn a new state.
    #: Tuned so GDI data yields 4-6 main states ~13 units apart, matching
    #: the Fig. 7 state spacing (see DESIGN.md §6).
    spawn_threshold: float = 10.0
    #: States closer than this merge into one.
    merge_threshold: float = 5.0
    #: Hard cap on the number of model states.
    max_states: int = 24

    # --- alarm filtering ---------------------------------------------------
    #: One of :data:`FILTER_KINDS`.
    filter_kind: str = "k_of_n"
    #: k-of-n: filtered alarm after k raw alarms in the last n windows.
    filter_k: int = 3
    filter_n: int = 5
    #: SPRT: healthy / anomalous alarm probabilities and error targets.
    #: The operating point is tuned so roughly three raw alarms within a
    #: few windows are needed to accept H1, matching the k-of-n default
    #: (isolated boundary alarms on healthy sensors must not open tracks).
    sprt_p0: float = 0.05
    sprt_p1: float = 0.5
    sprt_alpha: float = 0.001
    sprt_beta: float = 0.01
    #: CUSUM: drift and decision threshold.
    cusum_drift: float = 0.25
    cusum_threshold: float = 2.0

    # --- classification -------------------------------------------------
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)

    # --- model extraction --------------------------------------------------
    #: States visited less than this fraction of windows are pruned from
    #: the user-facing Markov models (Fig. 7's spurious-state handling).
    prune_visit_fraction: float = 0.02

    # --- resilience ------------------------------------------------------
    #: Drop non-finite (NaN/Inf) readings inside the pipeline before they
    #: reach clustering and identification.  The collector already
    #: quarantines such messages; this guards windows built by other
    #: paths (batch windowing, hand-assembled fixtures).
    drop_non_finite: bool = True
    #: How often (in windows) a resilient deployment checkpoints its
    #: pipeline; 0 disables periodic checkpointing.  Consumed by the
    #: chaos harness and the CLI, not by the pipeline itself.
    checkpoint_every_windows: int = 0

    # --- runtime supervision ---------------------------------------------
    #: Invariant supervisor mode (see repro.resilience.supervisor).
    #: ``off`` disables supervision entirely — the pipeline is then
    #: bit-identical to the unsupervised implementation; ``warn``
    #: records violations and emits InvariantWarning; ``repair``
    #: additionally applies bounded self-healing actions; ``raise``
    #: raises InvariantViolationError on the first violation.
    supervisor_mode: str = "off"
    #: k — consecutive windows on which the majority assumption is
    #: violated (the correct-state cluster holds at most half of the
    #: reporting sensors) before the ModelUnderAttack meta-alarm raises
    #: and the β/γ forgetting updates freeze.
    supervisor_majority_windows: int = 3
    #: Consecutive healthy-majority windows required to clear the
    #: meta-alarm and resume learning.
    supervisor_recovery_windows: int = 3

    # --- execution -------------------------------------------------------
    #: Worker processes for the parallel experiment runner; 0 means "all
    #: available cores".  Only the fan-out harness reads this — a single
    #: pipeline run is always one process.
    n_jobs: int = 1
    #: Kernel backend: "numpy" (reference) or "compiled" (Numba njit
    #: ports of the hot kernels; falls back to NumPy with one warning
    #: when Numba is absent).  Results are bit-identical either way —
    #: the backend never changes digests (see repro.backend).
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.n_sensors <= 0:
            raise ValueError("n_sensors must be positive")
        if self.n_initial_states <= 0:
            raise ValueError("n_initial_states must be positive")
        if self.window_samples <= 0:
            raise ValueError("window_samples must be positive")
        if self.sample_period_minutes <= 0:
            raise ValueError("sample_period_minutes must be positive")
        for name in ("alpha", "beta", "gamma"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1)")
        if self.filter_kind not in FILTER_KINDS:
            raise ValueError(f"filter_kind must be one of {FILTER_KINDS}")
        if self.checkpoint_every_windows < 0:
            raise ValueError("checkpoint_every_windows must be non-negative")
        if self.supervisor_mode not in SUPERVISOR_MODES:
            raise ValueError(
                f"supervisor_mode must be one of {SUPERVISOR_MODES}"
            )
        if self.supervisor_majority_windows < 1:
            raise ValueError("supervisor_majority_windows must be positive")
        if self.supervisor_recovery_windows < 1:
            raise ValueError("supervisor_recovery_windows must be positive")
        if self.n_jobs < 0:
            raise ValueError("n_jobs must be non-negative (0 = all cores)")
        if self.backend not in BACKEND_NAMES:
            # Imported lazily: repro.backend stays import-light, and the
            # structured error carries the offending/available names.
            from .backend import UnknownBackendError

            raise UnknownBackendError(self.backend)

    @property
    def window_minutes(self) -> float:
        """Window duration ``w`` expressed in minutes."""
        return self.window_samples * self.sample_period_minutes

    def filter_factory(self) -> Callable[[], AlarmFilter]:
        """Factory building one per-sensor alarm filter of the configured kind."""
        if self.filter_kind == "k_of_n":
            k, n = self.filter_k, self.filter_n
            return lambda: KOfNFilter(k=k, n=n)
        if self.filter_kind == "sprt":
            p0, p1 = self.sprt_p0, self.sprt_p1
            a, b = self.sprt_alpha, self.sprt_beta
            return lambda: SPRTFilter(p0=p0, p1=p1, alpha=a, beta=b)
        drift, threshold = self.cusum_drift, self.cusum_threshold
        return lambda: CUSUMFilter(drift=drift, threshold=threshold)

    def table1_rows(self) -> List[Tuple[str, str, str]]:
        """The (parameter, description, value) rows of the paper's Table 1."""
        return [
            ("K", "Number of sensors", str(self.n_sensors)),
            ("M", "Number of initial model states", str(self.n_initial_states)),
            ("w", "Observation window size", str(self.window_samples)),
            (
                "alpha",
                "Learning factor used to estimate model states",
                f"{self.alpha:.2f}",
            ),
            (
                "beta",
                "Learning factor used to estimate state transition probability A",
                f"{self.beta:.2f}",
            ),
            (
                "gamma",
                "Learning factor used to estimate observation symbol probability B",
                f"{self.gamma:.2f}",
            ),
        ]

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric view used by sweep harnesses."""
        return {
            "n_sensors": self.n_sensors,
            "n_initial_states": self.n_initial_states,
            "window_samples": self.window_samples,
            "sample_period_minutes": self.sample_period_minutes,
            "alpha": self.alpha,
            "beta": self.beta,
            "gamma": self.gamma,
            "spawn_threshold": self.spawn_threshold,
            "merge_threshold": self.merge_threshold,
        }

    # -- checkpointing ----------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        """Complete, lossless JSON view (checkpoint round-trips need it).

        Unlike :meth:`as_dict` (a flat summary for sweep harnesses) this
        captures *every* field, including the nested classifier
        configuration, so :meth:`from_json_dict` rebuilds an identical
        configuration.
        """
        return dataclasses.asdict(self)  # recurses into classifier

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "PipelineConfig":
        """Inverse of :meth:`to_json_dict`."""
        fields = dict(payload)
        classifier = fields.pop("classifier", None)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(fields) - known
        if unknown:
            raise ValueError(f"unknown config fields: {sorted(unknown)}")
        config = cls(**fields)
        if classifier is not None:
            config.classifier = ClassifierConfig(**classifier)
        return config
