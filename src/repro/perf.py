"""Perf-regression harness: time the hot kernels, compare, fail on drift.

``python -m repro bench`` measures the three hot paths the vectorisation
work targets — full-pipeline window processing, online HMM counting
updates, and clusterer window updates — plus the wall-clock of a small
scenario campaign run serially vs through the parallel fan-out.  Results
go to ``BENCH_pipeline.json``; ``--check`` compares the fresh numbers
against the committed ones and exits non-zero when a kernel regressed
beyond ``--tolerance``.

Workloads deliberately mirror ``benchmarks/test_perf_pipeline.py`` so
the pytest-benchmark suite and this harness report comparable numbers.
Each kernel is timed best-of-``repeats`` (minimum wall-clock), which is
the standard way to suppress scheduler noise on shared CI runners.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import tempfile
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

import numpy as np

#: Metrics ``--check`` guards, all in "lower is better" units.
CHECKED_METRICS = (
    "pipeline_us_per_window",
    "fused_pipeline_us_per_window",
    "fleet_us_per_deployment_window",
    "fleet_isolated_us_per_deployment_window",
    "hmm_update_us",
    "clusterer_update_us",
    "filter_bank_us",
    "trace_gen_us_per_window",
)

#: Hand-recorded timings of the same workloads at the pre-optimisation
#: commits (abd7625 for the kernel metrics; the object-path generator
#: for trace generation; the scalar per-window paths for the fused
#: pipeline and filter-bank metrics), kept so the JSON shows the
#: optimisation headroom without needing to rebuild the old code.
PRE_OPTIMIZATION_BASELINE = {
    "pipeline_us_per_window": 614.1,
    "fused_pipeline_us_per_window": 614.1,
    # Per-deployment-window cost of N=64 independent fused runs on the
    # fleet regime workload before the batched engine (and the steady
    # pair-bound inf fix) landed.
    "fleet_us_per_deployment_window": 20.6,
    # Before the isolation layer, a fault-isolated fleet *was* N
    # independent fused runs (full per-tenant blast separation but no
    # batching), so the same 20.6 us/deployment-window applies.
    "fleet_isolated_us_per_deployment_window": 20.6,
    "hmm_update_us": 5.67,
    "clusterer_update_us": 483.3,
    "filter_bank_us": 20.8,
    "trace_gen_us_per_window": 4674.2,
}

DEFAULT_OUTPUT = "BENCH_pipeline.json"
DEFAULT_TOLERANCE = 0.30


@contextmanager
def _pinned_threads(limit: int = 1):
    """Pin BLAS/OpenMP pool sizes for the duration of the timing loops.

    Kernel timings on shared CI runners otherwise wander with whatever
    thread count the BLAS picked at import time (and oversubscribe the
    campaign benches, whose parallelism lives in processes).  Yields
    True when a real pin was applied, False when ``threadpoolctl`` is
    unavailable and the run proceeds unpinned — timing must degrade,
    never fail, on a lean interpreter.
    """
    try:
        from threadpoolctl import threadpool_limits
    except Exception:
        yield False
        return
    with threadpool_limits(limits=limit):
        yield True


def _blas_info() -> Dict[str, object]:
    """Best-effort BLAS/LAPACK identification from numpy's build config."""
    try:
        config = np.show_config(mode="dicts")
        dependencies = config.get("Build Dependencies", {})
        info: Dict[str, object] = {}
        for lib in ("blas", "lapack"):
            entry = dependencies.get(lib)
            if isinstance(entry, dict):
                info[lib] = {
                    "name": entry.get("name"),
                    "version": entry.get("version"),
                }
        return info
    except Exception:  # pragma: no cover - older numpy without dicts mode
        return {}


def _threadpool_info() -> "Optional[List[Dict[str, object]]]":
    """Live thread-pool inventory via threadpoolctl, when installed."""
    try:
        from threadpoolctl import threadpool_info
    except Exception:
        return None
    try:
        return [
            {
                "api": pool.get("internal_api"),
                "prefix": pool.get("prefix"),
                "num_threads": pool.get("num_threads"),
            }
            for pool in threadpool_info()
        ]
    except Exception:  # pragma: no cover - introspection failure
        return None


def _numba_version() -> "Optional[str]":
    try:
        import numba

        return str(numba.__version__)
    except Exception:
        return None


def environment_info(threads_pinned: bool = False) -> Dict[str, object]:
    """The bench ``environment`` block: toolchain + threading context.

    Records everything needed to interpret a timing delta between two
    bench files: interpreter and numpy versions, which BLAS numpy was
    built against, the live thread pools, the numba version actually
    driving the compiled backend (null on fallback), and the thread-
    count environment pins in effect.
    """
    from .backend import numba_available

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "numba": _numba_version(),
        "numba_available": numba_available(),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "blas": _blas_info(),
        "threadpools": _threadpool_info(),
        "thread_env": {
            key: os.environ.get(key)
            for key in (
                "OMP_NUM_THREADS",
                "OPENBLAS_NUM_THREADS",
                "MKL_NUM_THREADS",
                "NUMBA_NUM_THREADS",
            )
        },
        "threads_pinned_during_timing": threads_pinned,
    }


def _best_of(repeats: int, run: Callable[[], object]) -> float:
    """Minimum wall-clock seconds of ``run`` over ``repeats`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_windows(n_windows: int = 200, n_sensors: int = 10, seed: int = 0):
    """The synthetic diurnal workload from benchmarks/test_perf_pipeline."""
    from .sensornet import ObservationWindow, SensorMessage

    rng = np.random.default_rng(seed)
    windows = []
    for index in range(1, n_windows + 1):
        phase = 2 * np.pi * index / 24.0
        truth = np.array([21.0 - 10 * np.cos(phase), 75.0 + 20 * np.cos(phase)])
        messages = tuple(
            SensorMessage(
                sensor_id=s,
                timestamp=(index - 1) * 60.0 + 1.0,
                attributes=tuple(truth + rng.normal(0, 0.35, 2)),
            )
            for s in range(n_sensors)
        )
        windows.append(
            ObservationWindow(
                index=index,
                start_minutes=(index - 1) * 60.0,
                end_minutes=index * 60.0,
                messages=messages,
            )
        )
    return windows


def bench_pipeline(repeats: int = 3, n_windows: int = 200) -> float:
    """Full-pipeline cost in microseconds per processed window."""
    from . import DetectionPipeline, PipelineConfig

    windows = _bench_windows(n_windows=n_windows)

    def run() -> None:
        pipeline = DetectionPipeline(PipelineConfig())
        for window in windows:
            pipeline.process_window(window)

    return _best_of(repeats, run) / n_windows * 1e6


def _fused_workload(n_windows: int = 200, n_sensors: int = 10):
    """The diurnal workload as columnar :class:`ArrayWindow` views.

    The fused fast path only engages for array-backed windows (message
    windows take the compatibility slow lane), so the fused benchmarks
    flatten the message workload to ``(timestamp, sensor, value)``
    arrays in canonical trace order first.
    """
    from . import PipelineConfig
    from .sensornet.collector import windows_from_arrays

    windows = _bench_windows(n_windows=n_windows, n_sensors=n_sensors)
    ts: List[float] = []
    sids: List[int] = []
    vals: List[tuple] = []
    for window in windows:
        for message in window.messages:
            ts.append(message.timestamp)
            sids.append(message.sensor_id)
            vals.append(message.attributes)
    ts_arr = np.asarray(ts, dtype=float)
    sid_arr = np.asarray(sids)
    val_arr = np.asarray(vals, dtype=float)
    order = np.lexsort((sid_arr, ts_arr))
    return windows_from_arrays(
        ts_arr[order],
        sid_arr[order],
        val_arr[order],
        PipelineConfig().window_minutes,
    )


def bench_fused_pipeline(repeats: int = 3, n_windows: int = 200) -> float:
    """Fused whole-trace path cost in microseconds per window.

    Same workload as :func:`bench_pipeline`, run through
    ``process_windows_fast`` so the struct-of-arrays filter bank,
    incremental clustering, and steady-stretch certification all
    engage.  The parity suite pins this path bit-identical to the
    per-window oracle, so the two metrics are directly comparable.
    """
    from . import DetectionPipeline, PipelineConfig

    array_windows = _fused_workload(n_windows=n_windows)

    def run() -> None:
        pipeline = DetectionPipeline(PipelineConfig())
        pipeline.process_windows_fast(array_windows)

    return _best_of(repeats, run) / n_windows * 1e6


def _fleet_workload(
    seed: int,
    n_windows: int = 400,
    dwell: int = 40,
    noise: float = 0.25,
    n_sensors: int = 10,
):
    """One tenant's trace for the fleet bench: two-regime telemetry.

    Each deployment alternates between two well-separated operating
    regimes (think heating/cooling plant states) every ``dwell``
    windows, with per-sensor Gaussian noise.  This is the workload the
    fleet engine is built for — long certified steady stretches broken
    by occasional regime changes — and both the batched engine and the
    per-tenant baseline are timed on exactly these windows.
    """
    from . import PipelineConfig
    from .sensornet.collector import windows_from_arrays

    rng = np.random.default_rng(seed)
    ts: List[float] = []
    sids: List[int] = []
    vals: List[np.ndarray] = []
    for index in range(1, n_windows + 1):
        hot = ((index - 1) // dwell) % 2
        truth = (
            np.array([31.0, 95.0]) if hot else np.array([11.0, 55.0])
        )
        for sensor in range(n_sensors):
            ts.append((index - 1) * 60.0 + 1.0)
            sids.append(sensor)
            vals.append(truth + rng.normal(0, noise, 2))
    ts_arr = np.asarray(ts, dtype=float)
    sid_arr = np.asarray(sids)
    val_arr = np.asarray(vals, dtype=float)
    order = np.lexsort((sid_arr, ts_arr))
    return windows_from_arrays(
        ts_arr[order],
        sid_arr[order],
        val_arr[order],
        PipelineConfig().window_minutes,
    )


def bench_fleet(
    n_list: "tuple[int, ...]" = (1, 4, 16, 64),
    repeats: int = 2,
    n_windows: int = 400,
    dwell: int = 40,
    noise: float = 0.25,
) -> Dict[str, object]:
    """Amortized fleet cost per deployment-window vs fleet size.

    For each fleet size ``n`` the same per-tenant regime traces (seeds
    ``0..n-1``) are run two ways: one ``FleetEngine`` advancing all
    tenants through shared batched kernels, and ``n`` independent
    ``process_windows_fast`` runs (the per-tenant baseline).  The
    per-tenant digests of the two runs must match bit-for-bit at every
    size — the speedup is only meaningful if the batched engine is
    exact.
    """
    from . import DetectionPipeline, PipelineConfig
    from .fleet import FleetEngine

    curve = []
    parity = True
    for n in n_list:
        loads = [
            _fleet_workload(
                seed, n_windows=n_windows, dwell=dwell, noise=noise
            )
            for seed in range(n)
        ]
        base_best = float("inf")
        base_pipes: List[DetectionPipeline] = []
        for _ in range(repeats):
            start = time.perf_counter()
            total = 0
            base_pipes = []
            for seed in range(n):
                pipeline = DetectionPipeline(PipelineConfig())
                total += pipeline.process_windows_fast(loads[seed])
                base_pipes.append(pipeline)
            base_best = min(
                base_best, (time.perf_counter() - start) / total * 1e6
            )
        fleet_best = float("inf")
        engine = None
        for _ in range(repeats):
            pipelines = [
                DetectionPipeline(PipelineConfig()) for _ in range(n)
            ]
            engine = FleetEngine.from_pipelines(pipelines)
            start = time.perf_counter()
            total = engine.process_windows(loads)
            fleet_best = min(
                fleet_best, (time.perf_counter() - start) / total * 1e6
            )
        size_parity = [a.digest() for a in base_pipes] == engine.digests()
        parity = parity and size_parity
        curve.append(
            {
                "n": n,
                "fleet_us_per_deployment_window": round(fleet_best, 2),
                "baseline_us_per_deployment_window": round(base_best, 2),
                "speedup": round(base_best / fleet_best, 2),
                "digest_parity": size_parity,
            }
        )
    if not parity:  # pragma: no cover - batching correctness violation
        raise AssertionError(
            "fleet engine diverged from independent per-tenant runs"
        )
    return {
        "workload": {
            "n_windows": n_windows,
            "dwell": dwell,
            "noise": noise,
            "n_sensors": 10,
        },
        "curve": curve,
        "fleet_us_per_deployment_window": curve[-1][
            "fleet_us_per_deployment_window"
        ],
        "digest_parity": parity,
    }


def bench_filter_bank(
    repeats: int = 5, n_sensors: int = 50, n_windows: int = 2000
) -> Dict[str, object]:
    """Alarm-filter bank cost per window, scalar loop vs vector bank.

    Feeds an identical sparse raw-alarm stream to a per-sensor
    :class:`FilterBank` and a struct-of-arrays
    :class:`VectorFilterBank`; the checked ``filter_bank_us`` metric is
    the vector bank's per-window cost.
    """
    from .core.filtering import FilterBank, KOfNFilter, VectorFilterBank

    rng = np.random.default_rng(3)
    sensor_ids = np.arange(n_sensors)
    raws = rng.random((n_windows, n_sensors)) < 0.05
    raw_dicts = [
        {int(s): bool(r) for s, r in zip(sensor_ids, row)} for row in raws
    ]

    def run_scalar() -> None:
        bank = FilterBank(factory=KOfNFilter)
        for index, raw_by_sensor in enumerate(raw_dicts):
            bank.update(index, raw_by_sensor)

    def run_vector() -> None:
        bank = VectorFilterBank.from_prototype(KOfNFilter())
        for index in range(n_windows):
            bank.update_batch(
                index, sensor_ids, raws[index], assume_sorted=True
            )

    scalar_us = _best_of(repeats, run_scalar) / n_windows * 1e6
    vector_us = _best_of(repeats, run_vector) / n_windows * 1e6
    return {
        "n_sensors": n_sensors,
        "n_windows": n_windows,
        "scalar_us_per_window": round(scalar_us, 2),
        "vector_us_per_window": round(vector_us, 2),
        "speedup": round(scalar_us / vector_us, 2),
    }


def profile_fused(n_windows: int = 200, runs: int = 10, top: int = 25) -> str:
    """cProfile the fused pipeline; top-``top`` rows by cumulative time.

    Backs ``repro bench --profile``: profiles ``runs`` fresh pipelines
    over the fused benchmark workload and renders the standard pstats
    cumulative table, so hot-path regressions can be localised without
    leaving the harness.
    """
    import cProfile
    import io
    import pstats

    from . import DetectionPipeline, PipelineConfig

    array_windows = _fused_workload(n_windows=n_windows)
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(runs):
        pipeline = DetectionPipeline(PipelineConfig())
        pipeline.process_windows_fast(array_windows)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    header = (
        f"cProfile: {runs} fused runs x {n_windows} windows, "
        f"top {top} by cumulative time"
    )
    return header + "\n" + stream.getvalue().rstrip()


def bench_hmm_update(repeats: int = 5, n_updates: int = 1000) -> float:
    """Online HMM counting-update cost in microseconds per observation."""
    from .core.online_hmm import OnlineHMM

    rng = np.random.default_rng(1)
    pairs = [
        (int(rng.integers(0, 6)), int(rng.integers(0, 8)))
        for _ in range(n_updates)
    ]

    def run() -> None:
        hmm = OnlineHMM()
        for state, symbol in pairs:
            hmm.observe(state, symbol)

    return _best_of(repeats, run) / n_updates * 1e6


def bench_clusterer_update(repeats: int = 3, n_batches: int = 200) -> float:
    """Clusterer window-update cost in microseconds per batch of 10."""
    from .core.clustering import OnlineStateClusterer

    rng = np.random.default_rng(2)
    batches = [rng.normal([20.0, 70.0], 5.0, size=(10, 2)) for _ in range(n_batches)]

    def run() -> None:
        clusterer = OnlineStateClusterer(
            initial_vectors=[np.array([20.0, 70.0])],
            alpha=0.1,
            spawn_threshold=10.0,
            merge_threshold=5.0,
        )
        for batch in batches:
            clusterer.update(batch)

    return _best_of(repeats, run) / n_batches * 1e6


def bench_campaign(
    n_jobs: Optional[int] = None, n_days: int = 3, seed: int = 2003
) -> Dict[str, object]:
    """Wall-clock of a 4-scenario campaign, serial vs parallel.

    Uses the fault scenarios only (the attack ones run an extra clean
    reference simulation each, which would dominate the measurement).
    """
    from .experiments.runner import (
        ScenarioSpec,
        resolve_n_jobs,
        run_scenarios_parallel,
    )

    names = ["clean", "stuck_at", "calibration", "additive"]
    specs = [ScenarioSpec(name, n_days=n_days, seed=seed) for name in names]
    n_jobs = resolve_n_jobs(n_jobs)
    cpu_count = os.cpu_count() or 1

    start = time.perf_counter()
    serial = run_scenarios_parallel(specs, n_jobs=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_scenarios_parallel(specs, n_jobs=n_jobs)
    parallel_seconds = time.perf_counter() - start

    if serial != parallel:  # pragma: no cover - determinism violation
        raise AssertionError("parallel campaign diverged from serial run")
    # On a single-core host the "parallel" run measures pure process-
    # pool overhead, not a speedup; reporting the ratio there reads as
    # a parallelisation regression when it is a hardware fact.
    speedup = (
        round(serial_seconds / parallel_seconds, 2)
        if cpu_count > 1
        else None
    )
    return {
        "scenarios": names,
        "n_days": n_days,
        "seed": seed,
        "n_jobs": n_jobs,
        "n_workers": n_jobs,
        "cpu_count": cpu_count,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": speedup,
    }


def bench_trace_generation(
    repeats: int = 3, n_days: int = 3
) -> Dict[str, object]:
    """Scenario-generation cost, object path vs columnar fast path.

    Both paths generate the identical clean GDI deployment (the parity
    suite pins them bit-for-bit); the metric is microseconds of
    generation time per downstream pipeline window so it composes with
    ``pipeline_us_per_window``.
    """
    from . import PipelineConfig
    from .traces import (
        GDITraceConfig,
        generate_gdi_trace,
        generate_gdi_trace_columnar,
    )

    config = GDITraceConfig(n_days=n_days)
    window_minutes = PipelineConfig().window_minutes
    n_windows = int(config.duration_minutes // window_minutes)

    object_seconds = _best_of(repeats, lambda: generate_gdi_trace(config))
    columnar_seconds = _best_of(
        repeats, lambda: generate_gdi_trace_columnar(config)
    )
    object_us = object_seconds / n_windows * 1e6
    columnar_us = columnar_seconds / n_windows * 1e6
    return {
        "n_days": n_days,
        "n_windows": n_windows,
        "object_us_per_window": round(object_us, 1),
        "columnar_us_per_window": round(columnar_us, 1),
        "speedup": round(object_us / columnar_us, 2),
    }


def bench_recovery(
    n_days: int = 2, seed: int = 2003, kill_probability: float = 0.2
) -> Dict[str, object]:
    """Fault-recovery overhead of the campaign runtime (schema 4).

    Runs the same small campaign through the pool twice — once clean,
    once with seeded worker-kill chaos — and reports the wall-clock
    overhead of surviving the kills (pool rebuilds + retried attempts)
    alongside the recovery counters.  The chaos run's digests must be
    bit-identical to the clean run's for every non-quarantined spec;
    divergence is a correctness bug, not a perf number.
    """
    from .experiments.retry import RetryPolicy
    from .experiments.runner import ScenarioSpec, run_campaign
    from .resilience.chaos import WorkerChaos

    names = ["clean", "stuck_at", "calibration"]
    specs = [ScenarioSpec(name, n_days=n_days, seed=seed) for name in names]

    start = time.perf_counter()
    clean = run_campaign(specs, n_jobs=2)
    clean_seconds = time.perf_counter() - start

    # Seed chosen so the deterministic draws actually contain kills
    # (two first-attempt kills across the three specs): a kill-free
    # draw would measure nothing.
    chaos = WorkerChaos(kill_probability=kill_probability, seed=28)
    policy = RetryPolicy(max_retries=6, backoff_base=0.01)
    start = time.perf_counter()
    battered = run_campaign(specs, n_jobs=2, chaos=chaos, policy=policy)
    chaos_seconds = time.perf_counter() - start

    for before, after in zip(clean.outcomes, battered.outcomes):
        if not after.quarantined and before.digest != after.digest:
            # pragma: no cover - recovery correctness violation
            raise AssertionError(
                f"chaos campaign diverged from clean run on {before.name}"
            )
    return {
        "scenarios": names,
        "n_days": n_days,
        "kill_probability": kill_probability,
        "clean_seconds": round(clean_seconds, 3),
        "chaos_seconds": round(chaos_seconds, 3),
        "overhead_ratio": round(chaos_seconds / clean_seconds, 2),
        "retries": battered.n_retries,
        "worker_crashes": battered.n_worker_crashes,
        "pool_rebuilds": battered.n_pool_rebuilds,
        "quarantined": len(battered.quarantined),
    }


def bench_cache(n_days: int = 3, seed: int = 2003) -> Dict[str, object]:
    """Campaign wall-clock cold (cache miss) vs hot (cache hit).

    Runs the same serial campaign twice against a throwaway cache
    directory; the second pass loads every trace from the cache.  The
    per-scenario digests must match or the cache is corrupting results.
    """
    from .experiments.runner import ScenarioSpec, run_scenarios_parallel

    names = ["clean", "stuck_at", "calibration", "additive"]
    specs = [ScenarioSpec(name, n_days=n_days, seed=seed) for name in names]

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        start = time.perf_counter()
        cold = run_scenarios_parallel(specs, n_jobs=1, cache_dir=cache_dir)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        hot = run_scenarios_parallel(specs, n_jobs=1, cache_dir=cache_dir)
        hot_seconds = time.perf_counter() - start

    if [o.digest for o in cold] != [o.digest for o in hot]:
        # pragma: no cover - cache correctness violation
        raise AssertionError("cache-hot campaign diverged from cold run")
    return {
        "scenarios": names,
        "n_days": n_days,
        "seed": seed,
        "cold_seconds": round(cold_seconds, 3),
        "hot_seconds": round(hot_seconds, 3),
        "speedup": round(cold_seconds / hot_seconds, 2),
    }


def bench_fleet_degradation(
    n_tenants: int = 12,
    n_windows: int = 400,
    checkpoint_interval: int = 200,
    repeats: int = 10,
) -> Dict[str, object]:
    """Fault-isolation overhead of the resilient fleet runtime (schema 6).

    Two measurements:

    * **No-fault overhead.**  The same regime traces run through a bare
      ``FleetEngine`` and a ``ResilientFleetEngine`` (epoch checkpoints,
      health tracking, containment machinery armed but never firing).
      Runs alternate raw/isolated so both sample the same scheduler
      noise; per-tenant digests must match bit-for-bit — the overhead
      number is only meaningful if the isolated run is exact.  The
      checkpoint cadence is aligned to the workload's regime dwell
      (200 = 5 x 40-window dwells), the way an operator would pick it:
      an epoch boundary that coincides with a regime change tears down
      no certified steady stretch, so chunking costs almost nothing
      and the overhead is dominated by the per-epoch snapshots.
    * **Faulted containment.**  A seeded K-of-N poisoning run (via the
      chaos harness) reports what isolation buys: poisoned tenants
      quarantined and re-admitted while survivors stay bit-identical to
      clean solo runs.  Survivor divergence is a correctness bug, not a
      perf number.
    """
    from . import DetectionPipeline, PipelineConfig
    from .fleet import FleetEngine, ResilientFleetEngine
    from .resilience.fleet_chaos import run_fleet_chaos

    traces = [
        _fleet_workload(1000 + tid, n_windows=n_windows)
        for tid in range(n_tenants)
    ]
    total = n_tenants * n_windows

    def build():
        return [DetectionPipeline(PipelineConfig()) for _ in range(n_tenants)]

    # Collect before and disable GC during each timed run: the engines
    # discarded by earlier iterations otherwise trigger collections
    # inside the timing window, and that churn (not the isolation
    # layer) dominated the raw/isolated delta.
    def timed(engine):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            engine.process_windows(traces)
            return time.perf_counter() - start
        finally:
            gc.enable()

    # The overhead estimate is the median of per-iteration isolated/raw
    # ratios: each pair runs back-to-back, so slow machine states (CPU
    # steal on shared runners) cancel within a pair instead of skewing
    # two independent best-of minima sampled at different times.
    raw_best = float("inf")
    ratios = []
    raw_engine = iso_engine = None
    for _ in range(repeats):
        raw_engine = FleetEngine(build())
        raw_seconds = timed(raw_engine)
        raw_best = min(raw_best, raw_seconds)

        iso_engine = ResilientFleetEngine(
            build(), checkpoint_interval=checkpoint_interval
        )
        ratios.append(timed(iso_engine) / raw_seconds)
    ratios.sort()
    median_ratio = ratios[len(ratios) // 2]

    if raw_engine.digests() != iso_engine.digests():
        # pragma: no cover - isolation correctness violation
        raise AssertionError(
            "resilient fleet diverged from bare engine on a no-fault run"
        )

    chaos = run_fleet_chaos(
        n_tenants=8,
        n_poisoned=2,
        kinds=("exploding", "malformed", "exception"),
        seed=3,
        n_windows=240,
        checkpoint_interval=64,
        probation=12,
    )
    if not chaos.survivors_ok:
        # pragma: no cover - isolation correctness violation
        raise AssertionError(
            "fleet-chaos survivors diverged from clean solo runs"
        )
    counters = chaos.health["counters"]
    raw_us = raw_best / total * 1e6
    # Derived from the paired-ratio estimate so the reported pair stays
    # self-consistent with overhead_pct.
    iso_us = raw_us * median_ratio
    overhead = iso_engine.overhead
    return {
        "n_tenants": n_tenants,
        "n_windows": n_windows,
        "checkpoint_interval": checkpoint_interval,
        "raw_us_per_deployment_window": round(raw_us, 2),
        "isolated_us_per_deployment_window": round(iso_us, 2),
        "overhead_pct": round((median_ratio - 1.0) * 100, 1),
        "digest_parity": True,
        "isolation_overhead_seconds": {
            key: round(value, 4) for key, value in overhead.items()
        },
        "faulted": {
            "n_tenants": chaos.n_tenants,
            "n_poisoned": len(chaos.victims),
            "kinds": list(chaos.kinds),
            "quarantined": counters["quarantines"],
            "readmitted": counters["readmissions"],
            "rollbacks": counters["rollbacks"],
            "survivors_bit_identical": chaos.survivors_ok,
            "all_faults_handled": chaos.ok,
        },
    }


def bench_backends(repeats: int = 5) -> Dict[str, object]:
    """numpy vs compiled per-kernel cost on the three ported hot paths.

    Times each registry kernel on representative shapes under both
    backends (after a warm-up call so JIT compilation never lands in a
    timing), and pins cross-backend correctness with a short fused run
    whose digest must be identical under ``backend="numpy"`` and
    ``backend="compiled"``.  On a runner without numba the "compiled"
    column measures the numpy fallback (flavor recorded), so speedups
    hover around 1.0 by construction.
    """
    import warnings

    from . import DetectionPipeline, PipelineConfig
    from .backend import get_backend, numba_available

    numpy_backend = get_backend("numpy")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        compiled = get_backend("compiled")

    rng = np.random.default_rng(11)
    n_rows, n_groups, d = 4000, 400, 2
    keys = np.sort(rng.integers(0, n_groups, n_rows)).astype(np.int64)
    weights = rng.normal(size=(n_rows, d))
    points = rng.normal(size=(64, d))
    matrix = rng.normal(size=(24, d))
    g_obs = rng.normal(size=(16, 40, d))
    g_states = rng.normal(size=(16, 24, d))
    n_lanes = 512
    buf = rng.integers(0, 2, (n_lanes, 5)).astype(np.int64)
    raws = rng.random(n_lanes) < 0.3
    count = buf.sum(axis=1)
    active = count >= 3
    llr = rng.normal(size=n_lanes)
    g_scores = np.abs(rng.normal(size=n_lanes))

    workloads = {
        "grouped_sums": lambda k: k.grouped_sums(keys, weights, n_groups),
        "pairwise_distances": lambda k: k.pairwise_distances(points, matrix),
        "batched_distances": lambda k: k.batched_distances(g_obs, g_states),
        "k_of_n_lockstep": lambda k: k.k_of_n_lockstep(
            buf.copy(), 2, raws, count.copy(), active.copy(), 3
        ),
        "sprt_step": lambda k: k.sprt_step(
            llr, raws, active, 1.5, -0.7, 2.2, -2.2
        ),
        "cusum_step": lambda k: k.cusum_step(g_scores, raws, active, 0.5, 4.0),
    }
    kernels: Dict[str, object] = {}
    for name, call in workloads.items():
        row: Dict[str, object] = {}
        for label, backend in (("numpy", numpy_backend), ("compiled", compiled)):
            call(backend)  # warm-up: JIT compile outside the timing
            row[f"{label}_us"] = round(
                _best_of(repeats, lambda: call(backend)) * 1e6, 2
            )
        row["speedup"] = round(row["numpy_us"] / max(row["compiled_us"], 1e-9), 2)
        kernels[name] = row

    from .traces import GDITraceConfig, generate_gdi_trace_columnar

    trace = generate_gdi_trace_columnar(GDITraceConfig(n_days=1, seed=7))
    digests = {}
    for label in ("numpy", "compiled"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            pipeline = DetectionPipeline(PipelineConfig(backend=label))
        pipeline.process_trace_fast(trace)
        digests[label] = pipeline.digest_metadata()
    parity = digests["numpy"]["digest"] == digests["compiled"]["digest"]
    if not parity:  # pragma: no cover - backend correctness violation
        raise AssertionError("compiled backend diverged from numpy digests")
    return {
        "numba_available": numba_available(),
        "flavors": {"numpy": numpy_backend.flavor, "compiled": compiled.flavor},
        "kernels": kernels,
        "digest_parity": parity,
        "digest_metadata": digests,
    }


def bench_parallel_scaling(
    max_workers: Optional[int] = None, n_days: int = 3, seed: int = 2003
) -> Dict[str, object]:
    """Campaign wall-clock vs worker count over shared-memory traces.

    Pre-populates a throwaway cache with a serial cold pass, measures a
    serial hot pass as the baseline, then sweeps worker counts (always
    including 1) through :func:`run_campaign`'s pool + shared-memory
    path.  Every point must reproduce the serial digests bit-for-bit;
    efficiency is ``serial / (workers * wall)``.  The ``n_workers=1``
    point runs the same inline path as the baseline, so it differs from
    ``serial_seconds`` only by timing noise.
    """
    from .experiments.runner import ScenarioSpec, run_campaign

    names = ["clean", "stuck_at", "calibration", "additive"]
    specs = [ScenarioSpec(name, n_days=n_days, seed=seed) for name in names]
    cpu_count = os.cpu_count() or 1
    limit = max_workers or max(min(cpu_count, 4), 1)
    workers = sorted({1, *range(2, limit + 1)})

    with tempfile.TemporaryDirectory(prefix="repro-bench-scale-") as cache_dir:
        run_campaign(specs, n_jobs=1, cache_dir=cache_dir)  # populate cache

        start = time.perf_counter()
        serial = run_campaign(specs, n_jobs=1, cache_dir=cache_dir)
        serial_seconds = time.perf_counter() - start
        serial_digests = [o.digest for o in serial.outcomes]

        curve = []
        for n_workers in workers:
            start = time.perf_counter()
            report = run_campaign(specs, n_jobs=n_workers, cache_dir=cache_dir)
            wall = time.perf_counter() - start
            if [o.digest for o in report.outcomes] != serial_digests:
                # pragma: no cover - parallelism correctness violation
                raise AssertionError(
                    f"n_workers={n_workers} campaign diverged from serial"
                )
            curve.append(
                {
                    "n_workers": n_workers,
                    "seconds": round(wall, 3),
                    "speedup": round(serial_seconds / wall, 2),
                    "efficiency": round(
                        serial_seconds / (n_workers * wall), 2
                    ),
                }
            )
    return {
        "scenarios": names,
        "n_days": n_days,
        "seed": seed,
        "cpu_count": cpu_count,
        "serial_seconds": round(serial_seconds, 3),
        "curve": curve,
        "digest_parity": True,
    }


def run_bench(
    n_jobs: Optional[int] = None, repeats: int = 3
) -> Dict[str, object]:
    """Measure everything and assemble the BENCH_pipeline.json payload."""
    with _pinned_threads() as threads_pinned:
        trace_generation = bench_trace_generation(repeats=repeats)
        filter_bank = bench_filter_bank(repeats=max(repeats, 5))
        fleet = bench_fleet(repeats=max(repeats - 1, 2))
        fleet_degradation = bench_fleet_degradation()
        backend = bench_backends(repeats=max(repeats, 5))
        parallel_scaling = bench_parallel_scaling()
        pipeline_us = round(bench_pipeline(repeats=repeats), 1)
        fused_us = round(bench_fused_pipeline(repeats=max(repeats, 5)), 1)
        hmm_us = round(bench_hmm_update(repeats=max(repeats, 5)), 2)
        clusterer_us = round(bench_clusterer_update(repeats=repeats), 1)
        campaign = bench_campaign(n_jobs=n_jobs)
        cache = bench_cache()
        recovery = bench_recovery()
    return {
        "schema": 7,
        "backend": backend,
        "parallel_scaling": parallel_scaling,
        "pipeline_us_per_window": pipeline_us,
        "fused_pipeline_us_per_window": fused_us,
        "fleet_us_per_deployment_window": fleet[
            "fleet_us_per_deployment_window"
        ],
        "fleet": fleet,
        "fleet_isolated_us_per_deployment_window": fleet_degradation[
            "isolated_us_per_deployment_window"
        ],
        "fleet_degradation": fleet_degradation,
        "hmm_update_us": hmm_us,
        "clusterer_update_us": clusterer_us,
        "filter_bank_us": filter_bank["vector_us_per_window"],
        "filter_bank": filter_bank,
        "trace_gen_us_per_window": trace_generation["columnar_us_per_window"],
        "trace_generation": trace_generation,
        "campaign": campaign,
        "cache": cache,
        "recovery": recovery,
        "baseline_pre_optimization": dict(PRE_OPTIMIZATION_BASELINE),
        "environment": environment_info(threads_pinned=threads_pinned),
    }


def compare(
    current: Dict[str, object],
    previous: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Regressions of the checked kernels beyond ``tolerance`` (fractional).

    Returns human-readable failure lines; empty means the run is clean.
    Missing metrics in the previous file are skipped (schema growth must
    not fail old baselines).
    """
    failures = []
    for metric in CHECKED_METRICS:
        old = previous.get(metric)
        new = current.get(metric)
        if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
            continue
        budget = old * (1.0 + tolerance)
        if new > budget:
            failures.append(
                f"{metric}: {new:.2f} us exceeds {old:.2f} us "
                f"(+{(new / old - 1.0) * 100:.0f}%, tolerance {tolerance:.0%})"
            )
    return failures


def render(result: Dict[str, object]) -> str:
    """One-screen summary of a bench run."""
    campaign = result["campaign"]
    baseline = result["baseline_pre_optimization"]
    lines = ["perf bench:"]
    for metric in CHECKED_METRICS:
        old = baseline.get(metric)
        new = result.get(metric)
        if new is None:
            # Rendering an older-schema payload that predates this
            # metric must not crash the report.
            lines.append(f"  {metric:<26}      n/a")
            continue
        gain = f"  ({old / new:.1f}x vs pre-opt {old} us)" if old else ""
        lines.append(f"  {metric:<26} {new:>8} us{gain}")
    filter_bank = result.get("filter_bank")
    if filter_bank:
        lines.append(
            f"  filter bank ({filter_bank['n_sensors']} sensors): scalar "
            f"{filter_bank['scalar_us_per_window']} us/window, vector "
            f"{filter_bank['vector_us_per_window']} us/window "
            f"-> {filter_bank['speedup']}x"
        )
    trace_generation = result.get("trace_generation")
    if trace_generation:
        lines.append(
            f"  trace gen ({trace_generation['n_days']} days): object "
            f"{trace_generation['object_us_per_window']} us/window, columnar "
            f"{trace_generation['columnar_us_per_window']} us/window "
            f"-> {trace_generation['speedup']}x"
        )
    fleet = result.get("fleet")
    if fleet:
        points = ", ".join(
            f"N={point['n']}: {point['fleet_us_per_deployment_window']} us "
            f"({point['speedup']}x)"
            for point in fleet["curve"]
        )
        lines.append(f"  fleet amortized cost vs independent runs: {points}")
    degradation = result.get("fleet_degradation")
    if degradation:
        faulted = degradation["faulted"]
        survivors = (
            "bit-identical"
            if faulted["survivors_bit_identical"]
            else "MISMATCH"
        )
        lines.append(
            f"  fleet isolation (N={degradation['n_tenants']}, interval "
            f"{degradation['checkpoint_interval']}): raw "
            f"{degradation['raw_us_per_deployment_window']} us/dw, isolated "
            f"{degradation['isolated_us_per_deployment_window']} us/dw "
            f"-> +{degradation['overhead_pct']}% no-fault overhead; faulted "
            f"{faulted['n_poisoned']}/{faulted['n_tenants']}: "
            f"{faulted['quarantined']} quarantined, "
            f"{faulted['readmitted']} readmitted, survivors {survivors}"
        )
    backend = result.get("backend")
    if backend:
        flavor = backend["flavors"]["compiled"]
        points = ", ".join(
            f"{name}: {row['numpy_us']}->{row['compiled_us']} us "
            f"({row['speedup']}x)"
            for name, row in backend["kernels"].items()
        )
        lines.append(
            f"  backend numpy vs compiled ({flavor} flavor, parity "
            f"{'OK' if backend['digest_parity'] else 'FAIL'}): {points}"
        )
    scaling = result.get("parallel_scaling")
    if scaling:
        points = ", ".join(
            f"{point['n_workers']}w: {point['seconds']}s "
            f"(eff {point['efficiency']})"
            for point in scaling["curve"]
        )
        lines.append(
            f"  parallel scaling (serial {scaling['serial_seconds']}s, "
            f"{scaling['cpu_count']} cpu): {points}"
        )
    campaign_speedup = (
        f"{campaign['speedup']}x"
        if campaign.get("speedup") is not None
        else f"n/a ({campaign.get('cpu_count', 1)} cpu)"
    )
    lines.append(
        f"  campaign ({len(campaign['scenarios'])} scenarios, "
        f"{campaign['n_days']} days): serial {campaign['serial_seconds']}s, "
        f"parallel(n_jobs={campaign['n_jobs']}) {campaign['parallel_seconds']}s "
        f"-> {campaign_speedup}"
    )
    cache = result.get("cache")
    if cache:
        lines.append(
            f"  cache ({len(cache['scenarios'])} scenarios, "
            f"{cache['n_days']} days): cold {cache['cold_seconds']}s, "
            f"hot {cache['hot_seconds']}s -> {cache['speedup']}x"
        )
    recovery = result.get("recovery")
    if recovery:
        lines.append(
            f"  recovery ({len(recovery['scenarios'])} scenarios, "
            f"{recovery['kill_probability']:.0%} worker kills): clean "
            f"{recovery['clean_seconds']}s, chaos "
            f"{recovery['chaos_seconds']}s -> "
            f"{recovery['overhead_ratio']}x overhead "
            f"({recovery['retries']} retries, "
            f"{recovery['pool_rebuilds']} pool rebuilds, "
            f"{recovery['quarantined']} quarantined)"
        )
    return "\n".join(lines)


def parity_command(
    n_days: int = 3, seed: int = 7, backend: str = "numpy"
) -> "tuple[str, int]":
    """The ``repro parity`` implementation: (report text, exit code).

    Runs one GDI trace through the per-window oracle
    (``process_trace``) and the fused fast path
    (``process_trace_fast``) for every alarm-filter kind crossed with
    every supervisor mode, and demands exact equality of the campaign
    digest, the JSON snapshot, and each per-window result.  Any
    mismatch is a correctness bug in the fused engine, so the exit
    code is non-zero and CI blocks on it.  ``backend`` selects the
    kernel backend for *both* sides, so ``--backend compiled`` pins
    every compiled kernel against the oracle bit-for-bit.
    """
    from . import DetectionPipeline, PipelineConfig
    from .traces import GDITraceConfig, generate_gdi_trace_columnar

    trace = generate_gdi_trace_columnar(
        GDITraceConfig(n_days=n_days, seed=seed)
    )
    lines = [
        f"fused-vs-oracle parity: {n_days} days, seed {seed}, "
        f"backend {backend}"
    ]
    ok = True
    for kind in ("k_of_n", "sprt", "cusum"):
        for mode in ("off", "warn", "repair"):
            config = PipelineConfig(
                filter_kind=kind, supervisor_mode=mode, backend=backend
            )
            oracle = DetectionPipeline(config)
            fused = DetectionPipeline(config)
            oracle_results = oracle.process_trace(trace)
            fused.process_trace_fast(trace)
            fused_results = fused.results
            digest_ok = oracle.digest() == fused.digest()
            snapshot_ok = json.dumps(
                oracle.snapshot(), sort_keys=True, default=str
            ) == json.dumps(fused.snapshot(), sort_keys=True, default=str)
            results_ok = len(oracle_results) == len(fused_results) and all(
                a == b for a, b in zip(oracle_results, fused_results)
            )
            ok = ok and digest_ok and snapshot_ok and results_ok

            def _tag(flag: bool) -> str:
                return "OK" if flag else "FAIL"

            lines.append(
                f"  {kind:<7} {mode:<7} digest={_tag(digest_ok)} "
                f"snapshot={_tag(snapshot_ok)} results={_tag(results_ok)}"
            )
    lines.append("parity PASS" if ok else "parity FAIL")
    return "\n".join(lines), 0 if ok else 1


def _synthetic_dim_trace(
    seed: int, dims: int, n_sensors: int, n_windows: int = 60
):
    """A d-dimensional regime trace for fleet-parity heterogeneity.

    The GDI traces are all two-attribute; fleet packing must also hold
    for tenants whose windows carry other dimensionalities (d == 1
    routes through the untrusted slow lane, d >= 3 gets its own
    batched dimensionality group).
    """
    from . import PipelineConfig
    from .sensornet.collector import windows_from_arrays

    rng = np.random.default_rng(seed)
    base = 10.0 + 5.0 * np.arange(dims)
    ts: List[float] = []
    sids: List[int] = []
    vals: List[np.ndarray] = []
    for index in range(1, n_windows + 1):
        hot = ((index - 1) // 15) % 2
        truth = base + (8.0 if hot else 0.0)
        for sensor in range(n_sensors):
            ts.append((index - 1) * 60.0 + 1.0)
            sids.append(sensor)
            vals.append(truth + rng.normal(0, 0.3, dims))
    ts_arr = np.asarray(ts, dtype=float)
    sid_arr = np.asarray(sids)
    val_arr = np.asarray(vals, dtype=float)
    order = np.lexsort((sid_arr, ts_arr))
    return windows_from_arrays(
        ts_arr[order],
        sid_arr[order],
        val_arr[order],
        PipelineConfig().window_minutes,
    )


def fleet_parity_command(
    n_tenants: int = 18, n_days: int = 2, backend: str = "numpy"
) -> "tuple[str, int]":
    """The ``repro parity --fleet`` implementation: (report, exit code).

    Packs a heterogeneous fleet — every filter kind, every supervisor
    mode, varying sensor counts, attribute dimensionalities 1 through
    3, and unequal trace lengths — into one :class:`FleetEngine` and
    demands that every tenant finishes bit-identical (digest, JSON
    snapshot, and per-window results) to its own independent
    ``process_windows_fast`` run.  ``backend`` selects the kernel
    backend for both sides (``--backend compiled`` pins the batched
    compiled kernels).
    """
    from . import DetectionPipeline, PipelineConfig
    from .fleet import FleetEngine
    from .traces import GDITraceConfig, generate_gdi_trace_columnar
    from .traces.windows import window_trace_columnar

    kinds = ("k_of_n", "sprt", "cusum")
    modes = ("off", "warn", "repair")
    tenants = []
    for tid in range(n_tenants):
        kind = kinds[tid % 3]
        mode = modes[(tid // 3) % 3]
        n_sensors = 6 + (tid % 7)
        config = PipelineConfig(
            filter_kind=kind, supervisor_mode=mode, backend=backend
        )
        if tid % 6 == 5:
            dims = 1 + (tid // 6) % 3
            windows = _synthetic_dim_trace(
                seed=300 + tid, dims=dims, n_sensors=n_sensors
            )
        else:
            trace = generate_gdi_trace_columnar(
                GDITraceConfig(
                    n_days=n_days + tid % 2,
                    seed=100 + tid,
                    n_sensors=n_sensors,
                )
            )
            windows = window_trace_columnar(trace, config.window_minutes)
        tenants.append((config, windows))

    independent = []
    for config, windows in tenants:
        pipeline = DetectionPipeline(config)
        pipeline.process_windows_fast(windows)
        independent.append(pipeline)

    fleet_pipes = [DetectionPipeline(config) for config, _ in tenants]
    engine = FleetEngine.from_pipelines(fleet_pipes)
    engine.process_windows([windows for _, windows in tenants])

    lines = [
        f"fleet-vs-independent parity: {n_tenants} heterogeneous "
        f"tenants, backend {backend}"
    ]
    ok = True
    for tid, (reference, packed) in enumerate(
        zip(independent, engine.to_pipelines())
    ):
        digest_ok = reference.digest() == packed.digest()
        snapshot_ok = json.dumps(
            reference.snapshot(), sort_keys=True, default=str
        ) == json.dumps(packed.snapshot(), sort_keys=True, default=str)
        results_ok = len(reference.results) == len(packed.results) and all(
            a == b for a, b in zip(reference.results, packed.results)
        )
        ok = ok and digest_ok and snapshot_ok and results_ok
        config = tenants[tid][0]
        tag = "OK" if digest_ok and snapshot_ok and results_ok else "FAIL"
        lines.append(
            f"  tenant {tid:2d} {config.filter_kind:<7} "
            f"{config.supervisor_mode:<7} "
            f"windows={len(tenants[tid][1]):3d} {tag}"
        )
    lines.append("fleet parity PASS" if ok else "fleet parity FAIL")
    return "\n".join(lines), 0 if ok else 1


def bench_command(
    output: str = DEFAULT_OUTPUT,
    check: bool = False,
    tolerance: float = DEFAULT_TOLERANCE,
    n_jobs: Optional[int] = None,
    repeats: int = 3,
    profile: bool = False,
) -> "tuple[str, int]":
    """The ``repro bench`` implementation: (report text, exit code)."""
    previous = None
    if check and os.path.exists(output):
        with open(output, "r", encoding="utf-8") as fh:
            previous = json.load(fh)

    result = run_bench(n_jobs=n_jobs, repeats=repeats)
    text = render(result)
    if profile:
        text += "\n" + profile_fused()

    if check:
        if previous is None:
            return text + f"\nno previous {output}; nothing to check", 0
        failures = compare(result, previous, tolerance=tolerance)
        if failures:
            return text + "\nREGRESSIONS:\n" + "\n".join(
                f"  {line}" for line in failures
            ), 1
        return text + f"\nno regressions vs {output} (tolerance {tolerance:.0%})", 0

    with open(output, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return text + f"\nwrote {output}", 0
