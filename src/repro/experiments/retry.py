"""Retry policy and failure records for the campaign runtime.

The fault-tolerant campaign executor (:mod:`repro.experiments.runner`)
treats every task failure — a worker exception, a deadline overrun, or a
dead worker process — as a :class:`TaskError` and decides, via a
:class:`RetryPolicy`, whether to retry the task or quarantine the spec.

Backoff delays are *deterministic*: the jitter is derived from a SHA-256
over the task's content key and attempt number, never from wall-clock
entropy, so two runs of the same campaign schedule retries identically
(results never depend on it either way — every scenario rebuilds from
its spec's own seed).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional


def _unit_interval(*parts: object) -> float:
    """Deterministic uniform draw in [0, 1) keyed by ``parts``."""
    text = ":".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """How the campaign executor reacts to task failures.

    Attributes
    ----------
    max_retries:
        Retries allowed *after* the first attempt; a task that fails
        ``max_retries + 1`` attempts is quarantined (recorded with its
        traceback, excluded from the campaign verdict, never fatal).
    task_timeout:
        Per-attempt deadline in seconds; ``None`` disables deadlines.
        A task past its deadline is declared hung, its worker pool is
        torn down (killing the hung worker), and the attempt counts as
        a failure.  Deadlines are only enforced on the pool path —
        the serial in-process path has no second thread to interrupt.
    backoff_base:
        First retry delay in seconds (0 disables sleeping, useful in
        tests); doubles every further attempt up to ``backoff_cap``.
    backoff_cap:
        Upper bound on the un-jittered delay.
    backoff_jitter:
        Fractional jitter added on top of the exponential delay
        (0.5 means up to +50%), drawn deterministically per
        (task key, attempt).
    """

    max_retries: int = 2
    task_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    backoff_jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be non-negative")

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (2 = first retry) of ``key``.

        Exponential in the attempt number, capped, with deterministic
        jitter so simultaneous retries of different specs spread out
        the same way in every run.
        """
        if self.backoff_base <= 0:
            return 0.0
        raw = min(
            self.backoff_cap,
            self.backoff_base * 2.0 ** max(0, attempt - 2),
        )
        jitter = self.backoff_jitter * _unit_interval("backoff", key, attempt)
        return raw * (1.0 + jitter)


@dataclass(frozen=True)
class TaskError:
    """Picklable record of one failed task attempt.

    ``kind`` is one of ``"exception"`` (the task raised), ``"timeout"``
    (it overran its deadline), or ``"worker-crash"`` (its worker process
    died — SIGKILL, OOM, segfault — taking the pool with it).
    """

    kind: str
    message: str
    traceback_text: str = ""

    def describe(self) -> str:
        """One-block description for journals and quarantine reports."""
        text = f"{self.kind}: {self.message}"
        if self.traceback_text:
            text += "\n" + self.traceback_text.rstrip()
        return text
