"""Shared plumbing for trace-driven experiment runs.

Besides the serial helpers (:func:`run_pipeline`, :func:`run_scenario`),
this module hosts the *fault-tolerant campaign runtime* used by the
table/figure reproductions and the fault campaigns.
:func:`run_campaign` executes a list of :class:`ScenarioSpec` entries
across a ``ProcessPoolExecutor`` with per-task futures carrying
deadlines, exponential backoff with deterministic jitter
(:class:`~repro.experiments.retry.RetryPolicy`), pool rebuild after a
worker crash (``BrokenProcessPool``), and poison-spec quarantine: a
spec that fails every retry is recorded with its traceback in the
returned :class:`CampaignReport` and excluded from the campaign
verdict, never fatal — finished results are always salvaged.  With a
journal directory, every task transition is written to an append-only
JSONL write-ahead log (:mod:`repro.experiments.journal`) so an
interrupted or crashed campaign resumes exactly-once, skipping
completed specs.

Workers return :class:`ScenarioOutcome` summaries (plain picklable
data, no live pipeline objects — the pipeline holds unpicklable filter
factories) in the exact order the specs were submitted, and every
scenario is rebuilt from its own seed, so results are identical
regardless of ``n_jobs`` and of any interleaving of crashes, retries,
and resumes.

Pool campaigns are sharded into chunks; with a trace cache the parent
publishes each chunk's cached traces into shared-memory segments
(:mod:`repro.experiments.shm`) so workers replay them zero-copy from
tiny descriptors instead of re-reading files per attempt.
"""

from __future__ import annotations

import math
import os
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait as futures_wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..analysis.offline_clustering import initial_states_from_trace
from ..config import PipelineConfig
from ..core.pipeline import DetectionPipeline, WindowResult
from ..faults.campaign import CampaignSpec
from ..resilience.chaos import SimulatedWorkerCrash, WorkerChaos
from ..sensornet.collector import ObservationWindow
from ..traces.gdi import GDITraceConfig, build_environment, generate_gdi_trace
from ..traces.schema import Trace
from ..traces.windows import window_trace_by_samples
from .journal import CampaignJournal
from .retry import RetryPolicy, TaskError


def compute_initial_states(
    trace: Trace, config: PipelineConfig, seed: int = 0
) -> np.ndarray:
    """Table 1's initial state estimate: offline k-means on the data."""
    observations = np.vstack([record.vector for record in trace.records])
    return initial_states_from_trace(
        observations, config.n_initial_states, seed=seed
    )


def run_pipeline(
    trace: Trace,
    config: Optional[PipelineConfig] = None,
    initial_states: Optional[Sequence[np.ndarray]] = None,
) -> DetectionPipeline:
    """Feed a full trace through a fresh pipeline and return it."""
    config = config or PipelineConfig()
    pipeline = DetectionPipeline(config, initial_states=initial_states)
    for window in window_trace_by_samples(
        trace, config.window_samples, config.sample_period_minutes
    ):
        pipeline.process_window(window)
    return pipeline


def run_fleet(
    windows_per_tenant: Sequence[Sequence[ObservationWindow]],
    configs: Optional[Sequence[Optional[PipelineConfig]]] = None,
    *,
    resilient: bool = False,
    checkpoint_interval: int = 256,
    probation: int = 16,
    max_recoveries: int = 2,
) -> List[DetectionPipeline]:
    """Advance many independent deployments through one batched engine.

    ``windows_per_tenant[i]`` is deployment ``i``'s window list (lengths
    may differ); ``configs[i]`` is its pipeline configuration (``None``
    entries — or ``configs=None`` — mean a default config).  Returns one
    pipeline per deployment, bit-identical to what a per-deployment
    ``process_windows_fast`` loop would have produced, but advanced
    through the :class:`~repro.fleet.FleetEngine` struct-of-arrays
    kernels so the amortized per-window cost stays near-constant as the
    fleet grows.

    With ``resilient=True`` the fleet runs under the fault-isolating
    :class:`~repro.fleet.ResilientFleetEngine` instead: a tenant that
    raises or trips its supervisor is contained, quarantined, and given
    bounded recovery while the remaining tenants advance bit-identical
    to a clean run (DESIGN.md §14).  The isolation knobs mirror that
    engine's constructor.
    """
    from ..fleet import FleetEngine, ResilientFleetEngine

    if configs is None:
        configs = [None] * len(windows_per_tenant)
    if len(configs) != len(windows_per_tenant):
        raise ValueError(
            f"got {len(configs)} configs for "
            f"{len(windows_per_tenant)} window lists"
        )
    pipelines = [
        DetectionPipeline(config or PipelineConfig()) for config in configs
    ]
    if resilient:
        engine: FleetEngine = ResilientFleetEngine(
            pipelines,
            checkpoint_interval=checkpoint_interval,
            probation=probation,
            max_recoveries=max_recoveries,
        )
    else:
        engine = FleetEngine.from_pipelines(pipelines)
    engine.process_windows(windows_per_tenant)
    return engine.to_pipelines()


@dataclass
class ScenarioRun:
    """Everything one experiment scenario produced.

    Attributes
    ----------
    name:
        Scenario label.
    trace:
        The (possibly corrupted) delivered trace.
    pipeline:
        The pipeline after consuming the trace.
    campaign:
        The corruption plan, or None for clean runs.
    config:
        Pipeline configuration used.
    trace_config:
        Workload generator configuration used.
    """

    name: str
    trace: Trace
    pipeline: DetectionPipeline
    campaign: Optional[CampaignSpec]
    config: PipelineConfig
    trace_config: GDITraceConfig

    @property
    def ground_truth(self) -> Dict[int, str]:
        """sensor id -> planted corruption kind (empty for clean runs)."""
        return self.campaign.ground_truth() if self.campaign else {}

    def windows(self) -> List[ObservationWindow]:
        """Re-window the trace (for detectors that need raw windows)."""
        return window_trace_by_samples(
            self.trace,
            self.config.window_samples,
            self.config.sample_period_minutes,
        )


def run_scenario(
    name: str,
    campaign: Optional[CampaignSpec] = None,
    trace_config: Optional[GDITraceConfig] = None,
    config: Optional[PipelineConfig] = None,
    initial_states: Optional[Sequence[np.ndarray]] = None,
    use_offline_initial_states: bool = False,
) -> ScenarioRun:
    """Generate a GDI trace (optionally corrupted) and run the pipeline.

    Parameters
    ----------
    name:
        Scenario label for reports.
    campaign:
        Corruption plan; None for a clean run.
    trace_config / config:
        Workload and pipeline configurations (Table 1 defaults).
    initial_states:
        Explicit initial model states.
    use_offline_initial_states:
        When True (and no explicit states given), compute the Table 1
        offline-clustering estimate from the generated trace itself.
    """
    trace_config = trace_config or GDITraceConfig()
    config = config or PipelineConfig()
    environment = build_environment(trace_config)
    injector = campaign.build_injector(environment) if campaign else None
    trace = generate_gdi_trace(trace_config, corruption=injector)
    if initial_states is None and use_offline_initial_states:
        initial_states = compute_initial_states(trace, config)
    pipeline = run_pipeline(trace, config, initial_states=initial_states)
    return ScenarioRun(
        name=name,
        trace=trace,
        pipeline=pipeline,
        campaign=campaign,
        config=config,
        trace_config=trace_config,
    )


# -- parallel fan-out ------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario to run in the parallel fan-out.

    ``name`` must be one of the registered standard scenarios (the same
    vocabulary as ``repro scenario`` / ``cached_scenario``); the builder
    is resolved inside the worker process so the spec itself stays a
    tiny picklable value.
    """

    name: str
    n_days: int = 21
    seed: int = 2003


@dataclass(frozen=True)
class ScenarioOutcome:
    """Picklable summary of one scenario run.

    Everything the experiment tables and the campaign scorers consume,
    without the live pipeline (whose filter bank holds closure factories
    that cannot cross a process boundary).  Two runs of the same spec
    compare equal field-by-field, which is what the determinism tests
    assert across ``n_jobs`` settings.
    """

    name: str
    n_days: int
    seed: int
    n_windows: int
    n_model_states: int
    system_diagnosis: str
    #: sensor id -> (category, anomaly type, confidence)
    sensor_diagnoses: Dict[int, Tuple[str, str, float]]
    ground_truth: Dict[int, str]
    n_raw_alarms: int
    n_tracks: int
    correct_model_labels: Tuple[str, ...]
    #: Content hash of the final pipeline state
    #: (:meth:`DetectionPipeline.digest`); cached and regenerated runs
    #: of the same spec must agree on it.
    digest: str = ""
    #: True when the trace came from the scenario cache rather than a
    #: fresh simulation.  Excluded from equality — a cache-hot rerun
    #: compares equal to its cold original.
    from_cache: bool = field(default=False, compare=False)
    #: Why the spec was quarantined (kind, message, traceback); empty
    #: for successful runs.  Quarantined outcomes carry no digest and
    #: zeroed counters — they are placeholders that keep the campaign's
    #: spec order while surfacing the failure in reports.
    error: str = ""
    #: Attempts the campaign runtime spent on this spec (1 = first try
    #: succeeded).  Excluded from equality: retry counts are scheduling
    #: noise, and a chaos-battered rerun must still compare equal to a
    #: clean one — the digest is what certifies the result.
    attempts: int = field(default=1, compare=False)

    @property
    def quarantined(self) -> bool:
        """True when the spec failed every retry and was excluded."""
        return bool(self.error)

    def detected_sensors(self) -> List[int]:
        """Sensors diagnosed with anything (sorted)."""
        return sorted(self.sensor_diagnoses)

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-safe encoding for the campaign journal."""
        return {
            "name": self.name,
            "n_days": int(self.n_days),
            "seed": int(self.seed),
            "n_windows": int(self.n_windows),
            "n_model_states": int(self.n_model_states),
            "system_diagnosis": self.system_diagnosis,
            "sensor_diagnoses": {
                str(sensor): [str(cat), str(kind), float(confidence)]
                for sensor, (cat, kind, confidence)
                in self.sensor_diagnoses.items()
            },
            "ground_truth": {
                str(sensor): str(kind)
                for sensor, kind in self.ground_truth.items()
            },
            "n_raw_alarms": int(self.n_raw_alarms),
            "n_tracks": int(self.n_tracks),
            "correct_model_labels": list(self.correct_model_labels),
            "digest": self.digest,
            "error": self.error,
            "attempts": int(self.attempts),
        }

    @classmethod
    def from_json_dict(
        cls, payload: Mapping[str, object]
    ) -> "ScenarioOutcome":
        """Inverse of :meth:`to_json_dict` (journal resume path)."""
        return cls(
            name=str(payload["name"]),
            n_days=int(payload["n_days"]),
            seed=int(payload["seed"]),
            n_windows=int(payload["n_windows"]),
            n_model_states=int(payload["n_model_states"]),
            system_diagnosis=str(payload["system_diagnosis"]),
            sensor_diagnoses={
                int(sensor): (str(entry[0]), str(entry[1]), float(entry[2]))
                for sensor, entry
                in dict(payload["sensor_diagnoses"]).items()
            },
            ground_truth={
                int(sensor): str(kind)
                for sensor, kind in dict(payload["ground_truth"]).items()
            },
            n_raw_alarms=int(payload["n_raw_alarms"]),
            n_tracks=int(payload["n_tracks"]),
            correct_model_labels=tuple(
                str(label) for label in payload["correct_model_labels"]
            ),
            digest=str(payload["digest"]),
            error=str(payload.get("error", "")),
            attempts=int(payload.get("attempts", 1)),
        )


def _summarize_pipeline(
    pipeline: DetectionPipeline,
    name: str,
    n_days: int,
    seed: int,
    ground_truth: Dict[int, str],
    from_cache: bool = False,
) -> ScenarioOutcome:
    """Condense a finished pipeline into a :class:`ScenarioOutcome`."""
    diagnoses = {
        sensor_id: (
            diagnosis.category.value,
            diagnosis.anomaly_type.value,
            float(diagnosis.confidence),
        )
        for sensor_id, diagnosis in pipeline.diagnose_all().items()
    }
    model = pipeline.correct_model()
    return ScenarioOutcome(
        name=name,
        n_days=n_days,
        seed=seed,
        n_windows=pipeline.n_windows,
        n_model_states=pipeline.clusterer.n_states if pipeline.clusterer else 0,
        system_diagnosis=pipeline.system_diagnosis().anomaly_type.value,
        sensor_diagnoses=diagnoses,
        ground_truth=dict(ground_truth),
        n_raw_alarms=sum(len(r.raw_alarms) for r in pipeline.results),
        n_tracks=len(pipeline.tracks.tracks),
        correct_model_labels=tuple(model.label(s) for s in model.state_ids),
        digest=pipeline.digest(),
        from_cache=from_cache,
    )


def summarize_run(run: ScenarioRun, spec: Optional[ScenarioSpec] = None) -> ScenarioOutcome:
    """Condense a :class:`ScenarioRun` into a :class:`ScenarioOutcome`."""
    return _summarize_pipeline(
        run.pipeline,
        name=run.name,
        n_days=spec.n_days if spec else run.trace_config.n_days,
        seed=spec.seed if spec else run.trace_config.seed,
        ground_truth=dict(run.ground_truth),
    )


def _replay_entry(entry, spec: ScenarioSpec) -> ScenarioOutcome:
    """Replay one cached/shared trace through a fresh pipeline.

    The common tail of both hot paths — a :class:`TraceCache` hit and a
    shared-memory descriptor handed down by the campaign parent.  The
    delivered arrays are re-windowed columnar-style and the planted
    ground truth travels with the entry, so no simulation or campaign
    rebuild happens; the outcome matches a fresh run bit-for-bit
    (``from_cache`` aside).
    """
    from ..sensornet.collector import windows_from_arrays

    config = PipelineConfig()
    pipeline = DetectionPipeline(config)
    for window in windows_from_arrays(
        entry.timestamps,
        entry.sensor_ids,
        entry.values,
        config.window_minutes,
    ):
        pipeline.process_window(window)
    return _summarize_pipeline(
        pipeline,
        name=entry.label or spec.name,
        n_days=spec.n_days,
        seed=spec.seed,
        ground_truth=entry.ground_truth,
        from_cache=True,
    )


def _run_scenario_spec(
    spec: ScenarioSpec, cache_dir: "Optional[Union[str, Path]]" = None
) -> ScenarioOutcome:
    """Worker entry point: build and summarise one scenario.

    Imported lazily to avoid the runner<->scenarios import cycle; runs
    in the worker process (or inline for ``n_jobs=1``).

    With a ``cache_dir``, a hit loads the stored delivered arrays and
    replays the pipeline over columnar windows — no simulation, no
    campaign rebuild (the planted ground truth travels with the entry).
    The outcome is identical to a fresh run (``from_cache`` aside);
    a miss simulates via the object-path oracle and stores the result.
    """
    from . import _SCENARIO_BUILDERS

    builder = _SCENARIO_BUILDERS.get(spec.name)
    if builder is None:
        raise KeyError(
            f"unknown scenario {spec.name!r}; "
            f"choose from {sorted(_SCENARIO_BUILDERS)}"
        )
    cache = None
    cache_spec = None
    if cache_dir is not None:
        from ..traces.cache import TraceCache, scenario_spec

        cache = TraceCache(Path(cache_dir))
        cache_spec = scenario_spec(spec.name, spec.n_days, spec.seed)
        entry = cache.load(cache_spec)
        if entry is not None:
            return _replay_entry(entry, spec)
    run = builder(n_days=spec.n_days, seed=spec.seed)
    if cache is not None and cache_spec is not None:
        timestamps, sensor_ids, values = run.trace.to_arrays()
        cache.store(
            cache_spec,
            timestamps,
            sensor_ids,
            values,
            attribute_names=run.trace.attribute_names,
            metadata=run.trace.metadata,
            ground_truth=run.ground_truth,
            label=run.name,
        )
    return summarize_run(run, spec)


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` knob: None/0 -> all cores, floor at 1."""
    if n_jobs is None or n_jobs == 0:
        return os.cpu_count() or 1
    return max(1, int(n_jobs))


#: Per-worker state seeded by :func:`_pool_worker_init`.
_WORKER_STATE: Dict[str, object] = {}


def _pool_worker_init() -> None:
    """One-time setup in each pool worker.

    Pre-imports the full experiment stack so spawned workers pay the
    (substantial) import cost once per worker instead of lazily inside
    their first task, and seeds a per-worker RNG for any worker-local
    jitter needs — task results themselves never read it (each scenario
    rebuilds from its spec's own seed, keeping the determinism
    contract).
    """
    import repro.experiments  # noqa: F401  (side effect: warm imports)

    _WORKER_STATE["rng"] = np.random.default_rng((os.getpid(), 0x5EED))


def campaign_spec_key(spec: ScenarioSpec) -> str:
    """Content hash identifying ``spec`` in journals and chaos draws.

    Same scheme as the :class:`~repro.traces.cache.TraceCache`: a
    SHA-256 over the canonical scenario spec dict, generator version
    included — so a behavioural change to trace generation retires
    journal entries exactly like it retires cache entries.
    """
    from ..traces.cache import canonical_spec_hash, scenario_spec

    return canonical_spec_hash(
        scenario_spec(spec.name, spec.n_days, spec.seed)
    )


@dataclass(frozen=True)
class _TaskPayload:
    """Everything one worker attempt needs (small and picklable)."""

    spec: ScenarioSpec
    key: str
    attempt: int
    cache_dir: "Optional[Union[str, Path]]"
    chaos: Optional[WorkerChaos]
    inline: bool
    #: Shared-memory descriptor published by the campaign parent; when
    #: set the worker replays the trace zero-copy from the segment
    #: instead of opening the cache file itself.
    shm: "Optional[object]" = None


@dataclass
class _Task:
    """Orchestrator-side state of one spec's execution."""

    index: int
    spec: ScenarioSpec
    key: str
    attempt: int = 1
    #: Monotonic-clock deadline of the in-flight attempt.
    deadline: float = math.inf
    #: Monotonic-clock release time while backing off between retries.
    not_before: float = 0.0


@dataclass
class CampaignReport:
    """Outcomes plus the recovery bookkeeping of one campaign run."""

    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    #: Failed attempts that were retried (any failure kind).
    n_retries: int = 0
    #: Attempts declared hung after overrunning the task deadline.
    n_timeouts: int = 0
    #: Attempts lost to a dying worker process (SIGKILL/OOM/segfault),
    #: including innocent in-flight tasks the broken pool took down.
    n_worker_crashes: int = 0
    #: Times the worker pool was torn down and rebuilt.
    n_pool_rebuilds: int = 0
    #: Specs replayed from the journal instead of re-executed.
    n_journal_skips: int = 0

    @property
    def quarantined(self) -> List[ScenarioOutcome]:
        """Specs that failed every retry (placeholder outcomes)."""
        return [o for o in self.outcomes if o.quarantined]

    @property
    def ok(self) -> bool:
        """True when no spec was quarantined."""
        return not self.quarantined

    def stats_line(self) -> str:
        """Human-readable recovery counters for CLI output."""
        return (
            f"recovery: retries={self.n_retries} "
            f"timeouts={self.n_timeouts} "
            f"worker_crashes={self.n_worker_crashes} "
            f"pool_rebuilds={self.n_pool_rebuilds} "
            f"journal_skips={self.n_journal_skips} "
            f"quarantined={len(self.quarantined)}"
        )


def _run_scenario_task(
    payload: _TaskPayload,
) -> "Union[ScenarioOutcome, TaskError]":
    """Worker entry point: one attempt, failures returned not raised.

    Exceptions are converted to :class:`TaskError` records *inside* the
    worker so their tracebacks survive the process boundary verbatim.
    ``KeyboardInterrupt`` propagates (the orchestrator owns shutdown);
    a chaos-injected SIGKILL never returns at all and surfaces as
    ``BrokenProcessPool`` on the parent's future.
    """
    try:
        if payload.chaos is not None:
            payload.chaos.apply(
                payload.key, payload.attempt, inline=payload.inline
            )
        if payload.shm is not None:
            try:
                from .shm import attach_entry

                entry = attach_entry(payload.shm)
            except Exception:
                # A vanished/unmappable segment degrades to the normal
                # cache path rather than failing the task.
                pass
            else:
                return _replay_entry(entry, payload.spec)
        return _run_scenario_spec(payload.spec, cache_dir=payload.cache_dir)
    except KeyboardInterrupt:
        raise
    except Exception as exc:
        kind = (
            "worker-crash"
            if isinstance(exc, SimulatedWorkerCrash)
            else "exception"
        )
        return TaskError(
            kind=kind,
            message=f"{type(exc).__name__}: {exc}",
            traceback_text=traceback.format_exc(),
        )


def _spec_fields(spec: ScenarioSpec) -> Dict[str, object]:
    return {"name": spec.name, "n_days": spec.n_days, "seed": spec.seed}


def _complete_task(
    task: _Task,
    outcome: ScenarioOutcome,
    journal: Optional[CampaignJournal],
    results: "List[Optional[ScenarioOutcome]]",
) -> None:
    outcome = replace(outcome, attempts=task.attempt)
    results[task.index] = outcome
    if journal is not None:
        journal.record_done(task.key, outcome.to_json_dict())


def _quarantine_task(
    task: _Task,
    error: TaskError,
    journal: Optional[CampaignJournal],
    results: "List[Optional[ScenarioOutcome]]",
) -> None:
    """Record a poison spec: placeholder outcome, never an exception."""
    outcome = ScenarioOutcome(
        name=task.spec.name,
        n_days=task.spec.n_days,
        seed=task.spec.seed,
        n_windows=0,
        n_model_states=0,
        system_diagnosis="",
        sensor_diagnoses={},
        ground_truth={},
        n_raw_alarms=0,
        n_tracks=0,
        correct_model_labels=(),
        digest="",
        error=error.describe(),
        attempts=task.attempt,
    )
    results[task.index] = outcome
    if journal is not None:
        journal.record_poisoned(task.key, outcome.error, task.attempt)


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down hard, reclaiming every worker process.

    ``shutdown(wait=False)`` alone would orphan a hung or chaos-struck
    worker until its sleep ran out; terminating (and, as a last resort,
    killing) the worker processes is what actually frees them after a
    deadline overrun or a Ctrl-C.
    """
    worker_map = getattr(pool, "_processes", None)
    processes = list(worker_map.values()) if worker_map else []
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - already-broken pools
        pass
    for process in processes:
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already dead
            pass
    for process in processes:
        try:
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
        except Exception:  # pragma: no cover - already dead
            pass


def _execute_inline(
    tasks: List[_Task],
    cache_dir: "Optional[Union[str, Path]]",
    policy: RetryPolicy,
    chaos: Optional[WorkerChaos],
    journal: Optional[CampaignJournal],
    results: "List[Optional[ScenarioOutcome]]",
    report: CampaignReport,
) -> None:
    """Serial in-process execution (``n_jobs=1`` / single task).

    Same retry/quarantine/journal semantics as the pool path, minus
    deadlines (no second thread to enforce them) — chaos kills and
    hangs degrade to :class:`SimulatedWorkerCrash` failures.  A
    ``KeyboardInterrupt`` propagates after the journal is flushed by
    the caller, leaving a resumable log.
    """
    for task in tasks:
        while True:
            if journal is not None:
                journal.record_start(
                    task.key, _spec_fields(task.spec), task.attempt
                )
            result = _run_scenario_task(
                _TaskPayload(
                    spec=task.spec,
                    key=task.key,
                    attempt=task.attempt,
                    cache_dir=cache_dir,
                    chaos=chaos,
                    inline=True,
                )
            )
            if not isinstance(result, TaskError):
                _complete_task(task, result, journal, results)
                break
            if result.kind == "worker-crash":
                report.n_worker_crashes += 1
            if task.attempt > policy.max_retries:
                _quarantine_task(task, result, journal, results)
                break
            if journal is not None:
                journal.record_retry(
                    task.key, task.attempt, result.kind, result.message
                )
            report.n_retries += 1
            task.attempt += 1
            delay = policy.delay(task.key, task.attempt)
            if delay > 0:
                time.sleep(delay)


def _execute_pool(
    tasks: List[_Task],
    n_workers: int,
    cache_dir: "Optional[Union[str, Path]]",
    policy: RetryPolicy,
    chaos: Optional[WorkerChaos],
    journal: Optional[CampaignJournal],
    results: "List[Optional[ScenarioOutcome]]",
    report: CampaignReport,
    shm_by_key: "Optional[Dict[str, object]]" = None,
) -> None:
    """Fault-tolerant process-pool execution.

    Per-task futures with deadlines; at most ``n_workers`` in flight so
    a queued task's deadline never starts ticking before its worker
    does.  A worker death breaks the whole pool (``BrokenProcessPool``),
    so every in-flight task consumes an attempt — the culprit cannot be
    told from the victims — and the pool is rebuilt.  A deadline
    overrun tears the pool down too (the only way to reclaim a hung
    worker), but there the victims are identifiable and are requeued
    without consuming an attempt.
    """
    clock = time.monotonic
    ready: "Deque[_Task]" = deque(tasks)
    waiting: List[_Task] = []
    in_flight: Dict[Future, _Task] = {}
    pool = ProcessPoolExecutor(
        max_workers=n_workers, initializer=_pool_worker_init
    )

    def fail(task: _Task, error: TaskError) -> None:
        if error.kind == "timeout":
            report.n_timeouts += 1
        elif error.kind == "worker-crash":
            report.n_worker_crashes += 1
        if task.attempt > policy.max_retries:
            _quarantine_task(task, error, journal, results)
            return
        if journal is not None:
            journal.record_retry(
                task.key, task.attempt, error.kind, error.message
            )
        report.n_retries += 1
        task.attempt += 1
        task.not_before = clock() + policy.delay(task.key, task.attempt)
        waiting.append(task)

    def settle(future: Future, task: _Task) -> bool:
        """Fold one finished future into results; True if pool broke."""
        try:
            result = future.result()
        except BrokenProcessPool:
            fail(
                task,
                TaskError(
                    kind="worker-crash",
                    message="worker process died mid-task "
                    "(BrokenProcessPool)",
                ),
            )
            return True
        except Exception as exc:
            fail(
                task,
                TaskError(
                    kind="exception",
                    message=f"{type(exc).__name__}: {exc}",
                    traceback_text=traceback.format_exc(),
                ),
            )
            return False
        if isinstance(result, TaskError):
            fail(task, result)
        else:
            _complete_task(task, result, journal, results)
        return False

    def rebuild() -> None:
        nonlocal pool
        report.n_pool_rebuilds += 1
        _shutdown_pool(pool)
        pool = ProcessPoolExecutor(
            max_workers=n_workers, initializer=_pool_worker_init
        )

    try:
        while ready or waiting or in_flight:
            now = clock()
            if waiting:
                due = [t for t in waiting if t.not_before <= now]
                if due:
                    waiting[:] = [t for t in waiting if t.not_before > now]
                    ready.extend(sorted(due, key=lambda t: t.index))
            while ready and len(in_flight) < n_workers:
                task = ready.popleft()
                if journal is not None:
                    journal.record_start(
                        task.key, _spec_fields(task.spec), task.attempt
                    )
                future = pool.submit(
                    _run_scenario_task,
                    _TaskPayload(
                        spec=task.spec,
                        key=task.key,
                        attempt=task.attempt,
                        cache_dir=cache_dir,
                        chaos=chaos,
                        inline=False,
                        shm=(
                            shm_by_key.get(task.key)
                            if shm_by_key is not None
                            else None
                        ),
                    ),
                )
                task.deadline = (
                    clock() + policy.task_timeout
                    if policy.task_timeout
                    else math.inf
                )
                in_flight[future] = task
            if not in_flight:
                # Everyone is backing off: sleep to the first release.
                pause = min(t.not_before for t in waiting) - clock()
                if pause > 0:
                    time.sleep(pause)
                continue

            horizon = min(t.deadline for t in in_flight.values())
            if waiting:
                horizon = min(
                    horizon, min(t.not_before for t in waiting)
                )
            timeout = min(max(horizon - clock(), 0.0), 0.5)
            done, _ = futures_wait(
                set(in_flight), timeout=timeout, return_when=FIRST_COMPLETED
            )

            broken = False
            for future in done:
                broken |= settle(future, in_flight.pop(future))
            if broken:
                # The pool died under the remaining in-flight tasks.
                # Any that raced to completion first still have results;
                # the rest consume an attempt (chaos draws are
                # per-attempt, so a victim retries with fresh luck).
                for future, task in list(in_flight.items()):
                    if future.done():
                        settle(future, task)
                    else:
                        fail(
                            task,
                            TaskError(
                                kind="worker-crash",
                                message="worker pool broke under this "
                                "task",
                            ),
                        )
                in_flight.clear()
                rebuild()
                continue

            now = clock()
            overdue = [
                task
                for future, task in in_flight.items()
                if task.deadline <= now and not future.done()
            ]
            if overdue:
                # Hung workers are only reclaimable by pool teardown.
                for future, task in list(in_flight.items()):
                    if future.done():
                        settle(future, task)
                    elif task.deadline <= now:
                        fail(
                            task,
                            TaskError(
                                kind="timeout",
                                message=(
                                    "no result within "
                                    f"{policy.task_timeout:.1f}s deadline "
                                    f"(attempt {task.attempt})"
                                ),
                            ),
                        )
                    else:
                        # Innocent bystander of the teardown: requeue
                        # without consuming an attempt.
                        ready.append(task)
                in_flight.clear()
                rebuild()
    except KeyboardInterrupt:
        # Graceful Ctrl-C: cancel pending work, reclaim every worker,
        # leave the journal flushed so the campaign is resumable.
        _shutdown_pool(pool)
        if journal is not None:
            journal.flush()
        raise
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _publish_chunk_shm(
    chunk: "List[_Task]", cache_dir: "Union[str, Path]"
) -> "Tuple[List[object], Optional[Dict[str, object]]]":
    """Publish one chunk's cache hits into shared memory (parent side).

    Loads each hit zero-copy from the cache (mmap views) and copies it
    once into a :mod:`multiprocessing.shared_memory` segment; workers
    then receive only ``(shm_name, offsets, shapes, dtypes)``
    descriptors instead of re-reading the file per attempt.  Misses get
    no descriptor and keep the worker-side simulate-and-store path.
    Entirely best-effort: any failure (no shm support, ``/dev/shm``
    pressure) just means the chunk runs through the plain cache path.
    """
    try:
        from ..traces.cache import TraceCache, scenario_spec
        from .shm import publish_entry
    except Exception:  # pragma: no cover - platform without shm
        return [], None
    cache = TraceCache(Path(cache_dir))
    segments: List[object] = []
    by_key: Dict[str, object] = {}
    for task in chunk:
        entry = cache.load(
            scenario_spec(task.spec.name, task.spec.n_days, task.spec.seed)
        )
        if entry is None:
            continue
        try:
            segment, descriptor = publish_entry(entry)
        except Exception:  # pragma: no cover - shm exhaustion
            continue
        segments.append(segment)
        by_key[task.key] = descriptor
    return segments, (by_key or None)


def resolve_chunk_size(
    chunk_size: Optional[int], n_workers: int
) -> int:
    """Shard size for the chunked scheduler.

    The default keeps every worker busy for several rounds per chunk
    (amortizing the per-chunk pool spin-up and shm publish) while
    bounding how many trace segments are simultaneously resident in
    shared memory.  Small campaigns stay single-chunk.
    """
    if chunk_size is not None and chunk_size > 0:
        return int(chunk_size)
    return max(4 * n_workers, 8)


def run_campaign(
    specs: Sequence[ScenarioSpec],
    n_jobs: Optional[int] = None,
    cache_dir: "Optional[Union[str, Path]]" = None,
    policy: Optional[RetryPolicy] = None,
    chaos: Optional[WorkerChaos] = None,
    journal_dir: "Optional[Union[str, Path]]" = None,
    chunk_size: Optional[int] = None,
    use_shared_memory: bool = True,
) -> CampaignReport:
    """Run a campaign fault-tolerantly; outcomes in submission order.

    Determinism contract: every worker rebuilds its scenario from the
    spec's own seed (nothing is shared across workers), and outcomes
    are collected in spec order — so the result is identical for any
    ``n_jobs`` and for any interleaving of crashes, retries, and
    resumes; only the ``attempts`` bookkeeping (excluded from
    equality) differs.

    ``policy`` governs retries, backoff, and per-task deadlines;
    ``chaos`` injects seeded worker-level faults (soak testing);
    ``journal_dir`` enables the durable write-ahead log — a rerun
    against the same directory replays completed specs exactly-once
    and executes only the remainder.  ``cache_dir`` enables the
    scenario trace cache as before.

    Pool execution is sharded into chunks of ``chunk_size`` tasks
    (default :func:`resolve_chunk_size`).  With a ``cache_dir`` and
    ``use_shared_memory`` (the default), the parent publishes each
    chunk's cache hits into shared-memory segments once and hands
    workers zero-copy descriptors — traces cross the process boundary
    as ``(shm_name, offsets, shapes, dtypes)`` tuples, never as pickled
    grids — then unlinks the segments when the chunk completes, so peak
    shm residency is bounded by the chunk, not the campaign.  Misses
    simulate worker-side and populate the cache, which later chunks
    pick up.  A spec that fails every retry is
    quarantined: its placeholder outcome (``error`` set, no digest)
    keeps the campaign order, and :attr:`CampaignReport.quarantined`
    surfaces it — a poison spec never discards finished results.
    """
    specs = list(specs)
    policy = policy or RetryPolicy()
    n_jobs = resolve_n_jobs(n_jobs)
    report = CampaignReport()
    journal = (
        CampaignJournal(journal_dir) if journal_dir is not None else None
    )
    keys = [campaign_spec_key(spec) for spec in specs]
    results: "List[Optional[ScenarioOutcome]]" = [None] * len(specs)
    if journal is not None:
        completed = journal.completed_outcomes()
        for index, key in enumerate(keys):
            payload = completed.get(key)
            if payload is None:
                continue
            try:
                results[index] = ScenarioOutcome.from_json_dict(payload)
            except (KeyError, TypeError, ValueError):
                continue  # malformed journal outcome: re-run the spec
            report.n_journal_skips += 1
    tasks = [
        _Task(index=index, spec=spec, key=key)
        for index, (spec, key) in enumerate(zip(specs, keys))
        if results[index] is None
    ]
    try:
        if tasks:
            if n_jobs == 1 or len(tasks) <= 1:
                _execute_inline(
                    tasks, cache_dir, policy, chaos, journal, results, report
                )
            else:
                n_workers = min(n_jobs, len(tasks))
                size = resolve_chunk_size(chunk_size, n_workers)
                for start in range(0, len(tasks), size):
                    chunk = tasks[start : start + size]
                    segments: List[object] = []
                    shm_by_key: "Optional[Dict[str, object]]" = None
                    if use_shared_memory and cache_dir is not None:
                        segments, shm_by_key = _publish_chunk_shm(
                            chunk, cache_dir
                        )
                    try:
                        _execute_pool(
                            chunk,
                            min(n_workers, len(chunk)),
                            cache_dir,
                            policy,
                            chaos,
                            journal,
                            results,
                            report,
                            shm_by_key,
                        )
                    finally:
                        if segments:
                            from .shm import release_segments

                            release_segments(segments)
    finally:
        if journal is not None:
            journal.close()
    report.outcomes = [
        outcome for outcome in results if outcome is not None
    ]
    return report


def run_scenarios_parallel(
    specs: Sequence[ScenarioSpec],
    n_jobs: Optional[int] = None,
    cache_dir: "Optional[Union[str, Path]]" = None,
    policy: Optional[RetryPolicy] = None,
    chaos: Optional[WorkerChaos] = None,
    journal_dir: "Optional[Union[str, Path]]" = None,
    chunk_size: Optional[int] = None,
    use_shared_memory: bool = True,
) -> List[ScenarioOutcome]:
    """Outcome-list view of :func:`run_campaign` (original API).

    Identical semantics — fault-tolerant executor, retries, quarantine,
    optional journal — returning just the outcomes in submission order.
    Use :func:`run_campaign` when the recovery counters matter.
    """
    return run_campaign(
        specs,
        n_jobs=n_jobs,
        cache_dir=cache_dir,
        policy=policy,
        chaos=chaos,
        journal_dir=journal_dir,
        chunk_size=chunk_size,
        use_shared_memory=use_shared_memory,
    ).outcomes
