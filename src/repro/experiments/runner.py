"""Shared plumbing for trace-driven experiment runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.offline_clustering import initial_states_from_trace
from ..config import PipelineConfig
from ..core.pipeline import DetectionPipeline, WindowResult
from ..faults.campaign import CampaignSpec
from ..sensornet.collector import ObservationWindow
from ..traces.gdi import GDITraceConfig, build_environment, generate_gdi_trace
from ..traces.schema import Trace
from ..traces.windows import window_trace_by_samples


def compute_initial_states(
    trace: Trace, config: PipelineConfig, seed: int = 0
) -> np.ndarray:
    """Table 1's initial state estimate: offline k-means on the data."""
    observations = np.vstack([record.vector for record in trace.records])
    return initial_states_from_trace(
        observations, config.n_initial_states, seed=seed
    )


def run_pipeline(
    trace: Trace,
    config: Optional[PipelineConfig] = None,
    initial_states: Optional[Sequence[np.ndarray]] = None,
) -> DetectionPipeline:
    """Feed a full trace through a fresh pipeline and return it."""
    config = config or PipelineConfig()
    pipeline = DetectionPipeline(config, initial_states=initial_states)
    for window in window_trace_by_samples(
        trace, config.window_samples, config.sample_period_minutes
    ):
        pipeline.process_window(window)
    return pipeline


@dataclass
class ScenarioRun:
    """Everything one experiment scenario produced.

    Attributes
    ----------
    name:
        Scenario label.
    trace:
        The (possibly corrupted) delivered trace.
    pipeline:
        The pipeline after consuming the trace.
    campaign:
        The corruption plan, or None for clean runs.
    config:
        Pipeline configuration used.
    trace_config:
        Workload generator configuration used.
    """

    name: str
    trace: Trace
    pipeline: DetectionPipeline
    campaign: Optional[CampaignSpec]
    config: PipelineConfig
    trace_config: GDITraceConfig

    @property
    def ground_truth(self) -> Dict[int, str]:
        """sensor id -> planted corruption kind (empty for clean runs)."""
        return self.campaign.ground_truth() if self.campaign else {}

    def windows(self) -> List[ObservationWindow]:
        """Re-window the trace (for detectors that need raw windows)."""
        return window_trace_by_samples(
            self.trace,
            self.config.window_samples,
            self.config.sample_period_minutes,
        )


def run_scenario(
    name: str,
    campaign: Optional[CampaignSpec] = None,
    trace_config: Optional[GDITraceConfig] = None,
    config: Optional[PipelineConfig] = None,
    initial_states: Optional[Sequence[np.ndarray]] = None,
    use_offline_initial_states: bool = False,
) -> ScenarioRun:
    """Generate a GDI trace (optionally corrupted) and run the pipeline.

    Parameters
    ----------
    name:
        Scenario label for reports.
    campaign:
        Corruption plan; None for a clean run.
    trace_config / config:
        Workload and pipeline configurations (Table 1 defaults).
    initial_states:
        Explicit initial model states.
    use_offline_initial_states:
        When True (and no explicit states given), compute the Table 1
        offline-clustering estimate from the generated trace itself.
    """
    trace_config = trace_config or GDITraceConfig()
    config = config or PipelineConfig()
    environment = build_environment(trace_config)
    injector = campaign.build_injector(environment) if campaign else None
    trace = generate_gdi_trace(trace_config, corruption=injector)
    if initial_states is None and use_offline_initial_states:
        initial_states = compute_initial_states(trace, config)
    pipeline = run_pipeline(trace, config, initial_states=initial_states)
    return ScenarioRun(
        name=name,
        trace=trace,
        pipeline=pipeline,
        campaign=campaign,
        config=config,
        trace_config=trace_config,
    )
