"""Shared plumbing for trace-driven experiment runs.

Besides the serial helpers (:func:`run_pipeline`, :func:`run_scenario`),
this module hosts the parallel fan-out used by the table/figure
reproductions and the fault campaigns: :func:`run_scenarios_parallel`
executes a list of :class:`ScenarioSpec` entries across a
``ProcessPoolExecutor``, one fresh deterministic simulation per worker.
Workers return :class:`ScenarioOutcome` summaries (plain picklable data,
no live pipeline objects — the pipeline holds unpicklable filter
factories) in the exact order the specs were submitted, and every
scenario is rebuilt from its own seed, so results are identical
regardless of ``n_jobs``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.offline_clustering import initial_states_from_trace
from ..config import PipelineConfig
from ..core.pipeline import DetectionPipeline, WindowResult
from ..faults.campaign import CampaignSpec
from ..sensornet.collector import ObservationWindow
from ..traces.gdi import GDITraceConfig, build_environment, generate_gdi_trace
from ..traces.schema import Trace
from ..traces.windows import window_trace_by_samples


def compute_initial_states(
    trace: Trace, config: PipelineConfig, seed: int = 0
) -> np.ndarray:
    """Table 1's initial state estimate: offline k-means on the data."""
    observations = np.vstack([record.vector for record in trace.records])
    return initial_states_from_trace(
        observations, config.n_initial_states, seed=seed
    )


def run_pipeline(
    trace: Trace,
    config: Optional[PipelineConfig] = None,
    initial_states: Optional[Sequence[np.ndarray]] = None,
) -> DetectionPipeline:
    """Feed a full trace through a fresh pipeline and return it."""
    config = config or PipelineConfig()
    pipeline = DetectionPipeline(config, initial_states=initial_states)
    for window in window_trace_by_samples(
        trace, config.window_samples, config.sample_period_minutes
    ):
        pipeline.process_window(window)
    return pipeline


@dataclass
class ScenarioRun:
    """Everything one experiment scenario produced.

    Attributes
    ----------
    name:
        Scenario label.
    trace:
        The (possibly corrupted) delivered trace.
    pipeline:
        The pipeline after consuming the trace.
    campaign:
        The corruption plan, or None for clean runs.
    config:
        Pipeline configuration used.
    trace_config:
        Workload generator configuration used.
    """

    name: str
    trace: Trace
    pipeline: DetectionPipeline
    campaign: Optional[CampaignSpec]
    config: PipelineConfig
    trace_config: GDITraceConfig

    @property
    def ground_truth(self) -> Dict[int, str]:
        """sensor id -> planted corruption kind (empty for clean runs)."""
        return self.campaign.ground_truth() if self.campaign else {}

    def windows(self) -> List[ObservationWindow]:
        """Re-window the trace (for detectors that need raw windows)."""
        return window_trace_by_samples(
            self.trace,
            self.config.window_samples,
            self.config.sample_period_minutes,
        )


def run_scenario(
    name: str,
    campaign: Optional[CampaignSpec] = None,
    trace_config: Optional[GDITraceConfig] = None,
    config: Optional[PipelineConfig] = None,
    initial_states: Optional[Sequence[np.ndarray]] = None,
    use_offline_initial_states: bool = False,
) -> ScenarioRun:
    """Generate a GDI trace (optionally corrupted) and run the pipeline.

    Parameters
    ----------
    name:
        Scenario label for reports.
    campaign:
        Corruption plan; None for a clean run.
    trace_config / config:
        Workload and pipeline configurations (Table 1 defaults).
    initial_states:
        Explicit initial model states.
    use_offline_initial_states:
        When True (and no explicit states given), compute the Table 1
        offline-clustering estimate from the generated trace itself.
    """
    trace_config = trace_config or GDITraceConfig()
    config = config or PipelineConfig()
    environment = build_environment(trace_config)
    injector = campaign.build_injector(environment) if campaign else None
    trace = generate_gdi_trace(trace_config, corruption=injector)
    if initial_states is None and use_offline_initial_states:
        initial_states = compute_initial_states(trace, config)
    pipeline = run_pipeline(trace, config, initial_states=initial_states)
    return ScenarioRun(
        name=name,
        trace=trace,
        pipeline=pipeline,
        campaign=campaign,
        config=config,
        trace_config=trace_config,
    )


# -- parallel fan-out ------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario to run in the parallel fan-out.

    ``name`` must be one of the registered standard scenarios (the same
    vocabulary as ``repro scenario`` / ``cached_scenario``); the builder
    is resolved inside the worker process so the spec itself stays a
    tiny picklable value.
    """

    name: str
    n_days: int = 21
    seed: int = 2003


@dataclass(frozen=True)
class ScenarioOutcome:
    """Picklable summary of one scenario run.

    Everything the experiment tables and the campaign scorers consume,
    without the live pipeline (whose filter bank holds closure factories
    that cannot cross a process boundary).  Two runs of the same spec
    compare equal field-by-field, which is what the determinism tests
    assert across ``n_jobs`` settings.
    """

    name: str
    n_days: int
    seed: int
    n_windows: int
    n_model_states: int
    system_diagnosis: str
    #: sensor id -> (category, anomaly type, confidence)
    sensor_diagnoses: Dict[int, Tuple[str, str, float]]
    ground_truth: Dict[int, str]
    n_raw_alarms: int
    n_tracks: int
    correct_model_labels: Tuple[str, ...]
    #: Content hash of the final pipeline state
    #: (:meth:`DetectionPipeline.digest`); cached and regenerated runs
    #: of the same spec must agree on it.
    digest: str = ""
    #: True when the trace came from the scenario cache rather than a
    #: fresh simulation.  Excluded from equality — a cache-hot rerun
    #: compares equal to its cold original.
    from_cache: bool = field(default=False, compare=False)

    def detected_sensors(self) -> List[int]:
        """Sensors diagnosed with anything (sorted)."""
        return sorted(self.sensor_diagnoses)


def _summarize_pipeline(
    pipeline: DetectionPipeline,
    name: str,
    n_days: int,
    seed: int,
    ground_truth: Dict[int, str],
    from_cache: bool = False,
) -> ScenarioOutcome:
    """Condense a finished pipeline into a :class:`ScenarioOutcome`."""
    diagnoses = {
        sensor_id: (
            diagnosis.category.value,
            diagnosis.anomaly_type.value,
            float(diagnosis.confidence),
        )
        for sensor_id, diagnosis in pipeline.diagnose_all().items()
    }
    model = pipeline.correct_model()
    return ScenarioOutcome(
        name=name,
        n_days=n_days,
        seed=seed,
        n_windows=pipeline.n_windows,
        n_model_states=pipeline.clusterer.n_states if pipeline.clusterer else 0,
        system_diagnosis=pipeline.system_diagnosis().anomaly_type.value,
        sensor_diagnoses=diagnoses,
        ground_truth=dict(ground_truth),
        n_raw_alarms=sum(len(r.raw_alarms) for r in pipeline.results),
        n_tracks=len(pipeline.tracks.tracks),
        correct_model_labels=tuple(model.label(s) for s in model.state_ids),
        digest=pipeline.digest(),
        from_cache=from_cache,
    )


def summarize_run(run: ScenarioRun, spec: Optional[ScenarioSpec] = None) -> ScenarioOutcome:
    """Condense a :class:`ScenarioRun` into a :class:`ScenarioOutcome`."""
    return _summarize_pipeline(
        run.pipeline,
        name=run.name,
        n_days=spec.n_days if spec else run.trace_config.n_days,
        seed=spec.seed if spec else run.trace_config.seed,
        ground_truth=dict(run.ground_truth),
    )


def _run_scenario_spec(
    spec: ScenarioSpec, cache_dir: "Optional[Union[str, Path]]" = None
) -> ScenarioOutcome:
    """Worker entry point: build and summarise one scenario.

    Imported lazily to avoid the runner<->scenarios import cycle; runs
    in the worker process (or inline for ``n_jobs=1``).

    With a ``cache_dir``, a hit loads the stored delivered arrays and
    replays the pipeline over columnar windows — no simulation, no
    campaign rebuild (the planted ground truth travels with the entry).
    The outcome is identical to a fresh run (``from_cache`` aside);
    a miss simulates via the object-path oracle and stores the result.
    """
    from . import _SCENARIO_BUILDERS

    builder = _SCENARIO_BUILDERS.get(spec.name)
    if builder is None:
        raise KeyError(
            f"unknown scenario {spec.name!r}; "
            f"choose from {sorted(_SCENARIO_BUILDERS)}"
        )
    cache = None
    cache_spec = None
    if cache_dir is not None:
        from ..traces.cache import TraceCache, scenario_spec

        cache = TraceCache(Path(cache_dir))
        cache_spec = scenario_spec(spec.name, spec.n_days, spec.seed)
        entry = cache.load(cache_spec)
        if entry is not None:
            from ..sensornet.collector import windows_from_arrays

            config = PipelineConfig()
            pipeline = DetectionPipeline(config)
            for window in windows_from_arrays(
                entry.timestamps,
                entry.sensor_ids,
                entry.values,
                config.window_minutes,
            ):
                pipeline.process_window(window)
            return _summarize_pipeline(
                pipeline,
                name=entry.label or spec.name,
                n_days=spec.n_days,
                seed=spec.seed,
                ground_truth=entry.ground_truth,
                from_cache=True,
            )
    run = builder(n_days=spec.n_days, seed=spec.seed)
    if cache is not None and cache_spec is not None:
        timestamps, sensor_ids, values = run.trace.to_arrays()
        cache.store(
            cache_spec,
            timestamps,
            sensor_ids,
            values,
            attribute_names=run.trace.attribute_names,
            metadata=run.trace.metadata,
            ground_truth=run.ground_truth,
            label=run.name,
        )
    return summarize_run(run, spec)


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` knob: None/0 -> all cores, floor at 1."""
    if n_jobs is None or n_jobs == 0:
        return os.cpu_count() or 1
    return max(1, int(n_jobs))


#: Per-worker state seeded by :func:`_pool_worker_init`.
_WORKER_STATE: Dict[str, object] = {}


def _pool_worker_init() -> None:
    """One-time setup in each pool worker.

    Pre-imports the full experiment stack so spawned workers pay the
    (substantial) import cost once per worker instead of lazily inside
    their first task, and seeds a per-worker RNG for any worker-local
    jitter needs — task results themselves never read it (each scenario
    rebuilds from its spec's own seed, keeping the determinism
    contract).
    """
    import repro.experiments  # noqa: F401  (side effect: warm imports)

    _WORKER_STATE["rng"] = np.random.default_rng((os.getpid(), 0x5EED))


def run_scenarios_parallel(
    specs: Sequence[ScenarioSpec],
    n_jobs: Optional[int] = None,
    cache_dir: "Optional[Union[str, Path]]" = None,
) -> List[ScenarioOutcome]:
    """Run many scenarios across processes; results in submission order.

    Determinism contract: every worker rebuilds its scenario from the
    spec's own seed (nothing is shared across workers), and outcomes are
    collected in spec order — so the returned list is identical for any
    ``n_jobs``, including the serial in-process path.

    ``cache_dir`` enables the scenario trace cache: workers load
    previously generated traces instead of re-simulating (identical
    outcomes either way — the cache-correctness CI job compares the
    digests).  Specs are submitted in chunks so per-task IPC overhead
    does not swallow the parallel speedup on short scenario lists.
    """
    specs = list(specs)
    n_jobs = resolve_n_jobs(n_jobs)
    worker = partial(_run_scenario_spec, cache_dir=cache_dir)
    if n_jobs == 1 or len(specs) <= 1:
        return [worker(spec) for spec in specs]
    n_workers = min(n_jobs, len(specs))
    chunksize = max(1, len(specs) // (n_workers * 4))
    with ProcessPoolExecutor(
        max_workers=n_workers, initializer=_pool_worker_init
    ) as pool:
        return list(pool.map(worker, specs, chunksize=chunksize))
