"""One callable per table of the paper's evaluation (§4).

Every function returns a result object carrying the reproduced matrix
(or parameter list) plus the diagnosis the classifier reached, with a
``render()`` that prints the paper-style labelled table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..analysis.reporting import render_emission_matrix, render_kv, render_table
from ..config import PipelineConfig
from ..core.classification import AnomalyType, Diagnosis
from ..core.online_hmm import EmissionMatrix
from .runner import ScenarioRun
from .scenarios import (
    creation_scenario,
    deletion_scenario,
    faulty_sensors_scenario,
)


# ---------------------------------------------------------------------------
# Table 1 — experimental setup parameters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Result:
    """The Table 1 parameter list for a configuration."""

    rows: Tuple[Tuple[str, str, str], ...]

    def value_of(self, parameter: str) -> str:
        """Look up one parameter's value by symbol."""
        for symbol, _, value in self.rows:
            if symbol == parameter:
                return value
        raise KeyError(parameter)

    def render(self) -> str:
        return render_table(
            ["Parameter", "Description", "Value"],
            self.rows,
            title="Table 1 — experimental setup",
        )


def table1(config: Optional[PipelineConfig] = None) -> Table1Result:
    """Table 1: the experimental parameters (Table 1 defaults)."""
    config = config or PipelineConfig()
    return Table1Result(rows=tuple(config.table1_rows()))


# ---------------------------------------------------------------------------
# Shared helper for the per-sensor matrix tables
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SensorMatricesResult:
    """B^CO and B^CE for one faulty sensor plus its diagnosis."""

    sensor_id: int
    b_co: EmissionMatrix
    b_ce: EmissionMatrix
    diagnosis: Diagnosis
    state_vectors: Dict[int, np.ndarray]
    title_co: str
    title_ce: str

    def render(self) -> str:
        parts = [
            render_emission_matrix(self.b_co, self.state_vectors, self.title_co),
            render_emission_matrix(self.b_ce, self.state_vectors, self.title_ce),
            render_kv(
                {
                    "diagnosis": self.diagnosis.anomaly_type.value,
                    "category": self.diagnosis.category.value,
                    "confidence": f"{self.diagnosis.confidence:.2f}",
                }
            ),
        ]
        return "\n\n".join(parts)


def _sensor_matrices(
    run: ScenarioRun, sensor_id: int, title_co: str, title_ce: str
) -> SensorMatricesResult:
    pipeline = run.pipeline
    track = pipeline.track_for(sensor_id)
    if track is None:
        raise RuntimeError(f"sensor {sensor_id} was never tracked")
    diagnosis = pipeline.diagnose_sensor(sensor_id)
    assert diagnosis is not None
    min_visits = pipeline.config.classifier.min_state_visits
    return SensorMatricesResult(
        sensor_id=sensor_id,
        b_co=pipeline.m_co.emission_matrix(
            min_state_visits=min_visits, min_symbol_visits=min_visits
        ),
        b_ce=track.model.emission_matrix(min_state_visits=min_visits),
        diagnosis=diagnosis,
        state_vectors=pipeline.state_vectors(),
        title_co=title_co,
        title_ce=title_ce,
    )


def table2_3(run: Optional[ScenarioRun] = None) -> SensorMatricesResult:
    """Tables 2 & 3: B^CO / B^CE for faulty sensor 6 → stuck-at."""
    run = run or faulty_sensors_scenario()
    return _sensor_matrices(
        run,
        sensor_id=6,
        title_co="Table 2 — B^CO for faulty sensor 6 (stuck-at-value fault)",
        title_ce="Table 3 — B^CE for faulty sensor 6 (stuck-at-value fault)",
    )


def table4_5(run: Optional[ScenarioRun] = None) -> SensorMatricesResult:
    """Tables 4 & 5: B^CO / B^CE for faulty sensor 7 → calibration."""
    run = run or faulty_sensors_scenario()
    return _sensor_matrices(
        run,
        sensor_id=7,
        title_co="Table 4 — B^CO for faulty sensor 7 (calibration fault)",
        title_ce="Table 5 — B^CE for faulty sensor 7 (calibration fault)",
    )


# ---------------------------------------------------------------------------
# Tables 6 and 7 — the attack B^CO matrices
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AttackMatrixResult:
    """System-level B^CO under an injected attack plus its diagnosis."""

    b_co: EmissionMatrix
    system_diagnosis: Diagnosis
    compromised_sensors: Tuple[int, ...]
    tracked_sensors: Tuple[int, ...]
    state_vectors: Dict[int, np.ndarray]
    title: str

    @property
    def anomaly_type(self) -> AnomalyType:
        """The system-level verdict."""
        return self.system_diagnosis.anomaly_type

    def render(self) -> str:
        evidence = self.system_diagnosis.evidence
        parts = [
            render_emission_matrix(self.b_co, self.state_vectors, self.title),
            render_kv(
                {
                    "system diagnosis": self.anomaly_type.value,
                    "compromised (truth)": list(self.compromised_sensors),
                    "tracked (detected)": list(self.tracked_sensors),
                    "creation pairs": evidence.get("creation_pairs", ()),
                    "deletion pairs": evidence.get("deletion_pairs", ()),
                }
            ),
        ]
        return "\n\n".join(parts)


def _attack_matrix(run: ScenarioRun, title: str) -> AttackMatrixResult:
    pipeline = run.pipeline
    min_visits = pipeline.config.classifier.min_state_visits
    assert run.campaign is not None
    return AttackMatrixResult(
        b_co=pipeline.m_co.emission_matrix(
            min_state_visits=min_visits, min_symbol_visits=min_visits
        ),
        system_diagnosis=pipeline.system_diagnosis(),
        compromised_sensors=tuple(run.campaign.malicious_sensor_ids()),
        tracked_sensors=tuple(
            sorted({t.sensor_id for t in pipeline.tracks.tracks})
        ),
        state_vectors=pipeline.state_vectors(),
        title=title,
    )


def table6(run: Optional[ScenarioRun] = None) -> AttackMatrixResult:
    """Table 6: B^CO under a Dynamic Deletion attack (Fig. 10)."""
    run = run or deletion_scenario()
    return _attack_matrix(
        run, "Table 6 — B^CO under a Dynamic Deletion attack"
    )


def table7(run: Optional[ScenarioRun] = None) -> AttackMatrixResult:
    """Table 7: B^CO under a Dynamic Creation attack (Fig. 11)."""
    run = run or creation_scenario()
    return _attack_matrix(
        run, "Table 7 — B^CO under a Dynamic Creation attack"
    )
