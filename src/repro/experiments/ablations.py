"""Ablation studies over the design choices DESIGN.md calls out.

These go beyond the paper's own evaluation: parameter sweeps, the
majority-assumption breaking point, alarm-filter trade-offs, an overall
classification-accuracy matrix, and a comparison against the baseline
detectors of :mod:`repro.baselines`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.metrics import ConfusionMatrix, false_alarm_rate
from ..analysis.offline_clustering import discretize, initial_states_from_trace
from ..analysis.reporting import render_table
from ..baselines.majority import MajorityVoteDetector
from ..baselines.markov_chain import MarkovChainDetector
from ..baselines.offline_hmm import OfflineHMMDetector
from ..baselines.threshold import RangeThresholdDetector
from ..config import PipelineConfig
from ..core.classification import AnomalyType
from ..faults.attacks import DynamicDeletionAttack
from ..faults.campaign import CampaignSpec, choose_compromised
from ..traces.gdi import GDITraceConfig
from .runner import ScenarioRun, run_scenario
from .scenarios import (
    additive_scenario,
    calibration_scenario,
    change_scenario,
    clean_scenario,
    creation_scenario,
    deletion_scenario,
    mixed_scenario,
    random_noise_scenario,
    reference_states,
    stuck_at_scenario,
)


@dataclass(frozen=True)
class SweepResult:
    """A generic sweep: one row of metrics per parameter value."""

    parameter: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]
    title: str

    def column(self, name: str) -> List[object]:
        """Extract one metric column by header name."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        return render_table(self.headers, self.rows, title=self.title)


def window_size_sweep(
    sizes: Sequence[int] = (6, 12, 24, 48), n_days: int = 10, seed: int = 2003
) -> SweepResult:
    """A1: how the window size w trades alarm noise for time resolution."""
    rows = []
    for size in sizes:
        config = PipelineConfig(window_samples=size)
        run = clean_scenario(n_days=n_days, seed=seed, config=config)
        rate = false_alarm_rate(run.pipeline, corrupted_sensors=[])
        rows.append(
            (
                size,
                f"{size * 5} min",
                run.pipeline.clusterer.n_states,
                f"{100 * rate:.2f}%",
                run.pipeline.tracks.n_tracks,
            )
        )
    return SweepResult(
        parameter="w",
        headers=("w (samples)", "duration", "model states", "false alarms", "tracks"),
        rows=tuple(rows),
        title="Ablation A1 — observation window size sweep (clean data)",
    )


def learning_factor_sweep(
    alphas: Sequence[float] = (0.02, 0.05, 0.10, 0.25, 0.5),
    n_days: int = 10,
    seed: int = 2003,
) -> SweepResult:
    """A2: the clustering learning factor α (Eq. 6) on clean data."""
    rows = []
    for alpha in alphas:
        config = PipelineConfig(alpha=alpha)
        run = clean_scenario(n_days=n_days, seed=seed, config=config)
        rate = false_alarm_rate(run.pipeline, corrupted_sensors=[])
        rows.append(
            (
                f"{alpha:.2f}",
                run.pipeline.clusterer.n_states,
                f"{100 * rate:.2f}%",
                run.pipeline.tracks.n_tracks,
            )
        )
    return SweepResult(
        parameter="alpha",
        headers=("alpha", "model states", "false alarms", "tracks"),
        rows=tuple(rows),
        title="Ablation A2 — model-state learning factor sweep (clean data)",
    )


def compromised_fraction_sweep(
    fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6),
    n_days: int = 14,
    seed: int = 2003,
) -> SweepResult:
    """A3: the majority assumption's breaking point under deletion.

    The paper assumes "a majority of sensors have not been compromised";
    this sweep raises the compromised fraction until the deletion attack
    stops being classified (the adversary *wins* the majority and the
    deleted view becomes the correct view).
    """
    anchors = reference_states(seed=seed)
    deleted = tuple(anchors[-1])
    hold = tuple(anchors[-2])
    rows = []
    for fraction in fractions:
        compromised = choose_compromised(range(10), fraction, seed=seed)
        campaign = CampaignSpec(name=f"deletion-{fraction:.1f}")
        campaign.plant(
            DynamicDeletionAttack(
                deleted_state=deleted,
                hold_state=hold,
                radius=10.0,
                fraction=max(len(compromised) / 10.0, 0.05),
            ),
            compromised,
        )
        run = run_scenario(
            name=campaign.name,
            campaign=campaign,
            trace_config=GDITraceConfig(n_days=n_days, seed=seed),
        )
        verdict = run.pipeline.system_diagnosis().anomaly_type
        rows.append(
            (
                f"{fraction:.1f}",
                len(compromised),
                verdict.value,
                len({t.sensor_id for t in run.pipeline.tracks.tracks}),
            )
        )
    return SweepResult(
        parameter="compromised fraction",
        headers=("fraction", "n compromised", "system verdict", "sensors tracked"),
        rows=tuple(rows),
        title="Ablation A3 — compromised-fraction sweep (deletion attack)",
    )


def filter_comparison(
    n_days: int = 14, seed: int = 2003
) -> SweepResult:
    """A4: k-of-n vs SPRT vs CUSUM on the stuck-at scenario."""
    rows = []
    onset_minutes = 2 * 24 * 60.0
    for kind in ("k_of_n", "sprt", "cusum"):
        config = PipelineConfig(filter_kind=kind)
        run = stuck_at_scenario(n_days=n_days, seed=seed, config=config)
        pipeline = run.pipeline
        tracks = pipeline.tracks.tracks_for_sensor(6)
        onset_window = int(onset_minutes // config.window_minutes) + 1
        latency = (
            tracks[0].opened_window - onset_window if tracks else None
        )
        healthy_tracked = sorted(
            {t.sensor_id for t in pipeline.tracks.tracks} - {6}
        )
        rows.append(
            (
                kind,
                "yes" if tracks else "NO",
                latency if latency is not None else "-",
                len(healthy_tracked),
            )
        )
    return SweepResult(
        parameter="filter",
        headers=("filter", "detected", "latency (windows)", "healthy sensors tracked"),
        rows=tuple(rows),
        title="Ablation A4 — alarm filter comparison (stuck-at sensor 6)",
    )


#: Ground-truth kind -> the diagnosis label considered correct in A5.
#: ``drift`` saturates into a stuck state (the paper's own sensor 6),
#: and ``random_noise`` is unclassifiable by design (§3.4).
A5_EQUIVALENCES: Dict[str, str] = {
    "drift": "stuck_at",
    "random_noise": "none",
}


def classification_matrix(
    n_days: int = 14, seed: int = 2003
) -> "tuple[ConfusionMatrix, SweepResult]":
    """A5: the full fault/attack classification accuracy matrix."""
    matrix = ConfusionMatrix()
    scenario_builders: List[Callable[[], ScenarioRun]] = [
        lambda: stuck_at_scenario(n_days=n_days, seed=seed),
        lambda: calibration_scenario(n_days=n_days, seed=seed),
        lambda: additive_scenario(n_days=n_days, seed=seed),
        lambda: random_noise_scenario(n_days=n_days, seed=seed),
        lambda: deletion_scenario(n_days=n_days, seed=seed),
        lambda: creation_scenario(n_days=n_days, seed=seed),
        lambda: change_scenario(n_days=n_days, seed=seed),
        lambda: mixed_scenario(n_days=n_days, seed=seed),
    ]
    rows = []
    for build in scenario_builders:
        run = build()
        diagnoses = run.pipeline.diagnose_all()
        truth = run.ground_truth
        matrix.record_diagnoses(truth, diagnoses)
        expected = next(iter(truth.values()))
        got = sorted({d.anomaly_type.value for d in diagnoses.values()})
        rows.append((run.name, expected, ", ".join(got) or "none"))
    sweep = SweepResult(
        parameter="scenario",
        headers=("scenario", "ground truth", "diagnoses"),
        rows=tuple(rows),
        title="Ablation A5 — classification outcomes per scenario",
    )
    return matrix, sweep


def baseline_comparison(
    n_days: int = 14, seed: int = 2003
) -> SweepResult:
    """A6: the paper's method vs range / majority / chain / HMM baselines.

    The expected shape: range checking misses the in-range attacks
    entirely; majority voting detects the culprit sensors but assigns no
    type; the trained Markov-chain and offline-HMM detectors notice the
    attacks as anomalies but cannot localise or type them; the paper's
    method detects *and* types.
    """
    clean = clean_scenario(n_days=n_days, seed=seed)
    centers = initial_states_from_trace(
        np.vstack([r.vector for r in clean.trace.records]), 6, seed=seed
    )
    clean_seq = _observable_sequence(clean, centers)

    chain = MarkovChainDetector(n_states=len(centers))
    chain.train(clean_seq)
    chain.calibrate_threshold(clean_seq)

    hmm = OfflineHMMDetector(n_hidden=4, n_symbols=len(centers), seed=seed)
    hmm.train([clean_seq])
    hmm.calibrate_threshold(clean_seq)

    scenarios = [
        ("stuck-at", stuck_at_scenario(n_days=n_days, seed=seed)),
        ("deletion", deletion_scenario(n_days=n_days, seed=seed)),
        ("creation", creation_scenario(n_days=n_days, seed=seed)),
    ]
    rows = []
    for label, run in scenarios:
        messages = run.trace.to_messages()
        threshold = RangeThresholdDetector()
        threshold.check_all(messages)
        majority = MajorityVoteDetector()
        majority.process_windows(run.windows())
        sequence = _observable_sequence(run, centers)
        chain_rate = chain.detection_rate(sequence)
        hmm_rate = hmm.detection_rate(sequence)
        ours = sorted(
            {
                d.anomaly_type.value
                for d in run.pipeline.diagnose_all().values()
            }
        )
        rows.append(
            (
                label,
                "flags " + str(threshold.flagged_sensors())
                if threshold.alarms
                else "blind",
                "flags " + str(majority.flagged_sensors()),
                f"{100 * chain_rate:.0f}% windows",
                f"{100 * hmm_rate:.0f}% windows",
                ", ".join(ours) or "none",
            )
        )
    return SweepResult(
        parameter="scenario",
        headers=(
            "scenario",
            "range check",
            "majority vote",
            "markov chain",
            "offline HMM",
            "this paper (typed)",
        ),
        rows=tuple(rows),
        title="Ablation A6 — baseline comparison",
    )


def _observable_sequence(run: ScenarioRun, centers: np.ndarray) -> np.ndarray:
    """Discretised per-window observable-mean sequence for the baselines."""
    means = []
    for window in run.windows():
        if not window.is_empty:
            means.append(window.overall_mean())
    if not means:
        raise ValueError("scenario produced no non-empty windows")
    return discretize(np.vstack(means), centers)


def dynamic_change_study(
    n_days: int = 14, seed: int = 2003
) -> SweepResult:
    """A7: the left branch of Fig. 5 — dynamic change classification."""
    run = change_scenario(n_days=n_days, seed=seed)
    diagnosis = run.pipeline.system_diagnosis()
    changed = diagnosis.evidence.get("changed_pairs", ())
    state_vectors = run.pipeline.state_vectors()
    rows = []
    for state_id, symbol_id in changed:
        correct = state_vectors.get(state_id)
        observed = state_vectors.get(symbol_id)
        if correct is None or observed is None:
            continue
        displacement = np.asarray(correct) - np.asarray(observed)
        rows.append(
            (
                "(%s)" % ",".join(f"{x:.0f}" for x in correct),
                "(%s)" % ",".join(f"{x:.0f}" for x in observed),
                "(%s)" % ",".join(f"{x:+.1f}" for x in displacement),
            )
        )
    return SweepResult(
        parameter="pair",
        headers=("correct state", "observable state", "displacement"),
        rows=tuple(rows),
        title=(
            "Ablation A7 — dynamic change pairs "
            f"(system verdict: {diagnosis.anomaly_type.value})"
        ),
    )


def estimator_comparison(
    n_days: int = 10, seed: int = 2003
) -> SweepResult:
    """A9: the paper's redundancy trick vs general online EM ([10]).

    The paper's §2 argument: classical HMM identification is slow and
    its hidden states lack physical meaning, while exploiting sensor
    redundancy makes the hidden state *observable* and estimation
    trivial.  This ablation estimates the clean deployment's M_CO both
    ways and scores how well each recovers the ground-truth one-to-one
    correct-to-observable correspondence (diagonal mass of B).
    """
    from ..core.online_hmm import OnlineHMM
    from ..hmm.online_em import OnlineEMEstimator

    run = clean_scenario(n_days=n_days, seed=seed)
    pipeline = run.pipeline
    correct = pipeline.clusterer.states.resolve_batch(pipeline.correct_sequence)
    observable = pipeline.clusterer.states.resolve_batch(
        pipeline.observable_sequence
    )
    alphabet = sorted(set(correct) | set(observable))
    index = {s: k for k, s in enumerate(alphabet)}
    n = len(alphabet)

    # The paper's estimator, replayed on the same window stream.
    paper = OnlineHMM(transition_innovation=0.1, emission_innovation=0.1)
    for c, o in zip(correct, observable):
        paper.observe(c, o)
    emission = paper.emission_matrix()
    paper_diag = float(
        np.mean(
            [
                emission.matrix[
                    emission.state_ids.index(s), emission.symbol_ids.index(s)
                ]
                for s in alphabet
                if s in emission.state_ids and s in emission.symbol_ids
            ]
        )
    )

    # General online EM sees only the observable symbols.
    general = OnlineEMEstimator(
        n_states=n, n_symbols=n, step_size=0.05, seed=seed
    )
    general.observe_sequence([index[o] for o in observable])
    general_b = general.current_model().emission
    # Best-case assignment of anonymous states to symbols: for each
    # hidden state take its dominant symbol mass (no identifiability,
    # so we score it as generously as possible).
    general_diag = float(np.mean(general_b.max(axis=1)))

    rows = [
        (
            "paper (redundancy-aware)",
            len(correct),
            f"{paper_diag:.3f}",
            "yes — states are cluster states",
        ),
        (
            "general online EM [10]",
            len(observable),
            f"{general_diag:.3f}",
            "no — anonymous hidden states",
        ),
    ]
    return SweepResult(
        parameter="estimator",
        headers=(
            "estimator",
            "updates",
            "mean dominant/diagonal B mass",
            "physically interpretable",
        ),
        rows=tuple(rows),
        title="Ablation A9 — paper's estimator vs general online EM",
    )
