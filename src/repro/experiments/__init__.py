"""Experiment harness: one callable per paper table/figure + ablations.

The per-artefact index lives in DESIGN.md §4.  Heavy scenario runs are
memoised per-process via :func:`cached_scenario` so that a benchmark
session reuses one simulation across the artefacts it feeds.
"""

from functools import lru_cache
from typing import Callable

from .ablations import (
    A5_EQUIVALENCES,
    SweepResult,
    baseline_comparison,
    classification_matrix,
    compromised_fraction_sweep,
    dynamic_change_study,
    estimator_comparison,
    filter_comparison,
    learning_factor_sweep,
    window_size_sweep,
)
from .figures import (
    Figure6Result,
    Figure7Result,
    Figure8Result,
    Figure9Result,
    Figure12Result,
    figure6,
    figure7,
    figure8,
    figure9,
    figure12,
)
from .journal import CampaignJournal
from .retry import RetryPolicy, TaskError
from .runner import (
    CampaignReport,
    ScenarioOutcome,
    ScenarioRun,
    ScenarioSpec,
    campaign_spec_key,
    compute_initial_states,
    run_campaign,
    run_fleet,
    run_pipeline,
    run_scenario,
    run_scenarios_parallel,
    summarize_run,
)
from .scenarios import (
    additive_scenario,
    calibration_scenario,
    change_scenario,
    clean_scenario,
    creation_scenario,
    deletion_scenario,
    faulty_sensors_scenario,
    mixed_scenario,
    random_noise_scenario,
    reference_states,
    stuck_at_scenario,
)
from .tables import (
    AttackMatrixResult,
    SensorMatricesResult,
    Table1Result,
    table1,
    table2_3,
    table4_5,
    table6,
    table7,
)

_SCENARIO_BUILDERS = {
    "clean": clean_scenario,
    "faulty": faulty_sensors_scenario,
    "stuck_at": stuck_at_scenario,
    "calibration": calibration_scenario,
    "additive": additive_scenario,
    "random_noise": random_noise_scenario,
    "deletion": deletion_scenario,
    "creation": creation_scenario,
    "change": change_scenario,
    "mixed": mixed_scenario,
}


@lru_cache(maxsize=32)
def cached_scenario(name: str, n_days: int = 21, seed: int = 2003) -> ScenarioRun:
    """Memoised standard scenario run (for benchmark/test reuse)."""
    builder = _SCENARIO_BUILDERS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {sorted(_SCENARIO_BUILDERS)}"
        )
    return builder(n_days=n_days, seed=seed)


__all__ = [
    "A5_EQUIVALENCES",
    "AttackMatrixResult",
    "CampaignJournal",
    "CampaignReport",
    "Figure12Result",
    "Figure6Result",
    "Figure7Result",
    "Figure8Result",
    "Figure9Result",
    "RetryPolicy",
    "ScenarioOutcome",
    "ScenarioRun",
    "ScenarioSpec",
    "SensorMatricesResult",
    "SweepResult",
    "Table1Result",
    "TaskError",
    "additive_scenario",
    "baseline_comparison",
    "cached_scenario",
    "calibration_scenario",
    "campaign_spec_key",
    "change_scenario",
    "classification_matrix",
    "clean_scenario",
    "compromised_fraction_sweep",
    "compute_initial_states",
    "creation_scenario",
    "deletion_scenario",
    "dynamic_change_study",
    "estimator_comparison",
    "faulty_sensors_scenario",
    "figure12",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "filter_comparison",
    "learning_factor_sweep",
    "mixed_scenario",
    "random_noise_scenario",
    "reference_states",
    "run_campaign",
    "run_fleet",
    "run_pipeline",
    "run_scenario",
    "run_scenarios_parallel",
    "stuck_at_scenario",
    "summarize_run",
    "table1",
    "table2_3",
    "table4_5",
    "table6",
    "table7",
    "window_size_sweep",
]
