"""Standard experiment scenarios (the paper's §4 conditions).

Each builder returns a ready :class:`~repro.experiments.runner.ScenarioRun`:

* :func:`clean_scenario` — the error/attack-free month.
* :func:`faulty_sensors_scenario` — §4.1's naturally faulty sensors:
  sensor 6 decaying toward a stuck (15, 1) state with degraded packet
  delivery (Fig. 8 left), sensor 7 mis-calibrated ~16 % high in humidity
  and ~24 % low in temperature ratio terms (Fig. 8 right, Tables 4-5).
* :func:`deletion_scenario` / :func:`creation_scenario` /
  :func:`change_scenario` / :func:`mixed_scenario` — §4.2's injected
  attacks with one third of the sensors compromised.  Attack anchor
  states are derived from a clean *reference run*, mirroring the paper,
  which chose its attack targets knowing the real GDI states.

All builders are deterministic given their seeds.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..config import PipelineConfig
from ..faults.attacks import (
    DynamicChangeAttack,
    DynamicCreationAttack,
    DynamicDeletionAttack,
    MixedAttack,
)
from ..faults.base import ActivationSchedule
from ..faults.campaign import CampaignSpec, choose_compromised
from ..faults.errors import (
    AdditiveFault,
    CalibrationFault,
    DriftFault,
    PacketDropper,
    RandomNoiseFault,
    StuckAtFault,
)
from ..traces.gdi import GDITraceConfig
from .runner import ScenarioRun, run_scenario

#: Day at which the paper-style fault scenarios switch their faults on.
DEFAULT_ONSET_DAYS = 2.0

#: The fraction of sensors the §4.2 attack scenarios compromise.
ATTACK_FRACTION = 1.0 / 3.0


def _onset(days: float) -> ActivationSchedule:
    return ActivationSchedule(start_minutes=days * 24 * 60.0)


def clean_scenario(
    n_days: int = 31, seed: int = 2003, config: Optional[PipelineConfig] = None
) -> ScenarioRun:
    """The error/attack-free GDI month."""
    return run_scenario(
        name="clean",
        trace_config=GDITraceConfig(n_days=n_days, seed=seed),
        config=config,
    )


def reference_states(
    n_days: int = 7, seed: int = 2003, config: Optional[PipelineConfig] = None
) -> List[np.ndarray]:
    """Main environment states from a clean reference run, coldest first.

    Used to anchor attack parameters the way the paper anchored its
    injections on the known GDI states (e.g. deleting (29,56) while
    holding (20,71)).
    """
    run = clean_scenario(n_days=n_days, seed=seed, config=config)
    model = run.pipeline.correct_model(prune=True)
    vectors = [model.state_vectors[s] for s in model.state_ids]
    vectors.sort(key=lambda v: float(v[0]))
    return vectors


def faulty_sensors_scenario(
    n_days: int = 31,
    seed: int = 2003,
    onset_days: float = DEFAULT_ONSET_DAYS,
    config: Optional[PipelineConfig] = None,
) -> ScenarioRun:
    """§4.1: sensors 6 and 7 are consistently faulty.

    Sensor 6 drifts toward the stuck state (15, 1) over roughly a week —
    reproducing Fig. 8's continuously decreasing humidity — while its
    degrading radio drops more packets; by the end of the month its
    ``M_CE`` carries the stuck-at signature (Tables 2-3).  Sensor 7 has
    a calibration error (Tables 4-5).
    """
    campaign = CampaignSpec(name="faulty-sensors-6-7")
    campaign.plant(
        PacketDropper(
            inner=DriftFault(terminal=(15.0, 1.0), ramp_minutes=7 * 24 * 60.0),
            drop_probability=0.5,
            seed=seed + 6,
        ),
        [6],
        _onset(onset_days),
    )
    campaign.plant(CalibrationFault(), [7], _onset(onset_days))
    return run_scenario(
        name="faulty-sensors-6-7",
        campaign=campaign,
        trace_config=GDITraceConfig(n_days=n_days, seed=seed),
        config=config,
    )


def stuck_at_scenario(
    n_days: int = 21,
    seed: int = 2003,
    sensor_id: int = 6,
    stuck_value: Tuple[float, float] = (15.0, 1.0),
    onset_days: float = DEFAULT_ONSET_DAYS,
    config: Optional[PipelineConfig] = None,
) -> ScenarioRun:
    """A single sensor stuck at a fixed value (degraded delivery)."""
    campaign = CampaignSpec(name="stuck-at")
    campaign.plant(
        PacketDropper(
            inner=StuckAtFault(value=stuck_value),
            drop_probability=0.5,
            seed=seed + sensor_id,
        ),
        [sensor_id],
        _onset(onset_days),
    )
    return run_scenario(
        name="stuck-at",
        campaign=campaign,
        trace_config=GDITraceConfig(n_days=n_days, seed=seed),
        config=config,
    )


def calibration_scenario(
    n_days: int = 21,
    seed: int = 2003,
    sensor_id: int = 7,
    gains: Tuple[float, float] = (1.0 / 1.24, 1.16),
    onset_days: float = DEFAULT_ONSET_DAYS,
    config: Optional[PipelineConfig] = None,
) -> ScenarioRun:
    """A single sensor with a multiplicative calibration error."""
    campaign = CampaignSpec(name="calibration")
    campaign.plant(CalibrationFault(gains=gains), [sensor_id], _onset(onset_days))
    return run_scenario(
        name="calibration",
        campaign=campaign,
        trace_config=GDITraceConfig(n_days=n_days, seed=seed),
        config=config,
    )


def additive_scenario(
    n_days: int = 21,
    seed: int = 2003,
    sensor_id: int = 3,
    offsets: Tuple[float, float] = (6.0, 12.0),
    onset_days: float = DEFAULT_ONSET_DAYS,
    config: Optional[PipelineConfig] = None,
) -> ScenarioRun:
    """A single sensor with a constant additive offset."""
    campaign = CampaignSpec(name="additive")
    campaign.plant(AdditiveFault(offsets=offsets), [sensor_id], _onset(onset_days))
    return run_scenario(
        name="additive",
        campaign=campaign,
        trace_config=GDITraceConfig(n_days=n_days, seed=seed),
        config=config,
    )


def random_noise_scenario(
    n_days: int = 21,
    seed: int = 2003,
    sensor_id: int = 4,
    noise_std: float = 8.0,
    onset_days: float = DEFAULT_ONSET_DAYS,
    config: Optional[PipelineConfig] = None,
) -> ScenarioRun:
    """A single sensor with high-variance zero-mean noise.

    The paper predicts this fault is typically reported as error-free
    under its estimation model.
    """
    campaign = CampaignSpec(name="random-noise")
    campaign.plant(
        RandomNoiseFault(noise_std=noise_std, seed=seed + sensor_id),
        [sensor_id],
        _onset(onset_days),
    )
    return run_scenario(
        name="random-noise",
        campaign=campaign,
        trace_config=GDITraceConfig(n_days=n_days, seed=seed),
        config=config,
    )


def _compromised(seed: int, n_sensors: int = 10) -> List[int]:
    return choose_compromised(range(n_sensors), ATTACK_FRACTION, seed=seed)


def deletion_scenario(
    n_days: int = 21,
    seed: int = 2003,
    config: Optional[PipelineConfig] = None,
) -> ScenarioRun:
    """§4.2 Dynamic Deletion: hide the hottest state of the day.

    One third of the sensors report lower temperatures whenever the
    environment enters its hottest state, holding the observable state
    at the preceding (milder) state — the Fig. 10 / Table 6 condition.
    """
    anchors = reference_states(seed=seed, config=config)
    deleted = tuple(anchors[-1])
    hold = tuple(anchors[-2]) if len(anchors) >= 2 else tuple(anchors[-1])
    compromised = _compromised(seed)
    campaign = CampaignSpec(name="dynamic-deletion")
    campaign.plant(
        DynamicDeletionAttack(
            deleted_state=deleted,
            hold_state=hold,
            radius=10.0,
            fraction=len(compromised) / 10.0,
        ),
        compromised,
    )
    return run_scenario(
        name="dynamic-deletion",
        campaign=campaign,
        trace_config=GDITraceConfig(n_days=n_days, seed=seed),
        config=config,
    )


def creation_scenario(
    n_days: int = 21,
    seed: int = 2003,
    config: Optional[PipelineConfig] = None,
) -> ScenarioRun:
    """§4.2 Dynamic Creation: inject a spurious warm/dry state at night.

    While the island sits in its coldest, most humid state, one third of
    the sensors periodically inject warm/dry values, making the network
    observe an alternation with a state that does not exist — the
    Fig. 11 / Table 7 condition.
    """
    anchors = reference_states(seed=seed, config=config)
    night = np.asarray(anchors[0])
    # Off-manifold target: same temperature, much drier air.
    target = (float(night[0] + 2.0), float(max(night[1] - 38.0, 5.0)))
    compromised = _compromised(seed)
    campaign = CampaignSpec(name="dynamic-creation")
    campaign.plant(
        DynamicCreationAttack(
            trigger=tuple(night),
            trigger_radius=10.0,
            target=target,
            fraction=len(compromised) / 10.0,
        ),
        compromised,
    )
    return run_scenario(
        name="dynamic-creation",
        campaign=campaign,
        trace_config=GDITraceConfig(n_days=n_days, seed=seed),
        config=config,
    )


def change_scenario(
    n_days: int = 21,
    seed: int = 2003,
    config: Optional[PipelineConfig] = None,
) -> ScenarioRun:
    """§3.3 Dynamic Change: remap every state's attributes one-to-one.

    The compromised third pulls each real state to an off-manifold image
    (colder and drier by a fixed offset), leaving the temporal structure
    intact — the left branch of Fig. 5.
    """
    anchors = reference_states(seed=seed, config=config)
    mapping = tuple(
        (
            tuple(float(x) for x in anchor),
            (float(anchor[0] - 8.0), float(max(anchor[1] - 12.0, 0.0))),
        )
        for anchor in anchors
    )
    compromised = _compromised(seed)
    campaign = CampaignSpec(name="dynamic-change")
    campaign.plant(
        DynamicChangeAttack(mapping=mapping, fraction=len(compromised) / 10.0),
        compromised,
    )
    return run_scenario(
        name="dynamic-change",
        campaign=campaign,
        trace_config=GDITraceConfig(n_days=n_days, seed=seed),
        config=config,
    )


def mixed_scenario(
    n_days: int = 21,
    seed: int = 2003,
    config: Optional[PipelineConfig] = None,
) -> ScenarioRun:
    """§3.3 Mixed: a creation and a deletion mounted together."""
    anchors = reference_states(seed=seed, config=config)
    night = np.asarray(anchors[0])
    target = (float(night[0] + 2.0), float(max(night[1] - 38.0, 5.0)))
    deleted = tuple(anchors[-1])
    hold = tuple(anchors[-2]) if len(anchors) >= 2 else tuple(anchors[-1])
    compromised = _compromised(seed)
    fraction = len(compromised) / 10.0
    campaign = CampaignSpec(name="mixed-attack")
    campaign.plant(
        MixedAttack(
            components=(
                DynamicCreationAttack(
                    trigger=tuple(night),
                    trigger_radius=10.0,
                    target=target,
                    fraction=fraction,
                ),
                DynamicDeletionAttack(
                    deleted_state=deleted,
                    hold_state=hold,
                    radius=10.0,
                    fraction=fraction,
                ),
            )
        ),
        compromised,
    )
    return run_scenario(
        name="mixed-attack",
        campaign=campaign,
        trace_config=GDITraceConfig(n_days=n_days, seed=seed),
        config=config,
    )
