"""Zero-copy shared-memory trace transport for campaign workers.

The campaign parent publishes each cached trace's delivered arrays into
one ``multiprocessing.shared_memory`` segment and hands workers only a
tiny picklable :class:`ShmTraceDescriptor` — ``(shm_name, offsets,
shapes, dtypes)`` plus the entry's provenance.  Workers attach the
segment and rebuild read-only ``np.frombuffer`` views straight into the
shared pages: no per-task pickling of ``(T, S, d)`` grids, no
per-worker materialization, and every worker on the host shares one
physical copy of each trace.

Lifecycle: the parent owns the segments — it creates them per schedule
chunk and unlinks them once the chunk completes.  Workers only ever
attach; their attachments are cached per process and die with the
worker (the pool is torn down at chunk end), at which point the kernel
reclaims the unlinked pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np
from multiprocessing import shared_memory

from ..traces.cache import CachedTrace


@dataclass(frozen=True)
class ShmArraySpec:
    """Location of one array inside a shared segment."""

    key: str
    offset: int
    shape: Tuple[int, ...]
    #: ``np.dtype.str`` — endianness-qualified, round-trips exactly.
    dtype: str


@dataclass(frozen=True)
class ShmTraceDescriptor:
    """Everything a worker needs to rebuild a :class:`CachedTrace`.

    Small and picklable by construction: names, offsets, and
    provenance — never the arrays themselves.
    """

    shm_name: str
    arrays: Tuple[ShmArraySpec, ...]
    attribute_names: Tuple[str, ...]
    metadata: Dict[str, float]
    ground_truth: Dict[int, str]
    label: str


def publish_entry(
    entry: CachedTrace,
) -> "Tuple[shared_memory.SharedMemory, ShmTraceDescriptor]":
    """Copy one cache entry into a fresh shared segment (parent side).

    The single copy here replaces one materialization *per task per
    worker*; the caller owns the returned segment and must ``close()``
    and ``unlink()`` it when its schedule chunk completes.
    """
    members = (
        ("timestamps", np.ascontiguousarray(entry.timestamps)),
        ("sensor_ids", np.ascontiguousarray(entry.sensor_ids)),
        ("values", np.ascontiguousarray(entry.values)),
    )
    total = sum(array.nbytes for _, array in members)
    segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
    specs = []
    offset = 0
    for key, array in members:
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf, offset=offset
        )
        view[...] = array
        specs.append(
            ShmArraySpec(
                key=key,
                offset=offset,
                shape=tuple(int(x) for x in array.shape),
                dtype=array.dtype.str,
            )
        )
        offset += array.nbytes
    descriptor = ShmTraceDescriptor(
        shm_name=segment.name,
        arrays=tuple(specs),
        attribute_names=tuple(entry.attribute_names),
        metadata=dict(entry.metadata),
        ground_truth=dict(entry.ground_truth),
        label=entry.label,
    )
    return segment, descriptor


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting its lifetime.

    Python ≤ 3.12 registers every attach with the ``resource_tracker``
    (bpo-38119).  Pool workers share the *parent's* tracker — both fork
    and spawn hand the tracker fd down — so that register is just an
    idempotent set-add and the parent's ``unlink()`` performs the one
    real unregister.  Calling ``unregister`` here would strip the
    parent's registration out from under it (the tracker cache is
    shared), so the attach is left exactly as-is.
    """
    return shared_memory.SharedMemory(name=name, create=False)


#: Per-process attachment cache: segment name -> SharedMemory.  Workers
#: re-attach the same trace for retries/neighbouring tasks for free,
#: and the maps die with the worker process at pool shutdown.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def attach_entry(descriptor: ShmTraceDescriptor) -> CachedTrace:
    """Rebuild a read-only :class:`CachedTrace` over shared pages.

    Every array is a zero-copy ``np.frombuffer`` view into the mapped
    segment; nothing is materialized worker-side.
    """
    segment = _ATTACHED.get(descriptor.shm_name)
    if segment is None:
        segment = _attach_segment(descriptor.shm_name)
        _ATTACHED[descriptor.shm_name] = segment
    arrays: Dict[str, np.ndarray] = {}
    for spec in descriptor.arrays:
        dtype = np.dtype(spec.dtype)
        count = 1
        for extent in spec.shape:
            count *= int(extent)
        array = np.frombuffer(
            segment.buf, dtype=dtype, count=count, offset=spec.offset
        ).reshape(spec.shape)
        array.flags.writeable = False
        arrays[spec.key] = array
    return CachedTrace(
        timestamps=arrays["timestamps"],
        sensor_ids=arrays["sensor_ids"],
        values=arrays["values"],
        attribute_names=tuple(descriptor.attribute_names),
        metadata=dict(descriptor.metadata),
        ground_truth=dict(descriptor.ground_truth),
        label=descriptor.label,
    )


def release_segments(segments) -> None:
    """Close and unlink parent-owned segments (chunk teardown)."""
    for segment in segments:
        try:
            segment.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        try:
            segment.unlink()
        except Exception:  # pragma: no cover - already unlinked
            pass
