"""One callable per figure of the paper's evaluation (§4).

Each function runs (or accepts) the relevant scenario and returns a
result object whose ``render()`` produces the plain-text equivalent of
the figure; the benchmark harness prints these so the run output can be
read against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.reporting import (
    render_alarm_series,
    render_emission_matrix,
    render_kv,
    render_markov_model,
    render_table,
)
from ..core.markov import MarkovModel
from ..core.online_hmm import EmissionMatrix
from .runner import ScenarioRun
from .scenarios import clean_scenario, faulty_sensors_scenario


# ---------------------------------------------------------------------------
# Figure 6 — humidity and temperature variation for one day
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure6Result:
    """Hourly temperature/humidity profile of one deployment day."""

    day_index: int
    hours: Tuple[int, ...]
    temperature: Tuple[float, ...]
    humidity: Tuple[float, ...]

    @property
    def temperature_range(self) -> Tuple[float, float]:
        """(min, max) hourly temperature."""
        return (min(self.temperature), max(self.temperature))

    @property
    def humidity_range(self) -> Tuple[float, float]:
        """(min, max) hourly humidity."""
        return (min(self.humidity), max(self.humidity))

    def anticorrelation(self) -> float:
        """Pearson correlation between temperature and humidity."""
        return float(np.corrcoef(self.temperature, self.humidity)[0, 1])

    def render(self) -> str:
        rows = [
            (h, f"{t:.1f}", f"{rh:.1f}")
            for h, t, rh in zip(self.hours, self.temperature, self.humidity)
        ]
        table = render_table(
            ["hour", "temp °C", "humidity %"],
            rows,
            title=f"Figure 6 — diurnal variation, day {self.day_index + 1}",
        )
        stats = render_kv(
            {
                "temp range": "%.1f..%.1f" % self.temperature_range,
                "humidity range": "%.1f..%.1f" % self.humidity_range,
                "correlation": f"{self.anticorrelation():.2f}",
            }
        )
        return f"{table}\n{stats}"


def figure6(
    run: Optional[ScenarioRun] = None, day_index: int = 8
) -> Figure6Result:
    """Fig. 6: temperature/humidity variation for July 9 (day index 8)."""
    run = run or clean_scenario(n_days=min(day_index + 2, 31))
    day = run.trace.day(day_index)
    if len(day) == 0:
        raise ValueError(f"trace has no data for day {day_index}")
    hours: List[int] = []
    temps: List[float] = []
    hums: List[float] = []
    day_start = day_index * 24 * 60.0
    for hour in range(24):
        start = day_start + hour * 60.0
        chunk = day.between(start, start + 60.0)
        if len(chunk) == 0:
            continue
        matrix = np.vstack([r.vector for r in chunk.records])
        hours.append(hour)
        temps.append(float(matrix[:, 0].mean()))
        hums.append(float(matrix[:, 1].mean()))
    return Figure6Result(
        day_index=day_index,
        hours=tuple(hours),
        temperature=tuple(temps),
        humidity=tuple(hums),
    )


# ---------------------------------------------------------------------------
# Figure 7 — the correct Markov model M_C
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure7Result:
    """The extracted error/attack-free environment model ``M_C``."""

    model: MarkovModel
    unpruned_model: MarkovModel

    @property
    def main_states(self) -> List[Tuple[float, ...]]:
        """Attribute tuples of the pruned (key) states, coldest first."""
        vectors = [
            tuple(float(x) for x in self.model.state_vectors[s])
            for s in self.model.state_ids
        ]
        return sorted(vectors, key=lambda v: v[0])

    @property
    def n_spurious(self) -> int:
        """States present before pruning but dropped as spurious."""
        return self.unpruned_model.n_states - self.model.n_states

    def render(self) -> str:
        body = render_markov_model(
            self.model, title="Figure 7 — correct Markov model M_C (pruned)"
        )
        return (
            f"{body}\n"
            f"spurious states pruned: {self.n_spurious} "
            f"(paper prunes the low-probability (16,27) state)"
        )


def figure7(run: Optional[ScenarioRun] = None) -> Figure7Result:
    """Fig. 7: M_C estimated from the full month."""
    run = run or clean_scenario()
    return Figure7Result(
        model=run.pipeline.correct_model(prune=True),
        unpruned_model=run.pipeline.correct_model(prune=False),
    )


# ---------------------------------------------------------------------------
# Figure 8 — faulty sensors 6 and 7 vs healthy sensor 9
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure8Result:
    """Weekly humidity profile of sensors 6, 7, and 9."""

    day_labels: Tuple[int, ...]
    humidity_by_sensor: Dict[int, Tuple[float, ...]]

    def final_humidity(self, sensor_id: int) -> float:
        """Last daily-mean humidity of a sensor."""
        return self.humidity_by_sensor[sensor_id][-1]

    def mean_ratio(self, sensor_id: int, reference_id: int = 9) -> float:
        """Mean humidity ratio of a sensor vs the reference sensor."""
        sensor = np.asarray(self.humidity_by_sensor[sensor_id])
        reference = np.asarray(self.humidity_by_sensor[reference_id])
        return float(np.mean(sensor / np.maximum(reference, 1e-9)))

    def render(self) -> str:
        sensors = sorted(self.humidity_by_sensor)
        rows = []
        for i, day in enumerate(self.day_labels):
            rows.append(
                [day]
                + [f"{self.humidity_by_sensor[s][i]:.1f}" for s in sensors]
            )
        return render_table(
            ["day"] + [f"sensor {s}" for s in sensors],
            rows,
            title="Figure 8 — daily mean humidity, faulty sensors 6/7 vs 9",
        )


def figure8(
    run: Optional[ScenarioRun] = None,
    sensors: Sequence[int] = (6, 7, 9),
    start_day: int = 7,
    n_days: int = 7,
) -> Figure8Result:
    """Fig. 8: a week of humidity for the faulty and a healthy sensor."""
    run = run or faulty_sensors_scenario(n_days=start_day + n_days + 1)
    humidity: Dict[int, List[float]] = {s: [] for s in sensors}
    days: List[int] = []
    for day in range(start_day, start_day + n_days):
        chunk = run.trace.day(day)
        days.append(day + 1)
        for sensor_id in sensors:
            records = [r for r in chunk.records if r.sensor_id == sensor_id]
            if records:
                value = float(np.mean([r.attributes[1] for r in records]))
            else:
                value = float("nan")
            humidity[sensor_id].append(value)
    return Figure8Result(
        day_labels=tuple(days),
        humidity_by_sensor={s: tuple(v) for s, v in humidity.items()},
    )


# ---------------------------------------------------------------------------
# Figure 9 — the two HMMs learned for faulty sensor 6
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure9Result:
    """M_CO and M_CE snapshots for the stuck-at sensor."""

    sensor_id: int
    b_co: EmissionMatrix
    b_ce: EmissionMatrix
    a_co: np.ndarray
    a_co_state_ids: Tuple[int, ...]
    state_vectors: Dict[int, np.ndarray]

    def render(self) -> str:
        parts = [
            render_emission_matrix(
                self.b_co,
                self.state_vectors,
                title=f"Figure 9 (top) — M_CO emission for sensor {self.sensor_id}",
            ),
            render_emission_matrix(
                self.b_ce,
                self.state_vectors,
                title=f"Figure 9 (bottom) — M_CE emission for sensor {self.sensor_id}",
            ),
        ]
        return "\n\n".join(parts)


def figure9(
    run: Optional[ScenarioRun] = None, sensor_id: int = 6
) -> Figure9Result:
    """Fig. 9: the HMMs learned for faulty sensor 6."""
    run = run or faulty_sensors_scenario()
    pipeline = run.pipeline
    track = pipeline.track_for(sensor_id)
    if track is None:
        raise RuntimeError(f"sensor {sensor_id} was never tracked")
    min_visits = pipeline.config.classifier.min_state_visits
    a_co, a_ids = pipeline.m_co.transition_matrix()
    return Figure9Result(
        sensor_id=sensor_id,
        b_co=pipeline.m_co.emission_matrix(
            min_state_visits=min_visits, min_symbol_visits=min_visits
        ),
        b_ce=track.model.emission_matrix(min_state_visits=min_visits),
        a_co=a_co,
        a_co_state_ids=a_ids,
        state_vectors=pipeline.state_vectors(),
    )


# ---------------------------------------------------------------------------
# Figure 12 — raw alarms for a faulty and a non-faulty node
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure12Result:
    """Raw-alarm series of a faulty and a healthy node."""

    faulty_sensor: int
    healthy_sensor: int
    faulty_series: Tuple[bool, ...]
    healthy_series: Tuple[bool, ...]

    @property
    def faulty_rate(self) -> float:
        """Raw-alarm rate of the faulty node."""
        if not self.faulty_series:
            return 0.0
        return sum(self.faulty_series) / len(self.faulty_series)

    @property
    def healthy_rate(self) -> float:
        """Raw-alarm (false-alarm) rate of the healthy node."""
        if not self.healthy_series:
            return 0.0
        return sum(self.healthy_series) / len(self.healthy_series)

    def render(self) -> str:
        parts = [
            render_alarm_series(
                list(self.faulty_series),
                title=f"Figure 12 — raw alarms, faulty sensor {self.faulty_sensor}",
            ),
            render_alarm_series(
                list(self.healthy_series),
                title=f"Figure 12 — raw alarms, healthy sensor {self.healthy_sensor}",
            ),
            render_kv(
                {
                    "faulty alarm rate": f"{100 * self.faulty_rate:.1f}%",
                    "healthy false-alarm rate": f"{100 * self.healthy_rate:.1f}%"
                    + "  (paper: ~1.5%)",
                }
            ),
        ]
        return "\n\n".join(parts)


def figure12(
    run: Optional[ScenarioRun] = None,
    faulty_sensor: int = 6,
    healthy_sensor: int = 9,
) -> Figure12Result:
    """Fig. 12: raw alarm streams before filtering."""
    run = run or faulty_sensors_scenario()
    alarms = run.pipeline.alarm_generator
    return Figure12Result(
        faulty_sensor=faulty_sensor,
        healthy_sensor=healthy_sensor,
        faulty_series=tuple(alarms.alarm_series(faulty_sensor)),
        healthy_series=tuple(alarms.alarm_series(healthy_sensor)),
    )
