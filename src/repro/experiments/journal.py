"""Durable campaign journal: an append-only JSONL write-ahead log.

``repro campaign --journal DIR`` records every task transition —
attempt start, retry, completion (with the outcome and its digest),
quarantine — as one JSON line in ``DIR/journal.jsonl``, flushed and
fsynced per record so a SIGKILL mid-campaign loses at most the line
being written.  Resuming a campaign against the same directory replays
completed specs from the journal (exactly-once: they are *not*
re-executed) and runs only the remainder; poisoned specs get a fresh
chance.

Keys are the spec's content hash — the same
:func:`repro.traces.cache.canonical_spec_hash` over the same spec dict
the :class:`~repro.traces.cache.TraceCache` uses, generator version
included — so a behavioural change to trace generation retires stale
journal entries exactly like it retires stale cache entries.

The reader is tolerant of a torn final line (the one a crash
interrupted): any line that fails to decode is skipped, and only
``done`` records affect resume decisions, so a journal is never more
dangerous than no journal at all.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, TextIO, Union

#: Journal format version, recorded in the meta line of every file.
JOURNAL_VERSION = 1

JOURNAL_FILENAME = "journal.jsonl"


class CampaignJournal:
    """Append-only JSONL write-ahead log for one campaign directory.

    Safe to reopen across runs: records append to the existing file,
    and :meth:`completed_outcomes` folds the whole history (the last
    terminal record per key wins).  Single-writer by design — the
    orchestrator process writes, workers never touch the journal.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / JOURNAL_FILENAME
        self._handle: Optional[TextIO] = None

    # -- writing -----------------------------------------------------------

    def _writer(self) -> TextIO:
        if self._handle is None or self._handle.closed:
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            if not fresh:
                # A crash can tear the final line mid-write, leaving the
                # file without a trailing newline.  Appending onto that
                # tail would weld the next record into one undecodable
                # line — losing a *good* record to an old crash — so
                # seal the torn line first.
                with open(self.path, "rb") as existing:
                    existing.seek(-1, os.SEEK_END)
                    torn = existing.read(1) != b"\n"
            self._handle = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._append({"event": "meta", "version": JOURNAL_VERSION})
            elif torn:
                self._handle.write("\n")
                self._handle.flush()
        return self._handle

    def _append(self, record: Mapping[str, object]) -> None:
        handle = self._handle if self._handle else self._writer()
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def record_start(
        self, key: str, spec: Mapping[str, object], attempt: int
    ) -> None:
        """One task attempt is about to execute."""
        self._writer()
        self._append(
            {
                "event": "start",
                "key": key,
                "spec": dict(spec),
                "attempt": int(attempt),
            }
        )

    def record_retry(
        self, key: str, attempt: int, kind: str, message: str
    ) -> None:
        """Attempt ``attempt`` failed; the task will be retried."""
        self._writer()
        self._append(
            {
                "event": "retry",
                "key": key,
                "attempt": int(attempt),
                "kind": str(kind),
                "message": str(message),
            }
        )

    def record_done(self, key: str, outcome: Mapping[str, object]) -> None:
        """The task completed; ``outcome`` is its JSON-safe summary."""
        self._writer()
        self._append(
            {
                "event": "done",
                "key": key,
                "digest": str(outcome.get("digest", "")),
                "outcome": dict(outcome),
            }
        )

    def record_poisoned(self, key: str, error: str, attempts: int) -> None:
        """The task failed every retry and was quarantined."""
        self._writer()
        self._append(
            {
                "event": "poisoned",
                "key": key,
                "error": str(error),
                "attempts": int(attempts),
            }
        )

    def flush(self) -> None:
        """Force everything written so far onto disk."""
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self.flush()
            self._handle.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reading -----------------------------------------------------------

    def records(self) -> Iterator[Dict[str, object]]:
        """All decodable records in file order (torn lines skipped)."""
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn by a crash mid-write
                if isinstance(record, dict):
                    yield record

    def completed_outcomes(self) -> Dict[str, Dict[str, object]]:
        """key -> outcome dict for every spec whose last record is done.

        A later ``poisoned`` record clears an earlier ``done`` (it
        cannot happen in one well-formed run, but the journal believes
        its own history), and poisoned specs are simply absent — they
        re-run on resume.
        """
        completed: Dict[str, Dict[str, object]] = {}
        for record in self.records():
            event = record.get("event")
            key = record.get("key")
            if not isinstance(key, str):
                continue
            if event == "done" and isinstance(record.get("outcome"), dict):
                completed[key] = record["outcome"]
            elif event == "poisoned":
                completed.pop(key, None)
        return completed

    def poisoned(self) -> List[Dict[str, object]]:
        """All quarantine records (diagnostics; resume ignores them)."""
        return [r for r in self.records() if r.get("event") == "poisoned"]
