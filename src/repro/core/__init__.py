"""The paper's core contribution: detection, tracking, and classification.

Everything in this package implements §3 of the paper; the per-module
mapping is recorded in DESIGN.md §3.
"""

from .alarms import AlarmGenerator, RawAlarm
from .classification import (
    AnomalyCategory,
    AnomalyType,
    AttributeComparison,
    ClassifierConfig,
    Diagnosis,
    classify_system,
    classify_track,
    compare_state_attributes,
)
from .clustering import ClusterUpdate, OnlineStateClusterer
from .filtering import (
    AlarmFilter,
    CUSUMFilter,
    FilterBank,
    FilterTransition,
    KOfNFilter,
    SPRTFilter,
)
from .identification import WindowIdentification, identify_window
from .markov import (
    MarkovModel,
    ModelComparison,
    compare_models,
    estimate_markov_model,
)
from .online_hmm import EmissionMatrix, OnlineHMM
from .orthogonality import (
    OrthogonalityReport,
    analyze_orthogonality,
    column_gram,
    has_all_ones_column,
    row_gram,
)
from .pipeline import DetectionPipeline, WindowResult
from .states import BOTTOM_STATE_ID, ModelState, StateSet
from .tracks import ErrorAttackTrack, TrackManager

__all__ = [
    "AlarmFilter",
    "AlarmGenerator",
    "AnomalyCategory",
    "AnomalyType",
    "AttributeComparison",
    "BOTTOM_STATE_ID",
    "CUSUMFilter",
    "ClassifierConfig",
    "ClusterUpdate",
    "DetectionPipeline",
    "Diagnosis",
    "EmissionMatrix",
    "ErrorAttackTrack",
    "FilterBank",
    "FilterTransition",
    "KOfNFilter",
    "MarkovModel",
    "ModelComparison",
    "ModelState",
    "OnlineHMM",
    "OnlineStateClusterer",
    "OrthogonalityReport",
    "RawAlarm",
    "SPRTFilter",
    "StateSet",
    "TrackManager",
    "WindowIdentification",
    "WindowResult",
    "analyze_orthogonality",
    "classify_system",
    "classify_track",
    "column_gram",
    "compare_models",
    "compare_state_attributes",
    "estimate_markov_model",
    "has_all_ones_column",
    "identify_window",
    "row_gram",
]
