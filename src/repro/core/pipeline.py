"""The full detection pipeline (paper Fig. 1).

:class:`DetectionPipeline` wires every module of §3 together and is the
library's main entry point.  Feed it observation windows (live from the
simulator or batch from a trace) and query it for raw/filtered alarms,
per-sensor diagnoses, and the clean environment model ``M_C``.

Per window the pipeline:

1. averages each sensor's readings (Θ is ~constant within ``w``),
2. runs the online clusterer (spawn / Eq. 6 update / merge),
3. identifies ``o_i``, ``l_j``, ``c_i`` (Eqs. 2-4),
4. generates raw alarms (``l_j != c_i``) and filters them,
5. opens/closes error/attack tracks on filtered-alarm transitions and
   records the window into every open track (⊥ on agreement),
6. updates the global online HMM ``M_CO`` with ``(c_i, o_i)`` (each
   track updates its own ``M_CE`` in step 5),
7. appends ``c_i``/``o_i`` to the sequences behind ``M_C``/``M_O``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..sensornet.collector import ObservationWindow

if TYPE_CHECKING:  # avoid a circular import; see repro.config
    from ..config import PipelineConfig
from .alarms import AlarmGenerator, RawAlarm
from .classification import (
    AnomalyType,
    ClassifierConfig,
    Diagnosis,
    classify_system,
    classify_track,
)
from .clustering import ClusterUpdate, OnlineStateClusterer
from .filtering import FilterBank, FilterTransition, VectorFilterBank
from .identification import WindowIdentification, identify_window
from .markov import MarkovModel, estimate_markov_model
from .online_hmm import OnlineHMM
from .tracks import ErrorAttackTrack, TrackManager

class _SteadyStretch:
    """Mutable context for one certified steady-state stretch.

    Tracks the Python-float evolution of the unanimous centroid (``c``),
    the static other-state vectors the certificates are measured
    against, and the deferred visit / alarm-history / filter-advance
    counts folded back into the live modules at stretch exit.
    """

    __slots__ = (
        "sid",
        "c",
        "visits",
        "others",
        "zeros",
        "steady_ids",
        "alarm_count",
        "filter_defer",
        "filter_count",
    )

    def __init__(
        self, sid: int, c: List[float], others: List[List[float]]
    ) -> None:
        self.sid = sid
        self.c = c
        self.visits = 0
        #: vectors of every *other* live state (static for the whole
        #: stretch — a move/spawn/merge would have ended it)
        self.others = others
        #: per-sensor-count cached all-False raw-alarm arrays
        self.zeros: Dict[int, np.ndarray] = {}
        #: the stretch's sensor-id set (pinned on the first certified
        #: window; a different set breaks the stretch)
        self.steady_ids: Optional[List[int]] = None
        #: alarm-history windows deferred for batch append at exit
        self.alarm_count = 0
        #: True when the filter bank certified all-False quiescence
        self.filter_defer = False
        #: filter windows deferred for ``advance_quiescent`` at exit
        self.filter_count = 0


@dataclass(frozen=True)
class WindowResult:
    """Everything the pipeline derived from one observation window."""

    window_index: int
    skipped: bool
    identification: Optional[WindowIdentification] = None
    cluster_update: Optional[ClusterUpdate] = None
    raw_alarms: Sequence[RawAlarm] = ()
    filter_transitions: Sequence[FilterTransition] = ()
    n_model_states: int = 0
    #: True when the supervisor's ModelUnderAttack meta-alarm froze the
    #: β/γ learning updates for this window (always False unsupervised).
    learning_frozen: bool = False

    @property
    def observable_state(self) -> Optional[int]:
        """``o_i`` of this window (None when skipped)."""
        return self.identification.observable_state if self.identification else None

    @property
    def correct_state(self) -> Optional[int]:
        """``c_i`` of this window (None when skipped)."""
        return self.identification.correct_state if self.identification else None


class DetectionPipeline:
    """The paper's on-the-fly detection and classification procedure.

    Parameters
    ----------
    config:
        All pipeline knobs (Table 1 defaults).
    initial_states:
        Optional initial model-state vectors.  When omitted, the first
        non-empty window bootstraps the state set (the paper notes the
        method "worked equally well when a set of random initial states
        was provided", footnote 5).
    """

    def __init__(
        self,
        config: "Optional[PipelineConfig]" = None,
        initial_states: Optional[Sequence[np.ndarray]] = None,
    ):
        if config is None:
            # Imported lazily: repro.config itself imports repro.core.
            from ..config import PipelineConfig

            config = PipelineConfig()
        self.config = config
        # Resolved kernel backend (repro.backend).  Kernels are
        # bit-identical across backends, so this choice never shows up
        # in digests — only in digest_metadata().
        from ..backend import get_backend

        self._backend = get_backend(getattr(config, "backend", "numpy"))
        #: Owner-private scratch for the grouped window-means kernel.
        #: One dict per pipeline: interleaving two pipelines can never
        #: alias each other's reusable buffers.
        self._kernel_scratch: dict = {}
        self._initial_states = (
            [np.asarray(v, dtype=float) for v in initial_states]
            if initial_states is not None
            else None
        )
        self.clusterer: Optional[OnlineStateClusterer] = None
        self.alarm_generator = AlarmGenerator()
        self.filter_bank = FilterBank(factory=self.config.filter_factory())
        # Table 1's beta/gamma are retention factors; the online HMMs take
        # the complementary innovation rates (see OnlineHMM's docstring).
        self.tracks = TrackManager(
            transition_innovation=1.0 - self.config.beta,
            emission_innovation=1.0 - self.config.gamma,
        )
        self.m_co = OnlineHMM(
            transition_innovation=1.0 - self.config.beta,
            emission_innovation=1.0 - self.config.gamma,
        )
        self.correct_sequence: List[int] = []
        self.observable_sequence: List[int] = []
        #: Materialized per-window results plus the fused path's pending
        #: constructor-argument tuples; see the ``results`` property.
        self._results: List[WindowResult] = []
        self._pending_results: List[tuple] = []
        self._n_windows = 0
        #: Non-finite per-sensor readings dropped by the input guard.
        self.n_non_finite_dropped = 0
        #: Runtime invariant supervisor (None when supervisor_mode is
        #: "off" — every code path is then exactly the unsupervised one,
        #: so digests stay bit-identical).
        self.supervisor = None
        if self.config.supervisor_mode != "off":
            # Imported lazily: repro.resilience imports repro.core.
            from ..resilience.supervisor import PipelineSupervisor

            self.supervisor = PipelineSupervisor.from_config(self.config)

    # -- bootstrap ----------------------------------------------------------

    def _bootstrap_clusterer(self, per_sensor: Dict[int, np.ndarray]) -> None:
        """Create the clusterer from explicit or first-window states."""
        if self._initial_states is not None:
            vectors = self._initial_states
        else:
            # Greedy farthest-point seeding from the first window: take
            # each sensor mean that no existing seed already explains.
            vectors = []
            for vector in per_sensor.values():
                if not vectors or all(
                    np.linalg.norm(vector - seed) > self.config.spawn_threshold
                    for seed in vectors
                ):
                    vectors.append(np.asarray(vector, dtype=float))
                if len(vectors) >= self.config.n_initial_states:
                    break
        self.clusterer = OnlineStateClusterer(
            initial_vectors=vectors,
            alpha=self.config.alpha,
            spawn_threshold=self.config.spawn_threshold,
            merge_threshold=self.config.merge_threshold,
            max_states=self.config.max_states,
            kernels=self._backend,
        )

    # -- the per-window step ---------------------------------------------

    def _sanitize(
        self, window: ObservationWindow
    ) -> "tuple[Dict[int, np.ndarray], Optional[np.ndarray]]":
        """Per-sensor means and overall mean with non-finite readings dropped.

        The collector already quarantines NaN/Inf messages, but windows
        can also be built by the batch windowers or by hand; a single
        non-finite reading must never reach the clusterer, where the
        Eq. 6 convex update would poison a centroid irrecoverably.
        """
        per_sensor = window.per_sensor_mean()
        if not self.config.drop_non_finite:
            overall = window.overall_mean() if per_sensor else None
            return per_sensor, overall
        if not per_sensor:
            return {}, None
        # One vectorized finiteness check over the stacked means instead
        # of a NumPy reduction per sensor.  A non-finite raw reading
        # always makes its sensor's mean non-finite (NaN/Inf propagate
        # through the sum), so an all-finite mean matrix certifies the
        # whole window and the raw rows need no second look.
        means = np.vstack(list(per_sensor.values()))
        finite_mask = np.isfinite(means).all(axis=1)
        if finite_mask.all():
            return per_sensor, window.overall_mean()
        finite = {
            sensor_id: vector
            for (sensor_id, vector), ok in zip(per_sensor.items(), finite_mask)
            if ok
        }
        self.n_non_finite_dropped += len(per_sensor) - len(finite)
        if not finite:
            return {}, None
        rows = window.observations
        finite_rows = rows[np.all(np.isfinite(rows), axis=1)]
        if finite_rows.shape[0] == rows.shape[0]:
            overall = window.overall_mean()
        else:
            overall = finite_rows.mean(axis=0)
        return finite, overall

    def process_window(self, window: ObservationWindow) -> WindowResult:
        """Consume one observation window; returns what was derived."""
        self._n_windows += 1
        per_sensor, overall_mean = self._sanitize(window)
        if not per_sensor:
            result = WindowResult(
                window_index=window.index,
                skipped=True,
                learning_frozen=(
                    self.supervisor.learning_frozen
                    if self.supervisor is not None
                    else False
                ),
            )
            self.results.append(result)
            if self.supervisor is not None:
                self.supervisor.after_window(self)
            return result
        if self.clusterer is None:
            self._bootstrap_clusterer(per_sensor)
        assert self.clusterer is not None
        assert overall_mean is not None

        sensor_ids = sorted(per_sensor.keys())
        observations = np.vstack([per_sensor[s] for s in sensor_ids])
        # One-pass hot path: the clusterer's window update also performs
        # the overall-mean spawn check and hands back the post-update
        # Eq. 2/3 results, so identification never re-scans the states.
        cluster_update = self.clusterer.update(
            observations, overall_mean=overall_mean
        )
        # Key the row-indexed assignments back to sensor ids in the
        # window's own iteration order: alarm and filter bookkeeping
        # follow dict order, which must not change under the hood.
        assignment_of = dict(zip(sensor_ids, cluster_update.sensor_assignments))
        identification = identify_window(
            self.clusterer,
            per_sensor,
            overall_mean=overall_mean,
            sensor_states={s: assignment_of[s] for s in per_sensor},
            observable_state=cluster_update.observable_state,
        )

        raw_alarms = self.alarm_generator.process(window.index, identification)
        raw_by_sensor = {
            sensor_id: state_id != identification.correct_state
            for sensor_id, state_id in identification.sensor_states.items()
        }
        transitions = self.filter_bank.update(window.index, raw_by_sensor)
        for transition in transitions:
            if transition.raised:
                self.tracks.open_track(transition.sensor_id, window.index)
            else:
                self.tracks.close_track(transition.sensor_id, window.index)

        # Majority-assumption monitor: while the ModelUnderAttack
        # meta-alarm is active, every model-learning update is frozen —
        # M_CO, the track M_CE models, and the c_i/o_i sequences behind
        # M_C/M_O — so a coordinated compromise cannot poison the
        # learned models.  Detection (alarms, filters, track open/close)
        # keeps running above.
        frozen = (
            self.supervisor.observe_identification(window.index, identification)
            if self.supervisor is not None
            else False
        )
        if not frozen:
            self.tracks.record_window(
                identification.correct_state, identification.sensor_states
            )
            self.m_co.observe(
                identification.correct_state, identification.observable_state
            )
            self.correct_sequence.append(identification.correct_state)
            self.observable_sequence.append(identification.observable_state)

        result = WindowResult(
            window_index=window.index,
            skipped=False,
            identification=identification,
            cluster_update=cluster_update,
            raw_alarms=tuple(raw_alarms),
            filter_transitions=tuple(transitions),
            n_model_states=self.clusterer.n_states,
            learning_frozen=frozen,
        )
        self.results.append(result)
        if self.supervisor is not None:
            self.supervisor.after_window(self)
        return result

    def process_windows(
        self, windows: Sequence[ObservationWindow]
    ) -> List[WindowResult]:
        """Batch-feed a list of windows (trace-driven experiments)."""
        return [self.process_window(window) for window in windows]

    def process_trace(self, trace) -> List[WindowResult]:
        """Batched entry point: window ``trace`` columnarly and consume it.

        Accepts either a :class:`repro.traces.schema.Trace` or a
        :class:`repro.traces.columnar.ColumnarTrace`.  Windows are cut
        with :func:`repro.sensornet.collector.windows_from_arrays`
        (array views, no per-reading message objects) using the
        config's ``window_minutes``; results are bit-identical to
        windowing via messages and calling :meth:`process_windows`.
        """
        from ..traces.windows import window_trace_columnar

        windows = window_trace_columnar(trace, self.config.window_minutes)
        return [self.process_window(window) for window in windows]

    # -- the fused whole-trace fast path ----------------------------------

    @property
    def results(self) -> List[WindowResult]:
        """Per-window :class:`WindowResult` log.

        The fused path records lightweight argument tuples instead of
        building the frozen dataclasses inline; they materialize here on
        first access, so campaigns that only read digests/alarms never
        pay for them.
        """
        if self._pending_results:
            pending = self._pending_results
            self._pending_results = []
            self._results.extend(
                _materialize_result(entry) for entry in pending
            )
        return self._results

    @property
    def supervisor_violations(self) -> int:
        """Number of invariant violations recorded by the supervisor.

        0 when the pipeline runs unsupervised.  Cheap enough to poll
        between fleet steps: the fault-isolating fleet runtime watches
        this counter to demote a tenant whose repair-mode supervisor
        fired, without failing the batched advance for the other
        tenants.
        """
        return 0 if self.supervisor is None else len(self.supervisor.violations)

    def _vector_filter_bank(self) -> Optional[VectorFilterBank]:
        """The current filter state as a :class:`VectorFilterBank`.

        ``None`` when the configuration's filter factory is not one of
        the three stock filters, or when the scalar bank holds per-sensor
        state the homogeneous vector bank cannot represent (e.g. a
        checkpoint restored under a different filter configuration) —
        the fused path then falls back to the per-window oracle.
        """
        try:
            bank = VectorFilterBank.from_prototype(
                self.filter_bank.factory(), kernels=self._backend
            )
            bank.load_state_dict(self.filter_bank.state_dict())
        except (ValueError, TypeError):
            return None
        return bank

    def process_trace_fast(self, trace) -> int:
        """Fused struct-of-arrays variant of :meth:`process_trace`.

        Windows the trace columnarly and consumes it through
        :meth:`process_windows_fast`; every piece of resulting pipeline
        state (digest, alarms, filters, tracks, HMMs, supervisor
        verdicts) is bit-identical to :meth:`process_trace`.  Returns
        the number of windows consumed; the per-window results are
        available lazily through :attr:`results`.
        """
        from ..traces.windows import window_trace_columnar

        windows = window_trace_columnar(trace, self.config.window_minutes)
        return self.process_windows_fast(windows)

    def process_windows_fast(self, windows: Sequence[ObservationWindow]) -> int:
        """Consume many windows through the struct-of-arrays fast path.

        Identical state evolution to calling :meth:`process_window` per
        window (the oracle), but: per-sensor window means come from one
        whole-trace grouped ``bincount`` pass, alarm filters advance
        through a :class:`VectorFilterBank`, track recording goes
        through ``TrackManager.record_window_batch``, and
        :class:`WindowResult` construction is deferred (see
        :attr:`results`).  Falls back to the oracle loop when the filter
        bank cannot be vectorized (heterogeneous state or a custom
        factory); windows whose means need the non-finite drop path are
        sanitized individually.
        """
        vector_bank = self._vector_filter_bank()
        if vector_bank is None:
            for window in windows:
                self.process_window(window)
            return len(windows)
        stats = _batched_window_means(
            windows, kernels=self._backend, scratch=self._kernel_scratch
        )
        scalar_bank = self.filter_bank
        self.filter_bank = vector_bank  # live filter state during the run
        steady: Optional[_SteadyStretch] = None
        try:
            # One fp-state save for the whole run; the trusted clusterer
            # kernels rely on it (huge observations saturate to inf).
            with np.errstate(over="ignore"):
                for i, window in enumerate(windows):
                    stat = stats[i]
                    if steady is not None:
                        if self._steady_step(window, stat, i, steady):
                            continue
                        self._steady_exit(steady)
                        steady = None
                    hint = self._process_window_fast(
                        window, stat, vector_bank
                    )
                    if hint is not None and self.supervisor is None:
                        steady = self._steady_enter(hint)
        finally:
            if steady is not None:
                self._steady_exit(steady)
            # Fold the vector state back into the scalar bank so
            # checkpoints and later per-window calls continue from it.
            scalar_bank.load_state_dict(vector_bank.state_dict())
            self.filter_bank = scalar_bank
        return len(windows)

    def _process_window_fast(
        self,
        window: ObservationWindow,
        stat: "Optional[tuple]",
        vector_bank: VectorFilterBank,
    ) -> Optional[int]:
        """One fused-path window step (mirrors :meth:`process_window`).

        Returns the unanimous state id when the window qualifies as a
        steady-stretch entry point (see ``_steady_step``), else None.
        """
        self._n_windows += 1
        supervisor = self.supervisor
        per_sensor: Optional[Dict[int, np.ndarray]] = None
        trusted = False
        full_mean: Optional[np.ndarray] = None
        if stat is None:
            # Slow lane: message-backed window or non-finite means —
            # run the oracle's sanitizer (and its raises) verbatim.
            per_sensor, overall_mean = self._sanitize(window)
            if per_sensor:
                ids_first = list(per_sensor.keys())
                ids_sorted = sorted(ids_first)
                id_array = np.asarray(ids_sorted, dtype=np.int64)
                observations = np.vstack([per_sensor[s] for s in ids_sorted])
                position = {s: i for i, s in enumerate(ids_sorted)}
                order_first: Sequence[int] = [position[s] for s in ids_first]
            else:
                ids_sorted = []
        else:
            (
                ids_sorted,
                id_array,
                observations,
                order_first,
                overall_mean,
                full_mean,
            ) = stat[:6]
            if overall_mean is None:
                overall_mean = window.overall_mean()
            else:
                trusted = True
        if not ids_sorted:
            frozen = (
                supervisor.learning_frozen if supervisor is not None else False
            )
            self._pending_results.append(
                (window.index, True, None, None, (), (), 0, frozen)
            )
            if supervisor is not None:
                supervisor.after_window(self)
            return
        if self.clusterer is None:
            if per_sensor is None:
                per_sensor = {
                    ids_sorted[p]: observations[p] for p in order_first
                }
            self._bootstrap_clusterer(per_sensor)
        assert self.clusterer is not None
        assert overall_mean is not None

        cluster_update = self.clusterer.update(
            observations,
            overall_mean=overall_mean,
            trusted=trusted,
            full_mean=full_mean,
        )
        assignments = cluster_update.sensor_assignments
        # Keyed in the window's first-occurrence order, exactly like the
        # oracle's per_sensor-driven dict (alarm bookkeeping follows it).
        sensor_states = {ids_sorted[p]: assignments[p] for p in order_first}
        identification = identify_window(
            self.clusterer,
            # Only len()/truthiness of per_sensor is read when
            # precomputed states are supplied; the assignment dict has
            # the same keys as the per-sensor means.
            sensor_states,
            overall_mean=overall_mean,
            sensor_states=sensor_states,
            observable_state=cluster_update.observable_state,
        )

        raw_alarms = self.alarm_generator.process(window.index, identification)
        correct = identification.correct_state
        transitions = vector_bank.update_batch(
            window.index,
            id_array,
            [state_id != correct for state_id in assignments],
            assume_sorted=True,
        )
        for transition in transitions:
            if transition.raised:
                self.tracks.open_track(transition.sensor_id, window.index)
            else:
                self.tracks.close_track(transition.sensor_id, window.index)

        frozen = (
            supervisor.observe_identification(window.index, identification)
            if supervisor is not None
            else False
        )
        if not frozen:
            self.tracks.record_window_batch(correct, ids_sorted, assignments)
            self.m_co.observe(correct, identification.observable_state)
            self.correct_sequence.append(correct)
            self.observable_sequence.append(identification.observable_state)

        self._pending_results.append(
            (
                window.index,
                False,
                identification,
                cluster_update,
                tuple(raw_alarms),
                tuple(transitions),
                self.clusterer.n_states,
                frozen,
            )
        )
        if supervisor is not None:
            supervisor.after_window(self)
            return None
        # Steady-stretch entry hint: a trusted window that ended
        # unanimous with no structural change is a candidate for the
        # certified fast lane (see ``_steady_step``).
        if (
            trusted
            and full_mean is not None
            and cluster_update.mean_spawned is None
            and not cluster_update.spawned
            and not cluster_update.merged
        ):
            n = len(assignments)
            c = assignments[0]
            if (
                assignments.count(c) == n
                and cluster_update.observable_state == c
                and cluster_update.assignments.count(c) == n
            ):
                return c
        return None

    # -- certified steady-state stretch ---------------------------------
    #
    # The dominant regime of a healthy trace is: every sensor mean maps
    # to the same state c, nothing spawns or merges, and only c moves
    # (one Eq. 6 step toward the window mean).  In that regime the whole
    # window's observable behaviour is determined by integers already
    # known (all assignments = c), and the only float state that evolves
    # outside the filter/HMM modules is c's vector — a per-window scalar
    # recurrence `c <- (1-alpha)*c + alpha*g` that Python floats compute
    # with the exact same two roundings per element as the oracle's
    # NumPy expression.
    #
    # The stretch path therefore skips the distance kernels entirely and
    # instead *proves*, per window and in a handful of scalar float ops,
    # that the oracle would have produced the unanimous no-change
    # outcome.  With g the window centroid (the precomputed full group
    # mean), s the precomputed spread (max distance from g to any of the
    # window's points, overall mean included), and delta the length of
    # c's Eq. 6 step this window, the triangle inequality gives for
    # every window point p, against both the pre-move c and the
    # post-move c (which is at most delta farther from everything):
    #
    # * d(p, c) <= d(g, c) + s + delta — so
    #   ``d(g, c) + s + delta <= spawn_threshold`` rules out every spawn
    #   check (they all need a distance *above* the threshold), the
    #   overall-mean spawn included.
    # * d(p, X) >= d(g, X) - s for any other state X — so
    #   ``d(g, c) + 2 s + delta < min_X d(g, X)`` keeps every point
    #   strictly nearer to c than to any other state, and every argmin
    #   (the tie-break included) lands on c, for Eq. 3 and the Eq. 2
    #   overall-mean assignment alike.
    # * the certified pair-distance lower bound (see ``StateSet``),
    #   decayed by delta, staying >= merge_threshold rules out merges.
    #
    # Every certificate is padded by an absolute + relative slack so
    # float rounding in these scalar evaluations can never certify a
    # window the oracle would have handled differently.  Any window
    # whose certificate fails simply exits the stretch (deferred state
    # is written back first) and reprocesses through the full fused
    # path — certification is a pure go/no-go, never a result.

    def _steady_enter(self, state_id: int) -> "_SteadyStretch":
        assert self.clusterer is not None
        states = self.clusterer.states
        matrix, ids = states._ensure_cache()
        state = states.get(state_id)
        others = [
            (sid, row)
            for row, sid in zip(matrix.tolist(), ids)
            if sid != state_id
        ]
        return _SteadyStretch(
            state_id, [float(x) for x in state.vector], others
        )

    def _steady_step(
        self,
        window: ObservationWindow,
        stat: "Optional[tuple]",
        i: int,
        ctx: "_SteadyStretch",
    ) -> bool:
        """Process one window inside a certified stretch.

        Returns False — mutating nothing — when the window cannot be
        certified; the caller then writes the deferred state back and
        runs the full fused path on the same window.
        """
        if stat is None:
            return False
        full_mean = stat[5]
        spread = stat[6]
        if full_mean is None or spread is None:
            return False
        ids_sorted = stat[0]
        if ctx.steady_ids is None:
            # First certified window pins the stretch's sensor set and
            # decides once whether filter updates can be deferred.
            ctx.steady_ids = ids_sorted
            ctx.filter_defer = self.filter_bank.quiescent_all_false(stat[1])
        elif ids_sorted != ctx.steady_ids:
            # A different sensor population invalidates the deferred
            # alarm/filter bookkeeping — rejoin the full path.
            return False
        clusterer = self.clusterer
        assert clusterer is not None
        goal = full_mean.tolist()
        c = ctx.c
        alpha = clusterer.alpha
        keep = 1.0 - alpha
        dims = len(c)
        new_c = list(c)
        moved_sq = 0.0
        gc_sq = 0.0
        for t in range(dims):
            g_t = goal[t]
            c_t = c[t]
            value = keep * c_t + alpha * g_t
            new_c[t] = value
            step = value - c_t
            moved_sq += step * step
            away = g_t - c_t
            gc_sq += away * away
        delta = math.sqrt(moved_sq)
        reach = math.sqrt(gc_sq) + spread + delta
        min_other_sq = math.inf
        second_sq = math.inf
        min_idx = -1
        for idx, (_, vector) in enumerate(ctx.others):
            acc = 0.0
            for t in range(dims):
                diff = goal[t] - vector[t]
                acc += diff * diff
            if acc < min_other_sq:
                second_sq = min_other_sq
                min_other_sq = acc
                min_idx = idx
            elif acc < second_sq:
                second_sq = acc
        min_other = math.sqrt(min_other_sq)
        pad = 1e-9 + 1e-12 * (reach + spread)
        if (
            reach + pad <= clusterer.spawn_threshold
            and reach + spread + pad < min_other * (1.0 - 1e-12) - 1e-9
        ):
            bound = clusterer.states.peek_decayed_pair_bound(delta)
            if bound is None or not bound >= clusterer.merge_threshold:
                return False
            clusterer.states.commit_pair_bound(bound)
            ctx.c = new_c
            ctx.visits += 1
        elif min_idx >= 0 and min_other_sq < gc_sq:
            # The window centroid sits strictly inside another state's
            # basin: the environment transitioned.  Certify the window
            # against that nearest state c' directly — every point is
            # within ``spread`` of g, so d(p, c') <= d(g, c') + spread
            # pre-move (+ delta2 post-move), and the margin against any
            # third state (or the old stretch state, which does not move
            # this window) is bounded below by ``second_min``.  Success
            # hands the stretch off to c' without leaving the fast loop.
            new_sid, target = ctx.others[min_idx]
            new_c2 = list(target)
            moved2_sq = 0.0
            for t in range(dims):
                c_t = target[t]
                value = keep * c_t + alpha * goal[t]
                new_c2[t] = value
                step = value - c_t
                moved2_sq += step * step
            delta2 = math.sqrt(moved2_sq)
            reach2 = min_other + spread + delta2
            second_min = min(math.sqrt(gc_sq), math.sqrt(second_sq))
            pad2 = 1e-9 + 1e-12 * (reach2 + spread)
            if not (
                reach2 + pad2 <= clusterer.spawn_threshold
                and reach2 + spread + pad2
                < second_min * (1.0 - 1e-12) - 1e-9
            ):
                return False
            bound = clusterer.states.peek_decayed_pair_bound(delta2)
            if bound is None or not bound >= clusterer.merge_threshold:
                return False
            clusterer.states.commit_pair_bound(bound)
            if ctx.visits:
                clusterer.states.apply_steady_motion(
                    ctx.sid, ctx.c, ctx.visits
                )
            ctx.others[min_idx] = (ctx.sid, ctx.c)
            ctx.sid = new_sid
            ctx.c = new_c2
            ctx.visits = 1
        else:
            return False

        # -- certified: commit the window ------------------------------
        ctx.alarm_count += 1
        self._n_windows += 1
        c_id = ctx.sid
        n = len(ids_sorted)
        if ctx.filter_defer:
            ctx.filter_count += 1
            transitions: "tuple" = ()
        else:
            raws = ctx.zeros.get(n)
            if raws is None:
                raws = ctx.zeros[n] = np.zeros(n, dtype=bool)
            transitions = tuple(
                self.filter_bank.update_batch(
                    window.index, stat[1], raws, assume_sorted=True
                )
            )
            for transition in transitions:
                if transition.raised:  # pragma: no cover - all-False input
                    self.tracks.open_track(transition.sensor_id, window.index)
                else:
                    self.tracks.close_track(transition.sensor_id, window.index)
        self.tracks.record_window_batch(c_id, ids_sorted, [c_id] * n)
        self.m_co.observe(c_id, c_id)
        self.correct_sequence.append(c_id)
        self.observable_sequence.append(c_id)
        self._pending_results.append(
            (
                window.index,
                "steady",
                c_id,
                ids_sorted,
                stat[3],
                transitions,
                clusterer.n_states,
                None,
            )
        )
        return True

    def _steady_exit(self, ctx: "_SteadyStretch") -> None:
        """Fold the deferred stretch state back into the live modules:
        the Python-evolved centroid, the all-False alarm history runs,
        and the quiescent filter-bank position advances."""
        if ctx.visits:
            assert self.clusterer is not None
            self.clusterer.states.apply_steady_motion(
                ctx.sid, ctx.c, ctx.visits
            )
        if ctx.alarm_count and ctx.steady_ids is not None:
            history = self.alarm_generator.history
            tail = [False] * ctx.alarm_count
            for sensor_id in ctx.steady_ids:
                series = history.get(sensor_id)
                if series is None:
                    history[sensor_id] = list(tail)
                else:
                    series.extend(tail)
        if ctx.filter_count:
            self.filter_bank.advance_quiescent(ctx.filter_count)

    def digest(self) -> str:
        """Content hash of everything the evaluation reads off a run.

        Covers the correct/observable state sequences, the M^CO model,
        every per-sensor track model, the resolved state vectors, and
        the per-sensor diagnoses.  Two runs produce the same digest iff
        they are observationally equivalent — this is what the parity
        suite and the scenario-cache correctness check compare.
        """
        import hashlib
        import json

        payload = {
            "n_windows": self._n_windows,
            "correct": self.correct_sequence,
            "observable": self.observable_sequence,
            "m_co": self.m_co.state_dict(),
            "tracks": [track.state_dict() for track in self.tracks.tracks],
            "states": {
                str(state_id): [repr(float(x)) for x in vector]
                for state_id, vector in sorted(self.state_vectors().items())
            },
            "diagnoses": {
                str(sensor_id): [
                    diagnosis.category.value,
                    diagnosis.anomaly_type.value,
                    repr(float(diagnosis.confidence)),
                ]
                for sensor_id, diagnosis in sorted(self.diagnose_all().items())
            },
        }
        # Supervision state joins the digest only when a supervisor
        # exists, so unsupervised digests stay bit-identical to the
        # pre-supervisor implementation.
        if self.supervisor is not None:
            payload["supervisor"] = self.supervisor.digest_payload()
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def digest_metadata(self) -> Dict[str, str]:
        """:meth:`digest` plus the backend that produced it.

        The backend never joins the hashed payload — kernels are
        bit-identical across backends, so the same run digests the same
        under ``numpy`` and ``compiled``.  The metadata records which
        implementations actually executed (``backend`` is the requested
        registry name; ``backend_flavor`` is what ran, which differs
        exactly when the compiled tier fell back to NumPy).
        """
        return {
            "digest": self.digest(),
            "backend": self._backend.name,
            "backend_flavor": self._backend.flavor,
        }

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Versioned JSON-ready checkpoint of the full pipeline state.

        See :mod:`repro.resilience.checkpoint`; ``restore(snapshot(p))``
        continues the run with identical downstream diagnoses.
        """
        from ..resilience.checkpoint import snapshot as _snapshot

        return _snapshot(self)

    @classmethod
    def restore(
        cls, payload: Dict[str, object], config: "Optional[PipelineConfig]" = None
    ) -> "DetectionPipeline":
        """Rebuild a pipeline from a :meth:`snapshot` document."""
        from ..resilience.checkpoint import restore as _restore

        return _restore(payload, config=config)

    # -- state access -----------------------------------------------------

    @property
    def n_windows(self) -> int:
        """Number of windows consumed (including skipped ones)."""
        return self._n_windows

    def state_vectors(self) -> Dict[int, np.ndarray]:
        """Every state id ever referenced -> its current attribute vector.

        Ids that were merged away resolve to their survivor's vector, so
        HMM snapshots recorded under old ids stay interpretable.
        """
        if self.clusterer is None:
            return {}
        vectors: Dict[int, np.ndarray] = {}
        referenced = set(self.m_co.state_ids) | set(self.m_co.symbol_ids)
        for track in self.tracks.tracks:
            referenced |= set(track.model.state_ids)
            referenced |= set(track.model.symbol_ids)
        referenced |= set(self.clusterer.states.state_ids)
        for state_id in referenced:
            if state_id < 0:  # the ⊥ symbol has no vector
                continue
            try:
                vectors[state_id] = self.clusterer.state_vector(state_id)
            except KeyError:
                continue
        return vectors

    # -- diagnosis -----------------------------------------------------------

    def _n_tracked_sensors(self) -> int:
        """Distinct sensors that ever had an error/attack track."""
        return len({t.sensor_id for t in self.tracks.tracks})

    def system_diagnosis(self) -> Diagnosis:
        """Classify the system-level condition from ``M_CO``.

        An attack-shaped ``B^CO`` corroborated by fewer tracked sensors
        than the configured coalition minimum is downgraded to NONE: the
        paper's attacks are coalition attacks, and a lone misbehaving
        sensor's leakage can mimic the structural signature (DESIGN.md
        §6).
        """
        diagnosis = classify_system(
            self.m_co, self.state_vectors(), self.config.classifier
        )
        if (
            diagnosis.is_attack
            and self._n_tracked_sensors()
            < self.config.classifier.min_attack_coalition
        ):
            evidence = dict(diagnosis.evidence)
            evidence["downgraded_attack"] = diagnosis.anomaly_type.value
            evidence["n_tracked_sensors"] = self._n_tracked_sensors()
            return Diagnosis(
                anomaly_type=AnomalyType.NONE,
                confidence=0.5,
                evidence=evidence,
            )
        return diagnosis

    def diagnose_sensor(self, sensor_id: int) -> Optional[Diagnosis]:
        """Classify the latest track of one sensor (None if never tracked)."""
        track = self.tracks.latest_track_for(sensor_id)
        if track is None:
            return None
        return classify_track(
            track,
            self.m_co,
            self.state_vectors(),
            self.config.classifier,
            n_tracked_sensors=self._n_tracked_sensors(),
        )

    def diagnose_all(self) -> Dict[int, Diagnosis]:
        """Classify every sensor that ever had a track."""
        diagnoses: Dict[int, Diagnosis] = {}
        for sensor_id in sorted({t.sensor_id for t in self.tracks.tracks}):
            diagnosis = self.diagnose_sensor(sensor_id)
            if diagnosis is not None:
                diagnoses[sensor_id] = diagnosis
        return diagnoses

    def track_for(self, sensor_id: int) -> Optional[ErrorAttackTrack]:
        """The latest error/attack track of a sensor, if any."""
        return self.tracks.latest_track_for(sensor_id)

    # -- user-facing models -------------------------------------------------

    def correct_model(self, prune: bool = True) -> MarkovModel:
        """``M_C`` — the error/attack-free environment dynamics (step 5)."""
        return self._sequence_model(self.correct_sequence, prune)

    def observable_model(self, prune: bool = True) -> MarkovModel:
        """``M_O`` — the dynamics of the environment as observed."""
        return self._sequence_model(self.observable_sequence, prune)

    def _sequence_model(self, sequence: List[int], prune: bool) -> MarkovModel:
        if not sequence:
            raise ValueError("no windows processed yet")
        resolved = (
            self.clusterer.states.resolve_batch(sequence)
            if self.clusterer is not None
            else list(sequence)
        )
        model = estimate_markov_model(resolved, self.state_vectors())
        if prune:
            model = model.prune(self.config.prune_visit_fraction)
        return model


def _materialize_result(entry: tuple) -> WindowResult:
    """Build one :class:`WindowResult` from a deferred pending entry.

    Two entry shapes exist: the general fused-path tuple mirroring the
    ``WindowResult`` fields, and the compact steady-stretch marker
    (``entry[1] == "steady"``) holding just the unanimous state id and
    sensor ordering — the identification and cluster-update objects a
    unanimous window implies are reconstructed here, off the hot loop.
    """
    if entry[1] == "steady":
        (
            window_index,
            _,
            state_id,
            ids_sorted,
            order_first,
            transitions,
            n_model_states,
            _,
        ) = entry
        n = len(ids_sorted)
        assignments = [state_id] * n
        identification = WindowIdentification(
            observable_state=state_id,
            correct_state=state_id,
            sensor_states={ids_sorted[p]: state_id for p in order_first},
            majority_size=n,
            n_sensors=n,
        )
        cluster_update = ClusterUpdate(
            assignments=assignments,
            spawned=[],
            merged=[],
            sensor_assignments=assignments,
            observable_state=state_id,
            mean_spawned=None,
        )
        return WindowResult(
            window_index=window_index,
            skipped=False,
            identification=identification,
            cluster_update=cluster_update,
            raw_alarms=(),
            filter_transitions=transitions,
            n_model_states=n_model_states,
            learning_frozen=False,
        )
    (
        window_index,
        skipped,
        identification,
        cluster_update,
        raw_alarms,
        transitions,
        n_model_states,
        frozen,
    ) = entry
    return WindowResult(
        window_index=window_index,
        skipped=skipped,
        identification=identification,
        cluster_update=cluster_update,
        raw_alarms=raw_alarms,
        filter_transitions=transitions,
        n_model_states=n_model_states,
        learning_frozen=frozen,
    )


def _batched_window_means(
    windows: Sequence[ObservationWindow],
    kernels: "Optional[object]" = None,
    scratch: "Optional[dict]" = None,
) -> "List[Optional[tuple]]":
    """Whole-trace per-window per-sensor means in one grouped pass.

    Returns one entry per window: ``(sorted_sensor_ids,
    sorted_sensor_id_array, means_matrix, first_occurrence_order,
    overall_mean, full_group_mean)`` where ``means_matrix`` rows follow
    ``sorted_sensor_ids`` (given both as a plain-int list for dict keys
    and as the equivalent ``int64`` array for the vector filter bank),
    ``first_occurrence_order`` permutes sorted positions into the
    window's first-occurrence order (the dict order
    ``ArrayWindow.per_sensor_mean`` produces), and ``overall_mean`` is
    the window's Eq. 2 mean (``None`` for single-attribute traces,
    which compute it per window) — or the whole entry is ``None`` when
    the window must go through ``DetectionPipeline._sanitize`` instead
    (message-backed, empty, or holding any non-finite mean).

    Bit-identity with the per-window path: every group's sum is an
    ``np.bincount`` accumulation over the same values in the same row
    order (bincount adds sequentially in input order, so grouping per
    trace or per window yields the same float), divided by the same
    counts.  The grouped-sum passes run through ``kernels`` (a
    :class:`repro.backend.KernelBackend`; NumPy reference when omitted)
    whose implementations share that accumulation order, so the choice
    of backend never changes a single bit.  ``scratch`` is the caller's
    private buffer dict for the one grouped-sum pass whose result does
    not escape this call; callers that interleave multiple engines must
    each own their dict (never share one across instances).
    """
    from ..backend import get_backend
    from ..sensornet.collector import ArrayWindow

    if kernels is None:
        kernels = get_backend("numpy")

    stats: List[Optional[tuple]] = [None] * len(windows)
    keep = [
        i
        for i, window in enumerate(windows)
        if isinstance(window, ArrayWindow) and window.observations.shape[0] > 0
    ]
    if not keep:
        return stats
    ids_all = np.concatenate([windows[i].sensor_id_array for i in keep])
    obs_all = np.vstack([windows[i].observations for i in keep])
    lengths = [windows[i].observations.shape[0] for i in keep]
    window_of = np.repeat(np.arange(len(keep)), lengths)
    unique_ids, codes = np.unique(ids_all, return_inverse=True)
    n_codes = len(unique_ids)
    keys = window_of * n_codes + codes
    total = len(keep) * n_codes
    # ``sums`` never escapes this call (``means`` below is a fresh
    # fancy-indexed quotient), so its buffer may recycle through the
    # caller's private scratch dict.
    counts, sums = kernels.grouped_sums(keys, obs_all, total, scratch)
    present, first_rows = np.unique(keys, return_index=True)
    means = sums[present] / counts[present][:, None]
    # Finiteness is always resolved here (one bulk pass) so the fused
    # loop can hand the clusterer pre-certified inputs: windows with any
    # non-finite mean take the per-window slow lane, where the oracle's
    # own sanitize/raise behaviour applies verbatim.
    finite_ok = np.isfinite(means).all(axis=1)
    n_attributes = obs_all.shape[1]
    if n_attributes >= 2:
        # ``mean(axis=0)`` over a C-order (N, d>=2) matrix reduces each
        # column over *strided* data, which NumPy sums sequentially —
        # the same order ``bincount`` accumulates — so these grouped
        # overall means are bit-identical to the per-window
        # ``window.overall_mean()`` calls they replace.  (A d == 1
        # column is contiguous and takes pairwise summation instead,
        # so those windows compute their mean per window.)
        # These grouped results escape into per-window stats tuples, so
        # they must own fresh arrays: no scratch.
        row_counts = np.asarray(lengths, dtype=np.int64)
        _, overall = kernels.grouped_sums(window_of, obs_all, len(keep), None)
        overall /= row_counts[:, None]
        overall_finite = np.isfinite(overall).all(axis=1)
        # Mean of each window's per-sensor means (the Eq. 6 group mean
        # whenever a window's rows all land in one state — the healthy
        # steady state).  Same strided-sequential == bincount argument as
        # above; ``present`` is ascending, so rows group in order.
        group_of = present // n_codes
        rows_per, group_means = kernels.grouped_sums(
            group_of, means, len(keep), None
        )
        group_means /= rows_per[:, None]
    else:
        overall = None
        overall_finite = None
        group_means = None
    bounds = np.searchsorted(present, np.arange(len(keep) + 1) * n_codes)
    # One bulk reduction each; per-window re-checks only run on the rare
    # trace that actually contains a non-finite mean.
    all_finite = bool(finite_ok.all())
    all_overall_finite = overall_finite is None or bool(overall_finite.all())
    if overall is not None:
        # Per-window point spread: the largest distance from the window
        # centroid (the group mean) to any of the window's points —
        # sensor means and the overall mean.  One whole-trace kernel;
        # the steady-stretch certifier turns it into per-window spawn /
        # unanimity bounds via the triangle inequality without ever
        # touching the point arrays again.  Overflow/NaN just disables
        # certification for that window (comparisons come out False).
        with np.errstate(over="ignore", invalid="ignore"):
            group_of_means = group_means[group_of]
            sdiff = means - group_of_means
            sdist = np.sqrt(np.einsum("nd,nd->n", sdiff, sdiff))
            spread = np.maximum.reduceat(sdist, bounds[:-1])
            odiff = overall - group_means
            odist = np.sqrt(np.einsum("nd,nd->n", odiff, odiff))
            np.maximum(spread, odist, out=spread)
        spreads = spread.tolist()
    else:
        spreads = None
    if all_finite and all_overall_finite and len(present) == total:
        # Uniform fast path: every window heard every sensor, so each
        # window's id block is the full sorted alphabet.  Share one id
        # list/array across all windows and batch the per-window
        # first-occurrence argsorts into a single axis-1 call (stable
        # sort over exact ints — identical rows to per-window calls).
        id_array = unique_ids.astype(np.int64, copy=False)
        sensor_ids = id_array.tolist()
        order_lists = np.argsort(
            first_rows.reshape(len(keep), n_codes), axis=1, kind="stable"
        ).tolist()
        for k, i in enumerate(keep):
            a = k * n_codes
            stats[i] = (
                sensor_ids,
                id_array,
                means[a : a + n_codes],
                order_lists[k],
                overall[k] if overall is not None else None,
                group_means[k] if group_means is not None else None,
                spreads[k] if spreads is not None else None,
            )
        return stats
    for k, i in enumerate(keep):
        a, b = bounds[k], bounds[k + 1]
        if not all_finite and not bool(finite_ok[a:b].all()):
            continue  # slow lane: per-window sanitize handles these
        if (
            not all_overall_finite
            and overall_finite is not None
            and not bool(overall_finite[k])
        ):
            continue  # slow lane: the oracle raises on a non-finite mean
        id_array = unique_ids[present[a:b] - k * n_codes].astype(
            np.int64, copy=False
        )
        sensor_ids = id_array.tolist()
        order_first = np.argsort(first_rows[a:b], kind="stable").tolist()
        stats[i] = (
            sensor_ids,
            id_array,
            means[a:b],
            order_first,
            overall[k] if overall is not None else None,
            group_means[k] if group_means is not None else None,
            spreads[k] if spreads is not None else None,
        )
    return stats
