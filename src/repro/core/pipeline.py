"""The full detection pipeline (paper Fig. 1).

:class:`DetectionPipeline` wires every module of §3 together and is the
library's main entry point.  Feed it observation windows (live from the
simulator or batch from a trace) and query it for raw/filtered alarms,
per-sensor diagnoses, and the clean environment model ``M_C``.

Per window the pipeline:

1. averages each sensor's readings (Θ is ~constant within ``w``),
2. runs the online clusterer (spawn / Eq. 6 update / merge),
3. identifies ``o_i``, ``l_j``, ``c_i`` (Eqs. 2-4),
4. generates raw alarms (``l_j != c_i``) and filters them,
5. opens/closes error/attack tracks on filtered-alarm transitions and
   records the window into every open track (⊥ on agreement),
6. updates the global online HMM ``M_CO`` with ``(c_i, o_i)`` (each
   track updates its own ``M_CE`` in step 5),
7. appends ``c_i``/``o_i`` to the sequences behind ``M_C``/``M_O``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..sensornet.collector import ObservationWindow

if TYPE_CHECKING:  # avoid a circular import; see repro.config
    from ..config import PipelineConfig
from .alarms import AlarmGenerator, RawAlarm
from .classification import (
    AnomalyType,
    ClassifierConfig,
    Diagnosis,
    classify_system,
    classify_track,
)
from .clustering import ClusterUpdate, OnlineStateClusterer
from .filtering import FilterBank, FilterTransition
from .identification import WindowIdentification, identify_window
from .markov import MarkovModel, estimate_markov_model
from .online_hmm import OnlineHMM
from .tracks import ErrorAttackTrack, TrackManager


@dataclass(frozen=True)
class WindowResult:
    """Everything the pipeline derived from one observation window."""

    window_index: int
    skipped: bool
    identification: Optional[WindowIdentification] = None
    cluster_update: Optional[ClusterUpdate] = None
    raw_alarms: Sequence[RawAlarm] = ()
    filter_transitions: Sequence[FilterTransition] = ()
    n_model_states: int = 0
    #: True when the supervisor's ModelUnderAttack meta-alarm froze the
    #: β/γ learning updates for this window (always False unsupervised).
    learning_frozen: bool = False

    @property
    def observable_state(self) -> Optional[int]:
        """``o_i`` of this window (None when skipped)."""
        return self.identification.observable_state if self.identification else None

    @property
    def correct_state(self) -> Optional[int]:
        """``c_i`` of this window (None when skipped)."""
        return self.identification.correct_state if self.identification else None


class DetectionPipeline:
    """The paper's on-the-fly detection and classification procedure.

    Parameters
    ----------
    config:
        All pipeline knobs (Table 1 defaults).
    initial_states:
        Optional initial model-state vectors.  When omitted, the first
        non-empty window bootstraps the state set (the paper notes the
        method "worked equally well when a set of random initial states
        was provided", footnote 5).
    """

    def __init__(
        self,
        config: "Optional[PipelineConfig]" = None,
        initial_states: Optional[Sequence[np.ndarray]] = None,
    ):
        if config is None:
            # Imported lazily: repro.config itself imports repro.core.
            from ..config import PipelineConfig

            config = PipelineConfig()
        self.config = config
        self._initial_states = (
            [np.asarray(v, dtype=float) for v in initial_states]
            if initial_states is not None
            else None
        )
        self.clusterer: Optional[OnlineStateClusterer] = None
        self.alarm_generator = AlarmGenerator()
        self.filter_bank = FilterBank(factory=self.config.filter_factory())
        # Table 1's beta/gamma are retention factors; the online HMMs take
        # the complementary innovation rates (see OnlineHMM's docstring).
        self.tracks = TrackManager(
            transition_innovation=1.0 - self.config.beta,
            emission_innovation=1.0 - self.config.gamma,
        )
        self.m_co = OnlineHMM(
            transition_innovation=1.0 - self.config.beta,
            emission_innovation=1.0 - self.config.gamma,
        )
        self.correct_sequence: List[int] = []
        self.observable_sequence: List[int] = []
        self.results: List[WindowResult] = []
        self._n_windows = 0
        #: Non-finite per-sensor readings dropped by the input guard.
        self.n_non_finite_dropped = 0
        #: Runtime invariant supervisor (None when supervisor_mode is
        #: "off" — every code path is then exactly the unsupervised one,
        #: so digests stay bit-identical).
        self.supervisor = None
        if self.config.supervisor_mode != "off":
            # Imported lazily: repro.resilience imports repro.core.
            from ..resilience.supervisor import PipelineSupervisor

            self.supervisor = PipelineSupervisor.from_config(self.config)

    # -- bootstrap ----------------------------------------------------------

    def _bootstrap_clusterer(self, per_sensor: Dict[int, np.ndarray]) -> None:
        """Create the clusterer from explicit or first-window states."""
        if self._initial_states is not None:
            vectors = self._initial_states
        else:
            # Greedy farthest-point seeding from the first window: take
            # each sensor mean that no existing seed already explains.
            vectors = []
            for vector in per_sensor.values():
                if not vectors or all(
                    np.linalg.norm(vector - seed) > self.config.spawn_threshold
                    for seed in vectors
                ):
                    vectors.append(np.asarray(vector, dtype=float))
                if len(vectors) >= self.config.n_initial_states:
                    break
        self.clusterer = OnlineStateClusterer(
            initial_vectors=vectors,
            alpha=self.config.alpha,
            spawn_threshold=self.config.spawn_threshold,
            merge_threshold=self.config.merge_threshold,
            max_states=self.config.max_states,
        )

    # -- the per-window step ---------------------------------------------

    def _sanitize(
        self, window: ObservationWindow
    ) -> "tuple[Dict[int, np.ndarray], Optional[np.ndarray]]":
        """Per-sensor means and overall mean with non-finite readings dropped.

        The collector already quarantines NaN/Inf messages, but windows
        can also be built by the batch windowers or by hand; a single
        non-finite reading must never reach the clusterer, where the
        Eq. 6 convex update would poison a centroid irrecoverably.
        """
        per_sensor = window.per_sensor_mean()
        if not self.config.drop_non_finite:
            overall = window.overall_mean() if per_sensor else None
            return per_sensor, overall
        if not per_sensor:
            return {}, None
        # One vectorized finiteness check over the stacked means instead
        # of a NumPy reduction per sensor.  A non-finite raw reading
        # always makes its sensor's mean non-finite (NaN/Inf propagate
        # through the sum), so an all-finite mean matrix certifies the
        # whole window and the raw rows need no second look.
        means = np.vstack(list(per_sensor.values()))
        finite_mask = np.isfinite(means).all(axis=1)
        if finite_mask.all():
            return per_sensor, window.overall_mean()
        finite = {
            sensor_id: vector
            for (sensor_id, vector), ok in zip(per_sensor.items(), finite_mask)
            if ok
        }
        self.n_non_finite_dropped += len(per_sensor) - len(finite)
        if not finite:
            return {}, None
        rows = window.observations
        finite_rows = rows[np.all(np.isfinite(rows), axis=1)]
        if finite_rows.shape[0] == rows.shape[0]:
            overall = window.overall_mean()
        else:
            overall = finite_rows.mean(axis=0)
        return finite, overall

    def process_window(self, window: ObservationWindow) -> WindowResult:
        """Consume one observation window; returns what was derived."""
        self._n_windows += 1
        per_sensor, overall_mean = self._sanitize(window)
        if not per_sensor:
            result = WindowResult(
                window_index=window.index,
                skipped=True,
                learning_frozen=(
                    self.supervisor.learning_frozen
                    if self.supervisor is not None
                    else False
                ),
            )
            self.results.append(result)
            if self.supervisor is not None:
                self.supervisor.after_window(self)
            return result
        if self.clusterer is None:
            self._bootstrap_clusterer(per_sensor)
        assert self.clusterer is not None
        assert overall_mean is not None

        sensor_ids = sorted(per_sensor.keys())
        observations = np.vstack([per_sensor[s] for s in sensor_ids])
        # One-pass hot path: the clusterer's window update also performs
        # the overall-mean spawn check and hands back the post-update
        # Eq. 2/3 results, so identification never re-scans the states.
        cluster_update = self.clusterer.update(
            observations, overall_mean=overall_mean
        )
        # Key the row-indexed assignments back to sensor ids in the
        # window's own iteration order: alarm and filter bookkeeping
        # follow dict order, which must not change under the hood.
        assignment_of = dict(zip(sensor_ids, cluster_update.sensor_assignments))
        identification = identify_window(
            self.clusterer,
            per_sensor,
            overall_mean=overall_mean,
            sensor_states={s: assignment_of[s] for s in per_sensor},
            observable_state=cluster_update.observable_state,
        )

        raw_alarms = self.alarm_generator.process(window.index, identification)
        raw_by_sensor = {
            sensor_id: state_id != identification.correct_state
            for sensor_id, state_id in identification.sensor_states.items()
        }
        transitions = self.filter_bank.update(window.index, raw_by_sensor)
        for transition in transitions:
            if transition.raised:
                self.tracks.open_track(transition.sensor_id, window.index)
            else:
                self.tracks.close_track(transition.sensor_id, window.index)

        # Majority-assumption monitor: while the ModelUnderAttack
        # meta-alarm is active, every model-learning update is frozen —
        # M_CO, the track M_CE models, and the c_i/o_i sequences behind
        # M_C/M_O — so a coordinated compromise cannot poison the
        # learned models.  Detection (alarms, filters, track open/close)
        # keeps running above.
        frozen = (
            self.supervisor.observe_identification(window.index, identification)
            if self.supervisor is not None
            else False
        )
        if not frozen:
            self.tracks.record_window(
                identification.correct_state, identification.sensor_states
            )
            self.m_co.observe(
                identification.correct_state, identification.observable_state
            )
            self.correct_sequence.append(identification.correct_state)
            self.observable_sequence.append(identification.observable_state)

        result = WindowResult(
            window_index=window.index,
            skipped=False,
            identification=identification,
            cluster_update=cluster_update,
            raw_alarms=tuple(raw_alarms),
            filter_transitions=tuple(transitions),
            n_model_states=self.clusterer.n_states,
            learning_frozen=frozen,
        )
        self.results.append(result)
        if self.supervisor is not None:
            self.supervisor.after_window(self)
        return result

    def process_windows(
        self, windows: Sequence[ObservationWindow]
    ) -> List[WindowResult]:
        """Batch-feed a list of windows (trace-driven experiments)."""
        return [self.process_window(window) for window in windows]

    def process_trace(self, trace) -> List[WindowResult]:
        """Batched entry point: window ``trace`` columnarly and consume it.

        Accepts either a :class:`repro.traces.schema.Trace` or a
        :class:`repro.traces.columnar.ColumnarTrace`.  Windows are cut
        with :func:`repro.sensornet.collector.windows_from_arrays`
        (array views, no per-reading message objects) using the
        config's ``window_minutes``; results are bit-identical to
        windowing via messages and calling :meth:`process_windows`.
        """
        from ..traces.windows import window_trace_columnar

        windows = window_trace_columnar(trace, self.config.window_minutes)
        return [self.process_window(window) for window in windows]

    def digest(self) -> str:
        """Content hash of everything the evaluation reads off a run.

        Covers the correct/observable state sequences, the M^CO model,
        every per-sensor track model, the resolved state vectors, and
        the per-sensor diagnoses.  Two runs produce the same digest iff
        they are observationally equivalent — this is what the parity
        suite and the scenario-cache correctness check compare.
        """
        import hashlib
        import json

        payload = {
            "n_windows": self._n_windows,
            "correct": self.correct_sequence,
            "observable": self.observable_sequence,
            "m_co": self.m_co.state_dict(),
            "tracks": [track.state_dict() for track in self.tracks.tracks],
            "states": {
                str(state_id): [repr(float(x)) for x in vector]
                for state_id, vector in sorted(self.state_vectors().items())
            },
            "diagnoses": {
                str(sensor_id): [
                    diagnosis.category.value,
                    diagnosis.anomaly_type.value,
                    repr(float(diagnosis.confidence)),
                ]
                for sensor_id, diagnosis in sorted(self.diagnose_all().items())
            },
        }
        # Supervision state joins the digest only when a supervisor
        # exists, so unsupervised digests stay bit-identical to the
        # pre-supervisor implementation.
        if self.supervisor is not None:
            payload["supervisor"] = self.supervisor.digest_payload()
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Versioned JSON-ready checkpoint of the full pipeline state.

        See :mod:`repro.resilience.checkpoint`; ``restore(snapshot(p))``
        continues the run with identical downstream diagnoses.
        """
        from ..resilience.checkpoint import snapshot as _snapshot

        return _snapshot(self)

    @classmethod
    def restore(
        cls, payload: Dict[str, object], config: "Optional[PipelineConfig]" = None
    ) -> "DetectionPipeline":
        """Rebuild a pipeline from a :meth:`snapshot` document."""
        from ..resilience.checkpoint import restore as _restore

        return _restore(payload, config=config)

    # -- state access -----------------------------------------------------

    @property
    def n_windows(self) -> int:
        """Number of windows consumed (including skipped ones)."""
        return self._n_windows

    def state_vectors(self) -> Dict[int, np.ndarray]:
        """Every state id ever referenced -> its current attribute vector.

        Ids that were merged away resolve to their survivor's vector, so
        HMM snapshots recorded under old ids stay interpretable.
        """
        if self.clusterer is None:
            return {}
        vectors: Dict[int, np.ndarray] = {}
        referenced = set(self.m_co.state_ids) | set(self.m_co.symbol_ids)
        for track in self.tracks.tracks:
            referenced |= set(track.model.state_ids)
            referenced |= set(track.model.symbol_ids)
        referenced |= set(self.clusterer.states.state_ids)
        for state_id in referenced:
            if state_id < 0:  # the ⊥ symbol has no vector
                continue
            try:
                vectors[state_id] = self.clusterer.state_vector(state_id)
            except KeyError:
                continue
        return vectors

    # -- diagnosis -----------------------------------------------------------

    def _n_tracked_sensors(self) -> int:
        """Distinct sensors that ever had an error/attack track."""
        return len({t.sensor_id for t in self.tracks.tracks})

    def system_diagnosis(self) -> Diagnosis:
        """Classify the system-level condition from ``M_CO``.

        An attack-shaped ``B^CO`` corroborated by fewer tracked sensors
        than the configured coalition minimum is downgraded to NONE: the
        paper's attacks are coalition attacks, and a lone misbehaving
        sensor's leakage can mimic the structural signature (DESIGN.md
        §6).
        """
        diagnosis = classify_system(
            self.m_co, self.state_vectors(), self.config.classifier
        )
        if (
            diagnosis.is_attack
            and self._n_tracked_sensors()
            < self.config.classifier.min_attack_coalition
        ):
            evidence = dict(diagnosis.evidence)
            evidence["downgraded_attack"] = diagnosis.anomaly_type.value
            evidence["n_tracked_sensors"] = self._n_tracked_sensors()
            return Diagnosis(
                anomaly_type=AnomalyType.NONE,
                confidence=0.5,
                evidence=evidence,
            )
        return diagnosis

    def diagnose_sensor(self, sensor_id: int) -> Optional[Diagnosis]:
        """Classify the latest track of one sensor (None if never tracked)."""
        track = self.tracks.latest_track_for(sensor_id)
        if track is None:
            return None
        return classify_track(
            track,
            self.m_co,
            self.state_vectors(),
            self.config.classifier,
            n_tracked_sensors=self._n_tracked_sensors(),
        )

    def diagnose_all(self) -> Dict[int, Diagnosis]:
        """Classify every sensor that ever had a track."""
        diagnoses: Dict[int, Diagnosis] = {}
        for sensor_id in sorted({t.sensor_id for t in self.tracks.tracks}):
            diagnosis = self.diagnose_sensor(sensor_id)
            if diagnosis is not None:
                diagnoses[sensor_id] = diagnosis
        return diagnoses

    def track_for(self, sensor_id: int) -> Optional[ErrorAttackTrack]:
        """The latest error/attack track of a sensor, if any."""
        return self.tracks.latest_track_for(sensor_id)

    # -- user-facing models -------------------------------------------------

    def correct_model(self, prune: bool = True) -> MarkovModel:
        """``M_C`` — the error/attack-free environment dynamics (step 5)."""
        return self._sequence_model(self.correct_sequence, prune)

    def observable_model(self, prune: bool = True) -> MarkovModel:
        """``M_O`` — the dynamics of the environment as observed."""
        return self._sequence_model(self.observable_sequence, prune)

    def _sequence_model(self, sequence: List[int], prune: bool) -> MarkovModel:
        if not sequence:
            raise ValueError("no windows processed yet")
        resolved = (
            self.clusterer.states.resolve_batch(sequence)
            if self.clusterer is not None
            else list(sequence)
        )
        model = estimate_markov_model(resolved, self.state_vectors())
        if prune:
            model = model.prune(self.config.prune_visit_fraction)
        return model
