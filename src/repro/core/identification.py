"""Observable / correct state identification (paper Eqs. 2-4).

Given one window's per-sensor observations and the current model state
set, these functions compute:

* the **observable state** ``o_i`` — the state nearest the mean of *all*
  observations, corrupt or not (Eq. 2),
* the **observation-to-state mapping** ``l_j`` per sensor (Eq. 3),
* the **correct state** ``c_i`` — the state holding the largest cluster
  of sensors (Eq. 4), valid under the paper's assumption that correct
  sensors both behave alike and outnumber corrupted ones.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .clustering import OnlineStateClusterer


@dataclass(frozen=True)
class WindowIdentification:
    """The per-window quantities the rest of the pipeline consumes.

    Attributes
    ----------
    observable_state:
        ``o_i`` — state id of the overall observed environment (Eq. 2).
    correct_state:
        ``c_i`` — state id of the majority cluster (Eq. 4).
    sensor_states:
        ``l_j`` per sensor id (Eq. 3).
    majority_size:
        Number of sensors in the majority cluster.
    n_sensors:
        Number of sensors that reported in this window.
    """

    observable_state: int
    correct_state: int
    sensor_states: Dict[int, int]
    majority_size: int
    n_sensors: int

    @property
    def majority_fraction(self) -> float:
        """Fraction of reporting sensors inside the majority cluster."""
        if self.n_sensors == 0:
            return 0.0
        return self.majority_size / self.n_sensors

    def disagreeing_sensors(self) -> List[int]:
        """Sensors whose state differs from the correct state."""
        return sorted(
            sensor_id
            for sensor_id, state_id in self.sensor_states.items()
            if state_id != self.correct_state
        )


def identify_window(
    clusterer: OnlineStateClusterer,
    per_sensor: Dict[int, np.ndarray],
    overall_mean: Optional[np.ndarray] = None,
    *,
    sensor_states: Optional[Dict[int, int]] = None,
    observable_state: Optional[int] = None,
) -> WindowIdentification:
    """Run Eqs. 2-4 for one window.

    Parameters
    ----------
    clusterer:
        The live model-state set (queried, not modified).
    per_sensor:
        sensor id -> that sensor's window-mean observation vector.
    overall_mean:
        Mean over all raw readings in the window (Eq. 2's input, which
        weights sensors by delivered packets).  Falls back to the mean
        of the per-sensor means when omitted.
    sensor_states / observable_state:
        Precomputed Eq. 3 / Eq. 2 results, as produced by
        :meth:`OnlineStateClusterer.update` over the same state set
        (``ClusterUpdate.sensor_assignments`` keyed back to sensor ids,
        and ``ClusterUpdate.observable_state``).  When supplied, the
        corresponding state-set scans are skipped; they MUST come from
        the post-update state positions or Eqs. 2-4 would silently use
        stale geometry.

    Raises
    ------
    ValueError
        If the window is empty — callers must skip empty windows.
    """
    if not per_sensor:
        raise ValueError("cannot identify states for an empty window")
    if sensor_states is None:
        # Precomputed assignments certify the vectors already passed
        # through the clusterer's finiteness guard; only the scan path
        # needs to re-validate.
        for sensor_id, vector in per_sensor.items():
            if not np.all(np.isfinite(np.asarray(vector, dtype=float))):
                raise ValueError(
                    f"sensor {sensor_id} observation is non-finite; "
                    "sanitize the window before identification"
                )

    # Eq. 3: map each sensor's observation to its nearest model state
    # (one batched kernel when not already computed by the clusterer).
    if sensor_states is None:
        sensor_ids = list(per_sensor.keys())
        assigned = clusterer.assign_batch(
            np.vstack([per_sensor[s] for s in sensor_ids])
        )
        sensor_states = dict(zip(sensor_ids, assigned))

    # Eq. 2: the observable state is the state nearest the global mean.
    if overall_mean is None:
        global_mean = np.mean(np.vstack(list(per_sensor.values())), axis=0)
    else:
        global_mean = np.asarray(overall_mean, dtype=float)
    if observable_state is None:
        observable_state = clusterer.assign(global_mean)

    # Eq. 4: the correct state is the one hosting the largest cluster.
    values = list(sensor_states.values())
    first = values[0]
    if values.count(first) == len(values):
        # Unanimous window (the healthy steady state): the only cluster
        # is the majority — same answer the Counter scan would give.
        return WindowIdentification(
            observable_state=observable_state,
            correct_state=first,
            sensor_states=sensor_states,
            majority_size=len(values),
            n_sensors=len(per_sensor),
        )
    counts = Counter(values)
    majority_size = max(counts.values())
    # Deterministic tie-break: among equally large clusters prefer the
    # one closest to the global mean (ties on that are broken by id).
    candidates = [s for s, c in counts.items() if c == majority_size]
    if len(candidates) == 1:
        correct_state = candidates[0]
    else:
        def tie_key(state_id: int) -> "tuple[float, int]":
            with np.errstate(over="ignore"):  # huge centroids -> inf is fine
                distance = float(
                    np.linalg.norm(
                        clusterer.state_vector(state_id) - global_mean
                    )
                )
            return (distance, state_id)

        correct_state = min(candidates, key=tie_key)

    return WindowIdentification(
        observable_state=observable_state,
        correct_state=correct_state,
        sensor_states=sensor_states,
        majority_size=majority_size,
        n_sensors=len(per_sensor),
    )
