"""Error/attack track management (paper §3.1, Track Management module).

Each sensor with a *set* filtered alarm gets its own open track ``e^k``.
While the track is open, every window appends a symbol:

* the sensor's mapped state ``l_k`` when it disagrees with the correct
  state (``l_k != c_i``), or
* the fictitious ``⊥`` symbol when the tracked sensor happens to agree
  with the majority.

Each track owns its own online HMM ``M_CE`` relating the correct states
to the track symbols; closing (alarm cleared) freezes the track for
post-mortem classification.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .online_hmm import OnlineHMM
from .states import BOTTOM_STATE_ID


@dataclass
class ErrorAttackTrack:
    """One per-sensor error/attack track and its ``M_CE`` model.

    Attributes
    ----------
    track_id:
        Sequential id ("the number of tracks that were previously
        active" naming scheme of §3.1).
    sensor_id:
        The tracked sensor.
    opened_window:
        Window index at which the filtered alarm was raised.
    closed_window:
        Window index of closure, or None while open.
    symbols:
        The per-window ``(c_i, e_i)`` pairs recorded so far.
    """

    track_id: int
    sensor_id: int
    opened_window: int
    model: OnlineHMM
    closed_window: Optional[int] = None
    symbols: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def is_open(self) -> bool:
        """True until the filtered alarm clears."""
        return self.closed_window is None

    @property
    def length(self) -> int:
        """Number of windows recorded on this track."""
        return len(self.symbols)

    def record(self, correct_state: int, error_symbol: int) -> None:
        """Append one window's (c_i, e_i) pair and update ``M_CE``."""
        self.symbols.append((correct_state, error_symbol))
        self.model.observe(correct_state, error_symbol)

    def truncate(self, max_length: int) -> int:
        """Bounded repair: keep only the most recent ``max_length`` pairs.

        A track longer than the windows elapsed since it opened can only
        arise from corrupted state (double-recording, a bad restore).
        The ``M_CE`` estimator is rebuilt by replaying the surviving
        pairs — not bit-equal to the unbounded history's forgetting
        recursion, but row-stochastic and consistent with ``symbols``.
        Returns the number of dropped pairs.
        """
        if max_length < 0:
            raise ValueError("max_length must be non-negative")
        dropped = len(self.symbols) - max_length
        if dropped <= 0:
            return 0
        self.symbols = self.symbols[-max_length:] if max_length else []
        replayed = OnlineHMM(
            transition_innovation=self.model.transition_innovation,
            emission_innovation=self.model.emission_innovation,
        )
        for correct_state, symbol in self.symbols:
            replayed.observe(correct_state, symbol)
        self.model = replayed
        return dropped

    def disagreement_fraction(self) -> float:
        """Fraction of recorded windows with a non-⊥ symbol."""
        if not self.symbols:
            return 0.0
        disagreeing = sum(1 for _, e in self.symbols if e != BOTTOM_STATE_ID)
        return disagreeing / len(self.symbols)

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot including the track's ``M_CE`` model."""
        return {
            "track_id": self.track_id,
            "sensor_id": self.sensor_id,
            "opened_window": self.opened_window,
            "closed_window": self.closed_window,
            "symbols": [[c, e] for c, e in self.symbols],
            "model": self.model.state_dict(),
        }

    @classmethod
    def from_state_dict(cls, payload: Dict[str, object]) -> "ErrorAttackTrack":
        closed = payload["closed_window"]
        return cls(
            track_id=int(payload["track_id"]),
            sensor_id=int(payload["sensor_id"]),
            opened_window=int(payload["opened_window"]),
            model=OnlineHMM.from_state_dict(payload["model"]),
            closed_window=None if closed is None else int(closed),
            symbols=[(int(c), int(e)) for c, e in payload["symbols"]],
        )


@dataclass
class TrackManager:
    """Opens, feeds, and closes per-sensor error/attack tracks.

    Parameters
    ----------
    transition_innovation / emission_innovation:
        Innovation rates handed to each track's ``M_CE`` estimator
        (``1 - β`` / ``1 - γ`` in Table 1 terms; see
        :class:`repro.core.online_hmm.OnlineHMM`).
    """

    transition_innovation: float = 0.10
    emission_innovation: float = 0.10
    tracks: List[ErrorAttackTrack] = field(default_factory=list)
    _open_by_sensor: Dict[int, ErrorAttackTrack] = field(default_factory=dict)

    def open_track(self, sensor_id: int, window_index: int) -> ErrorAttackTrack:
        """Open a track for ``sensor_id`` (no-op if one is already open)."""
        existing = self._open_by_sensor.get(sensor_id)
        if existing is not None:
            return existing
        track = ErrorAttackTrack(
            track_id=len(self.tracks) + 1,
            sensor_id=sensor_id,
            opened_window=window_index,
            model=OnlineHMM(
                transition_innovation=self.transition_innovation,
                emission_innovation=self.emission_innovation,
            ),
        )
        self.tracks.append(track)
        self._open_by_sensor[sensor_id] = track
        return track

    def close_track(self, sensor_id: int, window_index: int) -> Optional[ErrorAttackTrack]:
        """Close the open track of ``sensor_id`` (None if none open)."""
        track = self._open_by_sensor.pop(sensor_id, None)
        if track is not None:
            track.closed_window = window_index
        return track

    def open_track_for(self, sensor_id: int) -> Optional[ErrorAttackTrack]:
        """The currently open track of a sensor, if any."""
        return self._open_by_sensor.get(sensor_id)

    def record_window(
        self,
        correct_state: int,
        sensor_states: Dict[int, int],
    ) -> None:
        """Feed one window into every open track.

        For each tracked sensor that reported this window, record its
        mapped state when it disagrees with ``correct_state`` and ``⊥``
        otherwise.  Tracked sensors that did not report (packet loss)
        contribute nothing this window.
        """
        for sensor_id, track in self._open_by_sensor.items():
            if sensor_id not in sensor_states:
                continue
            mapped = sensor_states[sensor_id]
            symbol = mapped if mapped != correct_state else BOTTOM_STATE_ID
            track.record(correct_state, symbol)

    def record_window_batch(
        self,
        correct_state: int,
        sensor_ids: Sequence[int],
        assigned_states: Sequence[int],
    ) -> None:
        """:meth:`record_window` over the window's assignment arrays.

        ``sensor_ids`` must be sorted ascending without duplicates,
        positionally paired with ``assigned_states`` (exactly the fused
        pipeline's per-window layout).  Open tracks are fed in the same
        order and with the same symbols as :meth:`record_window` given
        the equivalent ``sensor_states`` dict, but tracked sensors are
        located by bisection instead of building the dict.
        """
        if not self._open_by_sensor:
            return
        n = len(sensor_ids)
        for sensor_id, track in self._open_by_sensor.items():
            idx = bisect_left(sensor_ids, sensor_id)
            if idx >= n or sensor_ids[idx] != sensor_id:
                continue
            mapped = int(assigned_states[idx])
            symbol = mapped if mapped != correct_state else BOTTOM_STATE_ID
            track.record(correct_state, symbol)

    def tracks_for_sensor(self, sensor_id: int) -> List[ErrorAttackTrack]:
        """All (open and closed) tracks of one sensor, oldest first."""
        return [t for t in self.tracks if t.sensor_id == sensor_id]

    def latest_track_for(self, sensor_id: int) -> Optional[ErrorAttackTrack]:
        """The most recent track of a sensor (open or closed)."""
        candidates = self.tracks_for_sensor(sensor_id)
        return candidates[-1] if candidates else None

    @property
    def open_sensor_ids(self) -> List[int]:
        """Sensors with a currently open track."""
        return sorted(self._open_by_sensor.keys())

    @property
    def n_tracks(self) -> int:
        """Total number of tracks ever opened."""
        return len(self.tracks)

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of all tracks (open and closed)."""
        return {
            "transition_innovation": self.transition_innovation,
            "emission_innovation": self.emission_innovation,
            "tracks": [track.state_dict() for track in self.tracks],
            "open": [
                [sensor_id, track.track_id]
                for sensor_id, track in sorted(self._open_by_sensor.items())
            ],
        }

    @classmethod
    def from_state_dict(cls, payload: Dict[str, object]) -> "TrackManager":
        manager = cls(
            transition_innovation=float(payload["transition_innovation"]),
            emission_innovation=float(payload["emission_innovation"]),
        )
        manager.tracks = [
            ErrorAttackTrack.from_state_dict(entry) for entry in payload["tracks"]
        ]
        by_id = {track.track_id: track for track in manager.tracks}
        manager._open_by_sensor = {
            int(sensor_id): by_id[int(track_id)]
            for sensor_id, track_id in payload["open"]
        }
        return manager
