"""Online statistical clustering — the Model State Identification module.

Implements the paper's §3.1 procedure:

* Eq. 5: group the window's observations by nearest state,
* Eq. 6: move each non-empty state toward its group mean with learning
  factor α,
* spawn a new state when an observation is farther than a threshold from
  every existing state,
* merge two states when they drift closer than a threshold.

The module must "not split correct data into a number of small-size
clusters" and should keep M small; the spawn/merge thresholds are the
tuning knobs the paper alludes to but does not number — DESIGN.md §6
records our defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .states import ModelState, StateSet


@dataclass(frozen=True)
class ClusterUpdate:
    """What one window's clustering pass did.

    Attributes
    ----------
    assignments:
        Row index in the window's observation matrix -> state id (Eq. 3
        applied with the *pre-update* state positions).
    spawned:
        Ids of states created for too-far observations.
    merged:
        ``(kept_id, dropped_id)`` pairs merged after the α update.
    """

    assignments: List[int]
    spawned: List[int]
    merged: List["tuple[int, int]"]


class OnlineStateClusterer:
    """Maintains the model state set across observation windows.

    Parameters
    ----------
    initial_vectors:
        Initial state estimates (Table 1 uses 6, from offline clustering
        of historical data; random initialisation also works, per the
        paper's footnote 5).
    alpha:
        Eq. 6 learning factor in (0, 1); Table 1 value 0.10.
    spawn_threshold:
        An observation farther than this from every state spawns a new
        state at its position.
    merge_threshold:
        Two states closer than this merge into one.
    max_states:
        Safety valve: never grow beyond this many states (the paper
        warns against "too many model states" breaking the majority
        assumption).
    """

    def __init__(
        self,
        initial_vectors: Sequence[np.ndarray],
        alpha: float = 0.10,
        spawn_threshold: float = 6.0,
        merge_threshold: float = 3.0,
        max_states: int = 24,
    ):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if spawn_threshold <= 0 or merge_threshold <= 0:
            raise ValueError("thresholds must be positive")
        if merge_threshold >= spawn_threshold:
            raise ValueError("merge_threshold must be below spawn_threshold")
        if max_states < 2:
            raise ValueError("max_states must be at least 2")
        self.alpha = alpha
        self.spawn_threshold = spawn_threshold
        self.merge_threshold = merge_threshold
        self.max_states = max_states
        self.states = StateSet(initial_vectors)
        if len(self.states) == 0:
            raise ValueError("need at least one initial state")

    # -- queries ---------------------------------------------------------

    def assign(self, point: np.ndarray) -> int:
        """Eq. 3: id of the nearest state to ``point`` (no side effects).

        Raises
        ------
        ValueError
            If ``point`` contains NaN/Inf: a non-finite reading has no
            meaningful nearest state and must never reach the clusterer
            (the collector quarantines such messages; the pipeline drops
            any that slip through).
        """
        point = np.asarray(point, dtype=float)
        if not np.all(np.isfinite(point)):
            raise ValueError("cannot assign a non-finite observation to a state")
        state, _ = self.states.nearest(point)
        return state.state_id

    def resolve(self, state_id: int) -> int:
        """Follow merge aliases for an id issued in an earlier window."""
        return self.states.resolve(state_id)

    def maybe_spawn(self, point: np.ndarray) -> Optional[int]:
        """Spawn a state at ``point`` if no existing state explains it.

        Used by the pipeline for the window's *overall mean* (Eq. 2's
        input): coordinated attacks can pull the network-wide mean to a
        position no individual sensor reports, and the state set must be
        able to describe that observable condition ("the module should
        expand the current set of states when appropriate", §3.1).
        """
        point = np.asarray(point, dtype=float)
        if not np.all(np.isfinite(point)):
            raise ValueError("cannot spawn a state at a non-finite position")
        _, distance = self.states.nearest(point)
        if distance > self.spawn_threshold and len(self.states) < self.max_states:
            return self.states.spawn(point).state_id
        return None

    # -- the per-window update -------------------------------------------

    def update(self, observations: np.ndarray) -> ClusterUpdate:
        """Run one full clustering pass over a window's observations.

        Parameters
        ----------
        observations:
            ``(N, d)`` matrix; one row per observation source.

        Returns
        -------
        ClusterUpdate
            Assignments (by pre-update positions), spawned and merged
            state ids.
        """
        observations = np.atleast_2d(np.asarray(observations, dtype=float))
        if observations.size == 0:
            return ClusterUpdate(assignments=[], spawned=[], merged=[])
        if not np.all(np.isfinite(observations)):
            # A single NaN/Inf row would poison every centroid it touches
            # through the Eq. 6 convex update; reject the window outright.
            raise ValueError("observations contain non-finite values")

        spawned = self._spawn_far_observations(observations)
        assignments = [self.assign(row) for row in observations]
        self._apply_learning_update(observations, assignments)
        merged = self._merge_close_states()
        return ClusterUpdate(
            assignments=[self.states.resolve(a) for a in assignments],
            spawned=spawned,
            merged=merged,
        )

    def _spawn_far_observations(self, observations: np.ndarray) -> List[int]:
        """Create states for observations no existing state explains."""
        spawned: List[int] = []
        for row in observations:
            _, distance = self.states.nearest(row)
            if distance > self.spawn_threshold and len(self.states) < self.max_states:
                state = self.states.spawn(row)
                spawned.append(state.state_id)
        return spawned

    def _apply_learning_update(
        self, observations: np.ndarray, assignments: List[int]
    ) -> None:
        """Eq. 5 + Eq. 6: move each visited state toward its group mean."""
        groups: Dict[int, List[np.ndarray]] = {}
        for row, state_id in zip(observations, assignments):
            groups.setdefault(state_id, []).append(row)
        for state_id, members in groups.items():
            state = self.states.get(state_id)
            group_mean = np.mean(np.vstack(members), axis=0)
            state.vector = (1.0 - self.alpha) * state.vector + self.alpha * group_mean
            state.visits += 1

    def _merge_close_states(self) -> List["tuple[int, int]"]:
        """Repeatedly merge the closest pair while it is under threshold."""
        merged: List["tuple[int, int]"] = []
        while True:
            pair = self.states.closest_pair()
            if pair is None or pair[2] >= self.merge_threshold:
                break
            first_id, second_id, _ = pair
            first = self.states.get(first_id)
            second = self.states.get(second_id)
            # Keep the better-established state so ids referenced by the
            # HMMs stay live as long as possible.
            if first.visits >= second.visits:
                keep, drop = first_id, second_id
            else:
                keep, drop = second_id, first_id
            self.states.merge(keep, drop)
            merged.append((keep, drop))
        return merged

    # -- convenience -------------------------------------------------------

    @property
    def n_states(self) -> int:
        """Current number of live model states M."""
        return len(self.states)

    def state_vector(self, state_id: int) -> np.ndarray:
        """Current attribute estimate of a state (following aliases)."""
        return self.states.get(state_id).vector.copy()

    def state_labels(self) -> Dict[int, str]:
        """state_id -> display label for reports."""
        return self.states.labels()

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot: tuning knobs plus the full state set."""
        return {
            "alpha": self.alpha,
            "spawn_threshold": self.spawn_threshold,
            "merge_threshold": self.merge_threshold,
            "max_states": self.max_states,
            "states": self.states.state_dict(),
        }

    @classmethod
    def from_state_dict(cls, payload: Dict[str, object]) -> "OnlineStateClusterer":
        """Rebuild a clusterer from :meth:`state_dict` output."""
        clusterer = cls(
            initial_vectors=[np.zeros(1)],
            alpha=float(payload["alpha"]),
            spawn_threshold=float(payload["spawn_threshold"]),
            merge_threshold=float(payload["merge_threshold"]),
            max_states=int(payload["max_states"]),
        )
        clusterer.states = StateSet.from_state_dict(payload["states"])
        return clusterer
