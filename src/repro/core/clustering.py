"""Online statistical clustering — the Model State Identification module.

Implements the paper's §3.1 procedure:

* Eq. 5: group the window's observations by nearest state,
* Eq. 6: move each non-empty state toward its group mean with learning
  factor α,
* spawn a new state when an observation is farther than a threshold from
  every existing state,
* merge two states when they drift closer than a threshold.

The module must "not split correct data into a number of small-size
clusters" and should keep M small; the spawn/merge thresholds are the
tuning knobs the paper alludes to but does not number — DESIGN.md §6
records our defaults.

:meth:`OnlineStateClusterer.update` is the pipeline's hot path and runs
as a *one-pass* kernel: a single ``(N, M)`` distance matrix (from
``StateSet.distances_to``) feeds the spawn checks and the Eq. 3
assignments, the Eq. 6 group update is applied through the cached state
matrix, and — when the caller supplies the window's overall mean — the
final per-sensor assignments and the observable state are computed in
one batched query over the post-update state set, so Eqs. 2–4 never
re-scan the states.  Every decision (tie-breaks, spawn/merge order,
update arithmetic) is bit-identical to the scalar reference
implementation; ``tests/test_perf_kernels.py`` pins the equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .states import ModelState, StateSet


@dataclass(frozen=True)
class ClusterUpdate:
    """What one window's clustering pass did.

    Attributes
    ----------
    assignments:
        Row index in the window's observation matrix -> state id (Eq. 3
        applied with the *pre-update* state positions).
    spawned:
        Ids of states created for too-far observations.
    merged:
        ``(kept_id, dropped_id)`` pairs merged after the α update.
    sensor_assignments:
        Row index -> nearest state id over the *final* (post-Eq. 6,
        post-merge, post-mean-spawn) state set — exactly what Eq. 3
        yields when :func:`~repro.core.identification.identify_window`
        runs after the update, so the pipeline can thread these through
        instead of re-scanning the state set per sensor.
    observable_state:
        Eq. 2's ``o_i`` — nearest state to the window's overall mean
        over the final state set.  ``None`` when no overall mean was
        supplied to :meth:`OnlineStateClusterer.update`.
    mean_spawned:
        Id of the state spawned at the overall mean (coordinated attacks
        can pull the network-wide mean off every sensor's position), or
        ``None``.
    """

    assignments: List[int]
    spawned: List[int]
    merged: List["tuple[int, int]"]
    sensor_assignments: List[int] = field(default_factory=list)
    observable_state: Optional[int] = None
    mean_spawned: Optional[int] = None


class OnlineStateClusterer:
    """Maintains the model state set across observation windows.

    Parameters
    ----------
    initial_vectors:
        Initial state estimates (Table 1 uses 6, from offline clustering
        of historical data; random initialisation also works, per the
        paper's footnote 5).
    alpha:
        Eq. 6 learning factor in (0, 1); Table 1 value 0.10.
    spawn_threshold:
        An observation farther than this from every state spawns a new
        state at its position.
    merge_threshold:
        Two states closer than this merge into one.
    max_states:
        Safety valve: never grow beyond this many states (the paper
        warns against "too many model states" breaking the majority
        assumption).
    """

    def __init__(
        self,
        initial_vectors: Sequence[np.ndarray],
        alpha: float = 0.10,
        spawn_threshold: float = 6.0,
        merge_threshold: float = 3.0,
        max_states: int = 24,
        kernels: "Optional[object]" = None,
    ):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if spawn_threshold <= 0 or merge_threshold <= 0:
            raise ValueError("thresholds must be positive")
        if merge_threshold >= spawn_threshold:
            raise ValueError("merge_threshold must be below spawn_threshold")
        if max_states < 2:
            raise ValueError("max_states must be at least 2")
        self.alpha = alpha
        self.spawn_threshold = spawn_threshold
        self.merge_threshold = merge_threshold
        self.max_states = max_states
        self.states = StateSet(initial_vectors, kernels=kernels)
        if len(self.states) == 0:
            raise ValueError("need at least one initial state")
        #: Reused ``(N+1, d)`` buffer for the fused mean+observations
        #: query (reallocated only when the window shape changes).
        self._points_scratch: Optional[np.ndarray] = None

    # -- queries ---------------------------------------------------------

    def assign(self, point: np.ndarray) -> int:
        """Eq. 3: id of the nearest state to ``point`` (no side effects).

        Raises
        ------
        ValueError
            If ``point`` contains NaN/Inf: a non-finite reading has no
            meaningful nearest state and must never reach the clusterer
            (the collector quarantines such messages; the pipeline drops
            any that slip through).
        """
        point = np.asarray(point, dtype=float)
        if not np.all(np.isfinite(point)):
            raise ValueError("cannot assign a non-finite observation to a state")
        state, _ = self.states.nearest(point)
        return state.state_id

    def assign_batch(self, points: np.ndarray) -> List[int]:
        """Eq. 3 for every row of ``points`` in one batched kernel."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if not np.all(np.isfinite(points)):
            raise ValueError("cannot assign a non-finite observation to a state")
        return self.states.assign_batch(points)

    def resolve(self, state_id: int) -> int:
        """Follow merge aliases for an id issued in an earlier window."""
        return self.states.resolve(state_id)

    def maybe_spawn(self, point: np.ndarray) -> Optional[int]:
        """Spawn a state at ``point`` if no existing state explains it.

        Used for the window's *overall mean* (Eq. 2's input): coordinated
        attacks can pull the network-wide mean to a position no
        individual sensor reports, and the state set must be able to
        describe that observable condition ("the module should expand the
        current set of states when appropriate", §3.1).
        """
        point = np.asarray(point, dtype=float)
        if not np.all(np.isfinite(point)):
            raise ValueError("cannot spawn a state at a non-finite position")
        _, distance = self.states.nearest(point)
        if distance > self.spawn_threshold and len(self.states) < self.max_states:
            return self.states.spawn(point).state_id
        return None

    # -- the per-window update -------------------------------------------

    def update(
        self,
        observations: np.ndarray,
        overall_mean: Optional[np.ndarray] = None,
        *,
        trusted: bool = False,
        full_mean: Optional[np.ndarray] = None,
    ) -> ClusterUpdate:
        """Run one full clustering pass over a window's observations.

        Parameters
        ----------
        observations:
            ``(N, d)`` matrix; one row per observation source.
        overall_mean:
            The window's overall mean (Eq. 2's input).  When given, the
            pass also performs the mean-spawn check and returns the final
            per-row assignments plus the observable state computed over
            the post-update state set, replicating exactly what a
            subsequent ``maybe_spawn`` + ``identify_window`` pair used to
            do in separate scans.
        trusted:
            The caller certifies ``observations`` is a non-empty all-
            finite float ``(N, d)`` array, ``overall_mean`` a finite
            float ``(d,)`` array, and that it already holds
            ``np.errstate(over="ignore")`` — the fused pipeline verifies
            all three in its whole-trace prepass, so the per-window
            coercions, finiteness guards, and fp-state saves are skipped.
        full_mean:
            Optional precomputed ``np.mean(observations, axis=0)``
            (bit-identical, e.g. the prepass's grouped ``bincount``
            sums).  Used by the Eq. 6 learning update when every row
            lands in a single group — the common healthy window.

        Returns
        -------
        ClusterUpdate
            Assignments (by pre-update positions), spawned and merged
            state ids, and the post-update identification inputs.
        """
        if trusted:
            return self._update_inner(observations, overall_mean, True, full_mean)
        observations = np.atleast_2d(np.asarray(observations, dtype=float))
        if observations.size == 0:
            return ClusterUpdate(assignments=[], spawned=[], merged=[])
        if not np.all(np.isfinite(observations)):
            # A single NaN/Inf row would poison every centroid it touches
            # through the Eq. 6 convex update; reject the window outright.
            raise ValueError("observations contain non-finite values")
        # One fp-state save covers every distance kernel of the pass
        # (huge-magnitude observations legitimately saturate to inf).
        with np.errstate(over="ignore"):
            return self._update_inner(observations, overall_mean, False, full_mean)

    def _update_inner(
        self,
        observations: np.ndarray,
        overall_mean: Optional[np.ndarray],
        mean_checked: bool,
        full_mean: Optional[np.ndarray] = None,
    ) -> ClusterUpdate:
        # One (N, M) distance matrix against the pre-window states feeds
        # both the sequential spawn checks and the Eq. 3 assignments.
        base_distances, base_ids = self.states._distances_unguarded(observations)
        spawned = self._spawn_far_observations(observations, base_distances)
        assignments = self._assign_with_spawned(
            observations, base_distances, base_ids, spawned
        )
        self._apply_learning_update(observations, assignments, full_mean)
        merged = self._merge_close_states()

        mean_spawned: Optional[int] = None
        sensor_assignments: List[int] = []
        observable_state: Optional[int] = None
        if overall_mean is not None:
            # Fused mean-spawn check + final Eq. 2/3 pass: one batched
            # ``(N+1, M)`` query over the settled state set feeds both
            # (``maybe_spawn`` + ``assign_batch`` used to scan twice).
            # A mean spawn appends its one distance column — same
            # subtract/square/sum as a full recompute, and the new id is
            # the largest so column order (and the argmin tie-break)
            # matches a rebuilt matrix bit-for-bit.
            if not mean_checked:
                overall_mean = np.asarray(overall_mean, dtype=float)
                if not np.all(np.isfinite(overall_mean)):
                    raise ValueError(
                        "cannot spawn a state at a non-finite position"
                    )
            n_rows = observations.shape[0]
            scratch = self._points_scratch
            if scratch is None or scratch.shape != (
                n_rows + 1,
                observations.shape[1],
            ):
                scratch = self._points_scratch = np.empty(
                    (n_rows + 1, observations.shape[1])
                )
            scratch[:n_rows] = observations
            scratch[n_rows] = overall_mean
            points = scratch
            distances, ids = self.states._distances_unguarded(points)
            columns = np.argmin(distances, axis=1)
            # The mean's distance to its nearest state IS the entry its
            # argmin picked, so no separate ``.min()`` reduction runs.
            mean_distance = float(distances[-1, columns[-1]])
            if (
                mean_distance > self.spawn_threshold
                and len(self.states) < self.max_states
            ):
                state = self.states.spawn(points[-1])
                mean_spawned = state.state_id
                diff = points - state.vector
                extra = np.sqrt(np.einsum("nd,nd->n", diff, diff))
                distances = np.hstack([distances, extra[:, None]])
                ids = list(ids) + [mean_spawned]
                columns = np.argmin(distances, axis=1)
            final = [ids[column] for column in columns]
            sensor_assignments = final[:-1]
            observable_state = final[-1]
        else:
            sensor_assignments = self.states.assign_batch(observations)

        return ClusterUpdate(
            assignments=self.states.resolve_batch(assignments),
            spawned=spawned,
            merged=merged,
            sensor_assignments=sensor_assignments,
            observable_state=observable_state,
            mean_spawned=mean_spawned,
        )

    def _spawn_far_observations(
        self, observations: np.ndarray, base_distances: np.ndarray
    ) -> List[int]:
        """Create states for observations no existing state explains.

        ``base_distances`` is the precomputed ``(N, M)`` matrix against
        the pre-window states; only distances to states spawned *during*
        this loop (rare) are computed incrementally, preserving the
        scalar path's row-by-row semantics where an early spawn can
        explain a later observation.
        """
        spawned: List[int] = []
        spawned_vectors: List[np.ndarray] = []
        min_base = (
            base_distances.min(axis=1)
            if base_distances.shape[1]
            else np.full(observations.shape[0], np.inf)
        )
        if not float(min_base.max()) > self.spawn_threshold:
            # No observation clears the threshold against the pre-window
            # states, so the sequential scan cannot spawn (states created
            # mid-loop only ever *shrink* later rows' distances).
            return spawned
        for row_index, row in enumerate(observations):
            distance = float(min_base[row_index])
            if spawned_vectors:
                with np.errstate(over="ignore"):  # inf distances compare fine
                    diff = np.vstack(spawned_vectors) - row
                    distance = min(
                        distance,
                        float(np.sqrt(np.einsum("md,md->m", diff, diff)).min()),
                    )
            if distance > self.spawn_threshold and len(self.states) < self.max_states:
                state = self.states.spawn(row)
                spawned.append(state.state_id)
                spawned_vectors.append(state.vector)
        return spawned

    def _assign_with_spawned(
        self,
        observations: np.ndarray,
        base_distances: np.ndarray,
        base_ids: List[int],
        spawned: List[int],
    ) -> List[int]:
        """Eq. 3 assignments over pre-update positions, reusing the base
        distance matrix and appending columns for freshly spawned states.

        Spawned ids are strictly larger than every pre-existing id, so
        horizontally stacking their distance columns keeps the matrix in
        id order and ``argmin``'s first-minimum tie-break identical to
        the scalar scan.
        """
        if not spawned:
            columns, ids = base_distances, base_ids
        else:
            spawned_matrix = np.vstack(
                [self.states.get(state_id).vector for state_id in spawned]
            )
            with np.errstate(over="ignore"):  # inf distances compare fine
                diff = observations[:, None, :] - spawned_matrix[None, :, :]
                spawned_distances = np.sqrt(
                    np.einsum("nmd,nmd->nm", diff, diff)
                )
            columns = np.hstack([base_distances, spawned_distances])
            ids = list(base_ids) + list(spawned)
        return [ids[column] for column in np.argmin(columns, axis=1)]

    def _apply_learning_update(
        self,
        observations: np.ndarray,
        assignments: List[int],
        full_mean: Optional[np.ndarray] = None,
    ) -> List[int]:
        """Eq. 5 + Eq. 6: move each visited state toward its group mean.

        ``full_mean``, when given, must equal
        ``np.mean(observations, axis=0)`` bit-for-bit (see
        :meth:`update`); it short-cuts the single-group reduction.
        Returns the ids of the states that were moved, in group
        first-occurrence order, so :meth:`update` knows which distance
        columns went stale.
        """
        first = assignments[0]
        if assignments.count(first) == len(assignments):
            # Healthy-window fast path: every row landed in one group, so
            # the group mean is the mean of the whole matrix (bit-equal
            # to the mean of its copy) and only one centroid moves.
            state = self.states.get(first)
            group_mean = (
                full_mean
                if full_mean is not None
                else np.mean(observations, axis=0)
            )
            self.states.update_vector(
                first,
                (1.0 - self.alpha) * state.vector + self.alpha * group_mean,
            )
            state.visits += 1
            return [first]
        groups: Dict[int, List[int]] = {}
        for row_index, state_id in enumerate(assignments):
            groups.setdefault(state_id, []).append(row_index)
        for state_id, row_indices in groups.items():
            state = self.states.get(state_id)
            group_mean = np.mean(observations[row_indices], axis=0)
            self.states.update_vector(
                state_id,
                (1.0 - self.alpha) * state.vector + self.alpha * group_mean,
            )
            state.visits += 1
        return list(groups)

    def _merge_close_states(self) -> List["tuple[int, int]"]:
        """Repeatedly merge the closest pair while it is under threshold."""
        merged: List["tuple[int, int]"] = []
        while True:
            if self.states.pair_distance_at_least(self.merge_threshold):
                # The certified bound proves a scan could not find a pair
                # under threshold — no merge would happen, no state would
                # change, so skipping the scan leaves behaviour identical.
                break
            # Callers hold np.errstate(over="ignore") via ``update``.
            pair = self.states._closest_pair_unguarded()
            if pair is None or pair[2] >= self.merge_threshold:
                break
            first_id, second_id, _ = pair
            first = self.states.get(first_id)
            second = self.states.get(second_id)
            # Keep the better-established state so ids referenced by the
            # HMMs stay live as long as possible.
            if first.visits >= second.visits:
                keep, drop = first_id, second_id
            else:
                keep, drop = second_id, first_id
            self.states.merge(keep, drop)
            merged.append((keep, drop))
        return merged

    def force_merge_to(self, target: int) -> List["tuple[int, int]"]:
        """Repair action: merge closest pairs until at most ``target`` states.

        Unlike :meth:`_merge_close_states` this ignores the merge
        threshold — it is the supervisor's bounded response to an
        exploded state set (``n_states > max_states`` should be
        unreachable, but a corrupted restore or a future bug must not
        leave the majority assumption permanently broken).
        """
        if target < 1:
            raise ValueError("target must be at least 1")
        merged: List["tuple[int, int]"] = []
        while len(self.states) > target:
            pair = self.states.closest_pair()
            if pair is None:
                break
            first = self.states.get(pair[0])
            second = self.states.get(pair[1])
            if first.visits >= second.visits:
                keep, drop = first.state_id, second.state_id
            else:
                keep, drop = second.state_id, first.state_id
            self.states.merge(keep, drop)
            merged.append((keep, drop))
        return merged

    # -- convenience -------------------------------------------------------

    @property
    def n_states(self) -> int:
        """Current number of live model states M."""
        return len(self.states)

    def state_vector(self, state_id: int) -> np.ndarray:
        """Current attribute estimate of a state (following aliases)."""
        return self.states.get(state_id).vector.copy()

    def state_labels(self) -> Dict[int, str]:
        """state_id -> display label for reports."""
        return self.states.labels()

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot: tuning knobs plus the full state set."""
        return {
            "alpha": self.alpha,
            "spawn_threshold": self.spawn_threshold,
            "merge_threshold": self.merge_threshold,
            "max_states": self.max_states,
            "states": self.states.state_dict(),
        }

    @classmethod
    def from_state_dict(cls, payload: Dict[str, object]) -> "OnlineStateClusterer":
        """Rebuild a clusterer from :meth:`state_dict` output.

        Applies the constructor's validation to the payload rather than
        silently constructing an inconsistent clusterer: ``max_states``
        below 2 and state sets whose centroid dimensions disagree are
        rejected with a clear error.
        """
        max_states = int(payload["max_states"])
        if max_states < 2:
            raise ValueError(
                f"clusterer payload has max_states={max_states}; "
                "max_states must be at least 2"
            )
        states = StateSet.from_state_dict(payload["states"])
        dims = {int(state.vector.shape[0]) for state in states}
        if len(dims) > 1:
            raise ValueError(
                "clusterer payload has states of disagreeing centroid "
                f"dimensions {sorted(dims)}"
            )
        if len(states) > max_states:
            raise ValueError(
                f"clusterer payload holds {len(states)} states, more than "
                f"its max_states={max_states}"
            )
        clusterer = cls(
            initial_vectors=[np.zeros(1)],
            alpha=float(payload["alpha"]),
            spawn_threshold=float(payload["spawn_threshold"]),
            merge_threshold=float(payload["merge_threshold"]),
            max_states=max_states,
        )
        clusterer.states = states
        return clusterer
