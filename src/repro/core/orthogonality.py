"""Structural analysis of emission matrices (paper §3.4).

The classification methodology inspects whether the rows and columns of
an observation-symbol probability matrix ``B`` are *orthogonal*:

* rows: ``∀ i≠j: Σ_k b_ik b_jk ≈ 0`` — different hidden states generate
  different observation symbols;
* columns: ``∀ i≠j: Σ_k b_ki b_kj ≈ 0`` — different observation symbols
  come from different hidden states;
* diagonal: ``Σ_k b_ik² ≈ 1`` — each state's emission is concentrated.

The paper's empirical tolerances (§4.1: cross terms < 0.1, self terms
> 0.8) are the defaults here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .online_hmm import EmissionMatrix

#: Default tolerance on row cross terms.  A Dynamic Deletion collapses
#: two rows onto the same symbol (cross ≈ 1.0), while single-sensor
#: faults only leak a little mass to neighbouring observable states
#: (the paper's own Table 2 shows 0.11/0.17 leakage), so the row
#: threshold sits well above the leakage band and well below collapse.
DEFAULT_ROW_TOLERANCE = 0.45

#: Default tolerance on column cross terms.  A Dynamic Creation splits
#: one row across two symbols; the resulting column cross term is
#: ``b(1-b) <= 0.25``, so the column threshold must be tighter than the
#: row one.  The paper's empirical "< 0.1" tolerance applies here.
DEFAULT_COLUMN_TOLERANCE = 0.12

#: The paper's empirical tolerance on self (diagonal) Gram terms.
DEFAULT_SELF_TOLERANCE = 0.8


def row_gram(matrix: np.ndarray) -> np.ndarray:
    """``G[i, j] = Σ_k b_ik b_jk`` — pairwise row inner products."""
    matrix = np.asarray(matrix, dtype=float)
    return matrix @ matrix.T


def column_gram(matrix: np.ndarray) -> np.ndarray:
    """``G[i, j] = Σ_k b_ki b_kj`` — pairwise column inner products."""
    matrix = np.asarray(matrix, dtype=float)
    return matrix.T @ matrix


@dataclass(frozen=True)
class OrthogonalityReport:
    """Outcome of the §3.4 orthogonality analysis of one ``B`` matrix.

    Attributes
    ----------
    rows_orthogonal:
        True when no pair of rows has a cross term above tolerance.
    columns_orthogonal:
        True when no pair of columns has a cross term above tolerance.
    max_row_cross / max_column_cross:
        Largest off-diagonal Gram entries (0 for 1x1 matrices).
    min_row_self:
        Smallest diagonal row-Gram entry — how concentrated the least
        concentrated row is.
    offending_row_pairs / offending_column_pairs:
        The (state id, state id) / (symbol id, symbol id) pairs whose
        cross terms exceeded tolerance, as classification evidence.
    """

    rows_orthogonal: bool
    columns_orthogonal: bool
    max_row_cross: float
    max_column_cross: float
    min_row_self: float
    offending_row_pairs: Tuple[Tuple[int, int], ...]
    offending_column_pairs: Tuple[Tuple[int, int], ...]

    @property
    def fully_orthogonal(self) -> bool:
        """Rows and columns both orthogonal — the error-free/one-to-one shape."""
        return self.rows_orthogonal and self.columns_orthogonal


def _offending_pairs(
    gram: np.ndarray, labels: Tuple[int, ...], tolerance: float
) -> List[Tuple[int, int]]:
    pairs: List[Tuple[int, int]] = []
    n = gram.shape[0]
    for i in range(n):
        for j in range(i + 1, n):
            if gram[i, j] > tolerance:
                pairs.append((labels[i], labels[j]))
    return pairs


def analyze_orthogonality(
    emission: EmissionMatrix,
    row_tolerance: float = DEFAULT_ROW_TOLERANCE,
    column_tolerance: float = DEFAULT_COLUMN_TOLERANCE,
    self_tolerance: float = DEFAULT_SELF_TOLERANCE,
) -> OrthogonalityReport:
    """Run the full row/column orthogonality analysis on a ``B`` snapshot.

    An empty matrix is reported as fully orthogonal (no evidence of any
    structure violation).
    """
    matrix = emission.matrix
    if matrix.size == 0:
        return OrthogonalityReport(
            rows_orthogonal=True,
            columns_orthogonal=True,
            max_row_cross=0.0,
            max_column_cross=0.0,
            min_row_self=1.0,
            offending_row_pairs=(),
            offending_column_pairs=(),
        )

    rows = row_gram(matrix)
    cols = column_gram(matrix)

    def max_off_diagonal(gram: np.ndarray) -> float:
        if gram.shape[0] < 2:
            return 0.0
        off = gram - np.diag(np.diag(gram))
        return float(off.max())

    max_row_cross = max_off_diagonal(rows)
    max_column_cross = max_off_diagonal(cols)
    min_row_self = float(np.diag(rows).min())

    return OrthogonalityReport(
        rows_orthogonal=max_row_cross <= row_tolerance,
        columns_orthogonal=max_column_cross <= column_tolerance,
        max_row_cross=max_row_cross,
        max_column_cross=max_column_cross,
        min_row_self=min_row_self,
        offending_row_pairs=tuple(
            _offending_pairs(rows, emission.state_ids, row_tolerance)
        ),
        offending_column_pairs=tuple(
            _offending_pairs(cols, emission.symbol_ids, column_tolerance)
        ),
    )


def has_all_ones_column(
    emission: EmissionMatrix, threshold: float = 0.6
) -> "tuple[bool, int]":
    """Check the stuck-at signature (paper Eq. 7, with tolerance).

    A stuck-at fault makes *every* hidden state emit (approximately) the
    same symbol: one column of ``B`` holds (approximately) all the mass
    of every row.  The paper's own Table 3 passes only approximately
    (one row holds 0.67), so the default threshold is forgiving.

    Returns
    -------
    (matches, symbol_id):
        ``matches`` is True when some column k satisfies
        ``b_ik >= threshold`` for all rows i; ``symbol_id`` is that
        column's symbol id (or ``-2**30`` when no column matches).
    """
    matrix = emission.matrix
    if matrix.size == 0:
        return False, -(2**30)
    column_minima = matrix.min(axis=0)
    best = int(np.argmax(column_minima))
    if column_minima[best] >= threshold:
        return True, emission.symbol_ids[best]
    return False, -(2**30)
