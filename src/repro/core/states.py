"""Model states: the shared vocabulary of the whole methodology.

The Model State Identification module maintains a small set
``S = {s_1..s_M}`` of attribute vectors that "synthetically describe the
physical conditions traversed by the sensed phenomenon and by
error/attack data" (§3.1).  Both HMMs use these states as hidden states
*and* observation symbols, so state identity must survive online updates,
merges, and spawns — hence every state carries a stable integer id that
never gets reused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Sentinel id for the fictitious ⊥ symbol used by error/attack tracks
#: when a tracked sensor agrees with the majority (§3.1).
BOTTOM_STATE_ID = -1


@dataclass
class ModelState:
    """One model state: a stable id plus a drifting attribute vector.

    Attributes
    ----------
    state_id:
        Stable, never-reused identifier.
    vector:
        Current attribute estimate (updated online via Eq. 6).
    visits:
        How many window updates mapped at least one observation here;
        used to prune spurious states (Fig. 7 discussion).
    """

    state_id: int
    vector: np.ndarray
    visits: int = 0

    def __post_init__(self) -> None:
        self.vector = np.asarray(self.vector, dtype=float).copy()
        if self.vector.ndim != 1 or self.vector.size == 0:
            raise ValueError("state vector must be a non-empty 1-D array")

    def distance_to(self, point: np.ndarray) -> float:
        """Euclidean distance from this state to ``point``."""
        return float(np.linalg.norm(self.vector - np.asarray(point, dtype=float)))

    def label(self) -> str:
        """The paper's ``(temp, humidity)``-style display label."""
        coords = ",".join(f"{x:.0f}" for x in self.vector)
        return f"({coords})"


class StateSet:
    """An ordered, id-stable collection of model states.

    Supports the three structural operations the online clusterer needs:
    nearest-state queries, spawning, and merging.  Merged-away ids are
    remembered in an alias table so downstream consumers (HMMs, tracks)
    can keep referring to them.
    """

    def __init__(self, initial_vectors: Optional[Sequence[np.ndarray]] = None):
        self._states: Dict[int, ModelState] = {}
        self._aliases: Dict[int, int] = {}
        self._next_id = 0
        if initial_vectors is not None:
            for vector in initial_vectors:
                self.spawn(vector)

    # -- basic container behaviour -------------------------------------

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[ModelState]:
        return iter(sorted(self._states.values(), key=lambda s: s.state_id))

    def __contains__(self, state_id: int) -> bool:
        return self.resolve(state_id) in self._states

    @property
    def state_ids(self) -> List[int]:
        """Live state ids in creation order."""
        return sorted(self._states.keys())

    def get(self, state_id: int) -> ModelState:
        """Fetch a state by id, following merge aliases.

        Raises ``KeyError`` for ids that never existed.
        """
        return self._states[self.resolve(state_id)]

    def resolve(self, state_id: int) -> int:
        """Follow the alias chain of a (possibly merged-away) id."""
        seen = set()
        while state_id in self._aliases:
            if state_id in seen:  # pragma: no cover - defensive
                raise RuntimeError("alias cycle in StateSet")
            seen.add(state_id)
            state_id = self._aliases[state_id]
        return state_id

    # -- structural operations ------------------------------------------

    def spawn(self, vector: np.ndarray) -> ModelState:
        """Create a new state at ``vector`` with a fresh id."""
        state = ModelState(state_id=self._next_id, vector=np.asarray(vector))
        self._states[state.state_id] = state
        self._next_id += 1
        return state

    def merge(self, keep_id: int, drop_id: int) -> ModelState:
        """Merge state ``drop_id`` into ``keep_id``.

        The survivor's vector becomes the visit-weighted mean of the two;
        the dropped id becomes an alias of the survivor.
        """
        keep_id = self.resolve(keep_id)
        drop_id = self.resolve(drop_id)
        if keep_id == drop_id:
            return self._states[keep_id]
        keep = self._states[keep_id]
        drop = self._states.pop(drop_id)
        total = max(keep.visits + drop.visits, 1)
        weight_keep = max(keep.visits, 1) / total if total else 0.5
        keep.vector = weight_keep * keep.vector + (1 - weight_keep) * drop.vector
        keep.visits += drop.visits
        self._aliases[drop_id] = keep_id
        return keep

    # -- queries ----------------------------------------------------------

    def nearest(self, point: np.ndarray) -> Tuple[ModelState, float]:
        """The live state closest to ``point`` and its distance.

        Raises ``ValueError`` on an empty set.
        """
        if not self._states:
            raise ValueError("StateSet is empty")
        point = np.asarray(point, dtype=float)
        best: Optional[ModelState] = None
        best_distance = float("inf")
        for state in self:
            distance = state.distance_to(point)
            if distance < best_distance:
                best = state
                best_distance = distance
        assert best is not None
        return best, best_distance

    def vectors(self) -> np.ndarray:
        """``(M, d)`` matrix of live state vectors, in id order."""
        if not self._states:
            return np.zeros((0, 0))
        return np.vstack([state.vector for state in self])

    def closest_pair(self) -> Optional[Tuple[int, int, float]]:
        """The two closest live states and their distance (None if < 2)."""
        states = list(self)
        if len(states) < 2:
            return None
        best: Optional[Tuple[int, int, float]] = None
        for i, first in enumerate(states):
            for second in states[i + 1 :]:
                distance = first.distance_to(second.vector)
                if best is None or distance < best[2]:
                    best = (first.state_id, second.state_id, distance)
        return best

    def labels(self) -> Dict[int, str]:
        """state_id -> ``(t,h)`` display label, for reports."""
        return {state.state_id: state.label() for state in self}

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of the full set (states, aliases, id counter)."""
        return {
            "next_id": self._next_id,
            "states": [
                {
                    "id": state.state_id,
                    "vector": [float(x) for x in state.vector],
                    "visits": state.visits,
                }
                for state in self
            ],
            "aliases": sorted(
                [dropped, kept] for dropped, kept in self._aliases.items()
            ),
        }

    @classmethod
    def from_state_dict(cls, payload: Dict[str, object]) -> "StateSet":
        """Rebuild a set from :meth:`state_dict` output (inverse operation)."""
        restored = cls()
        for entry in payload["states"]:
            state = ModelState(
                state_id=int(entry["id"]),
                vector=np.asarray(entry["vector"], dtype=float),
                visits=int(entry["visits"]),
            )
            restored._states[state.state_id] = state
        restored._aliases = {
            int(dropped): int(kept) for dropped, kept in payload["aliases"]
        }
        restored._next_id = int(payload["next_id"])
        return restored
