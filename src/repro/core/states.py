"""Model states: the shared vocabulary of the whole methodology.

The Model State Identification module maintains a small set
``S = {s_1..s_M}`` of attribute vectors that "synthetically describe the
physical conditions traversed by the sensed phenomenon and by
error/attack data" (§3.1).  Both HMMs use these states as hidden states
*and* observation symbols, so state identity must survive online updates,
merges, and spawns — hence every state carries a stable integer id that
never gets reused.

The set sits on the pipeline's per-window hot path (the procedure is
explicitly *on-the-fly*, so per-window cost on the collector node is a
first-class result).  Queries therefore run against a cached ``(M, d)``
matrix of state vectors: ``nearest``, ``assign_batch`` and
``closest_pair`` are single NumPy reductions instead of per-state Python
loops.  The cache is invalidated by the three mutating operations
(:meth:`spawn`, :meth:`merge`, :meth:`update_vector`); vector writes MUST
go through :meth:`update_vector` so the cache stays coherent.  All
vectorized queries break distance ties toward the lowest state id,
exactly like the scalar reference implementations they replaced
(``_nearest_scalar`` / ``_closest_pair_scalar``, kept for the
equivalence property tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Sentinel id for the fictitious ⊥ symbol used by error/attack tracks
#: when a tracked sensor agrees with the majority (§3.1).
BOTTOM_STATE_ID = -1

#: Memoised ``np.tril_indices(M)`` per M: ``closest_pair`` runs every
#: window and M stays tiny, so the index arrays are worth keeping.
_TRIL_CACHE: Dict[int, "tuple[np.ndarray, np.ndarray]"] = {}


def _tril_indices(n: int) -> "tuple[np.ndarray, np.ndarray]":
    indices = _TRIL_CACHE.get(n)
    if indices is None:
        indices = _TRIL_CACHE[n] = np.tril_indices(n)
    return indices


@dataclass
class ModelState:
    """One model state: a stable id plus a drifting attribute vector.

    Attributes
    ----------
    state_id:
        Stable, never-reused identifier.
    vector:
        Current attribute estimate (updated online via Eq. 6).  Inside a
        :class:`StateSet`, reassign it via ``StateSet.update_vector`` so
        the set's query cache stays coherent.
    visits:
        How many window updates mapped at least one observation here;
        used to prune spurious states (Fig. 7 discussion).
    """

    state_id: int
    vector: np.ndarray
    visits: int = 0

    def __post_init__(self) -> None:
        self.vector = np.asarray(self.vector, dtype=float).copy()
        if self.vector.ndim != 1 or self.vector.size == 0:
            raise ValueError("state vector must be a non-empty 1-D array")

    def distance_to(self, point: np.ndarray) -> float:
        """Euclidean distance from this state to ``point``."""
        with np.errstate(over="ignore"):  # huge magnitudes saturate to inf
            return float(
                np.linalg.norm(self.vector - np.asarray(point, dtype=float))
            )

    def label(self) -> str:
        """The paper's ``(temp, humidity)``-style display label."""
        coords = ",".join(f"{x:.0f}" for x in self.vector)
        return f"({coords})"


class StateSet:
    """An ordered, id-stable collection of model states.

    Supports the three structural operations the online clusterer needs:
    nearest-state queries, spawning, and merging.  Merged-away ids are
    remembered in an alias table so downstream consumers (HMMs, tracks)
    can keep referring to them.
    """

    def __init__(
        self,
        initial_vectors: Optional[Sequence[np.ndarray]] = None,
        kernels: "Optional[object]" = None,
    ):
        from ..backend import get_backend

        #: Distance-kernel implementations (repro.backend.KernelBackend);
        #: defaults to the NumPy reference backend.
        self._kernels = kernels if kernels is not None else get_backend("numpy")
        self._states: Dict[int, ModelState] = {}
        self._aliases: Dict[int, int] = {}
        self._next_id = 0
        #: Attribute dimensionality, remembered from the first state ever
        #: spawned so :meth:`vectors` can report ``(0, d)`` when emptied.
        self._dim: Optional[int] = None
        #: Lazily rebuilt ``(M, d)`` matrix of live vectors in id order,
        #: plus the ids labelling its rows.  ``None`` marks it stale.
        self._matrix: Optional[np.ndarray] = None
        self._matrix_ids: Optional[List[int]] = None
        #: Incrementally maintained ``(M, M)`` pairwise-distance matrix
        #: behind :meth:`closest_pair` (upper triangle only; diagonal and
        #: below pinned to ``inf``).  Structural edits patch it in place
        #: (spawn appends an inf row/col, merge/expel delete one);
        #: centroids moved via :meth:`update_vector`/:meth:`merge` land
        #: in ``_pair_dirty`` and only their rows/columns are recomputed
        #: on the next query.  ``None`` means "rebuild from scratch".
        self._pair_matrix: Optional[np.ndarray] = None
        self._pair_ids: Optional[List[int]] = None
        self._pair_dirty: "set[int]" = set()
        #: Owner-private scratch for the distance kernel (the NumPy
        #: flavor recycles its (diff, squared-norm) buffers in here,
        #: keyed implicitly by shape).  One dict per StateSet — never
        #: shared across instances, so interleaving two sets can never
        #: alias each other's buffers.
        self._distance_scratch: Dict[str, object] = {}
        #: Certified lower bound on the current minimum pairwise distance,
        #: or ``None`` when unknown.  Set to the found minimum after every
        #: :meth:`closest_pair` scan; an Eq. 6 move of magnitude ``δ`` can
        #: shrink any distance by at most ``δ`` (triangle inequality), so
        #: :meth:`update_vector` decays the bound instead of voiding it.
        #: Spawns and merges introduce/relocate pairs unpredictably and
        #: reset it.  Every decay over-subtracts a relative slack so
        #: floating-point drift can never certify a distance the next
        #: scan would actually measure below the bound.
        self._pair_min_bound: Optional[float] = None
        if initial_vectors is not None:
            for vector in initial_vectors:
                self.spawn(vector)

    # -- basic container behaviour -------------------------------------

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[ModelState]:
        return iter(sorted(self._states.values(), key=lambda s: s.state_id))

    def __contains__(self, state_id: int) -> bool:
        return self.resolve(state_id) in self._states

    @property
    def state_ids(self) -> List[int]:
        """Live state ids in creation order."""
        return sorted(self._states.keys())

    def get(self, state_id: int) -> ModelState:
        """Fetch a state by id, following merge aliases.

        Raises ``KeyError`` for ids that never existed.
        """
        return self._states[self.resolve(state_id)]

    def resolve(self, state_id: int) -> int:
        """Follow the alias chain of a (possibly merged-away) id."""
        seen = set()
        while state_id in self._aliases:
            if state_id in seen:  # pragma: no cover - defensive
                raise RuntimeError("alias cycle in StateSet")
            seen.add(state_id)
            state_id = self._aliases[state_id]
        return state_id

    def resolve_batch(self, state_ids: Sequence[int]) -> List[int]:
        """Resolve many ids at once, walking each alias chain only once.

        ``_sequence_model`` resolves thousands of window entries that hit
        the same handful of merged-away ids; memoising the chain walk
        (with path compression inside the memo) turns that from
        O(sequence × chain length) into O(sequence + chains).  The alias
        table itself is left untouched so checkpoints of identical runs
        stay byte-identical regardless of query history.
        """
        if not self._aliases:
            return list(state_ids)
        memo: Dict[int, int] = {}
        resolved: List[int] = []
        for state_id in state_ids:
            root = memo.get(state_id)
            if root is None:
                chain = []
                root = state_id
                while root in self._aliases:
                    if root in memo:
                        root = memo[root]
                        break
                    chain.append(root)
                    root = self._aliases[root]
                for link in chain:  # path compression, local to the memo
                    memo[link] = root
                memo[state_id] = root
            resolved.append(root)
        return resolved

    # -- the query cache --------------------------------------------------

    def _invalidate(self) -> None:
        self._matrix = None
        self._matrix_ids = None
        self._pair_matrix = None
        self._pair_ids = None
        self._pair_dirty.clear()
        self._pair_min_bound = None

    def _pair_forget(self, state_id: int) -> None:
        """Drop one state's row/column from the pairwise-distance cache."""
        if self._pair_matrix is None:
            return
        assert self._pair_ids is not None
        try:
            idx = self._pair_ids.index(state_id)
        except ValueError:  # pragma: no cover - defensive
            self._pair_matrix = None
            self._pair_ids = None
            self._pair_dirty.clear()
            return
        self._pair_matrix = np.delete(
            np.delete(self._pair_matrix, idx, axis=0), idx, axis=1
        )
        self._pair_ids.pop(idx)
        self._pair_dirty.discard(state_id)

    def _ensure_cache(self) -> "tuple[np.ndarray, List[int]]":
        """The ``(M, d)`` vector matrix and its row ids, rebuilt if stale."""
        if self._matrix is None:
            ids = sorted(self._states.keys())
            self._matrix_ids = ids
            self._matrix = (
                np.vstack([self._states[i].vector for i in ids])
                if ids
                else np.zeros((0, self._dim or 0))
            )
        assert self._matrix_ids is not None
        return self._matrix, self._matrix_ids

    def update_vector(self, state_id: int, vector: np.ndarray) -> None:
        """Reassign a state's vector, keeping the query cache coherent.

        This is the only sanctioned way to move a state (Eq. 6 updates go
        through here); writing ``state.vector`` directly would leave the
        cached matrix stale.
        """
        state = self.get(state_id)
        old = state.vector
        state.vector = np.asarray(vector, dtype=float)
        if self._matrix is not None:
            assert self._matrix_ids is not None
            row = self._matrix_ids.index(state.state_id)
            self._matrix[row] = state.vector
        if self._pair_matrix is not None:
            self._pair_dirty.add(state.state_id)
        bound = self._pair_min_bound
        if bound is not None and not math.isinf(bound):
            # A move of magnitude δ shrinks any pairwise distance by at
            # most δ.  Over-subtract a relative slack so rounding in the
            # decay (or in the distances themselves) can never leave the
            # bound above what the next scan would measure.  A NaN move
            # poisons the bound, forcing a scan — the conservative side.
            # An ``inf`` bound (under two live states at the last scan —
            # no pair exists to shrink) survives any move untouched;
            # running it through the decay would compute inf - inf = NaN
            # and force a pointless rescan every window.
            # Python-float accumulation: the vectors are tiny (d = 2 for
            # the paper's deployments) and this runs once per Eq. 6
            # update, so small-array NumPy overhead would dominate.
            moved_sq = 0.0
            for a, b in zip(state.vector.tolist(), old.tolist()):
                step = a - b
                moved_sq += step * step
            delta = math.sqrt(moved_sq)
            self._pair_min_bound = (
                (bound - delta) - (abs(bound) + delta) * 1e-12
            )

    # -- structural operations ------------------------------------------

    def spawn(self, vector: np.ndarray) -> ModelState:
        """Create a new state at ``vector`` with a fresh id."""
        state = ModelState(state_id=self._next_id, vector=np.asarray(vector))
        self._states[state.state_id] = state
        self._next_id += 1
        if self._dim is None:
            self._dim = int(state.vector.shape[0])
        self._matrix = None
        self._matrix_ids = None
        if self._pair_matrix is not None:
            assert self._pair_ids is not None
            # Fresh ids are strictly increasing, so appending keeps the
            # cache's id order sorted (matching ``_ensure_cache``).
            m = len(self._pair_ids)
            grown = np.full((m + 1, m + 1), np.inf)
            grown[:m, :m] = self._pair_matrix
            self._pair_matrix = grown
            self._pair_ids.append(state.state_id)
            self._pair_dirty.add(state.state_id)
        # The newcomer's pair distances are unknown until the next scan.
        self._pair_min_bound = None
        return state

    def expel(self, state_id: int, alias_to: Optional[int] = None) -> None:
        """Remove a state *without* folding its vector into a survivor.

        Unlike :meth:`merge` — whose visit-weighted vector average would
        propagate a poisoned (non-finite) centroid into the survivor —
        ``expel`` simply drops the state, optionally aliasing its id to
        ``alias_to`` so HMM histories recorded under the expelled id
        keep resolving.  This is a supervisor repair action, not part of
        the paper's procedure.
        """
        state_id = self.resolve(state_id)
        if state_id not in self._states:
            raise KeyError(state_id)
        self._states.pop(state_id)
        if alias_to is not None:
            target = self.resolve(alias_to)
            if target not in self._states:
                raise KeyError(alias_to)
            self._aliases[state_id] = target
        self._matrix = None
        self._matrix_ids = None
        self._pair_forget(state_id)

    def alias_defects(self) -> List[str]:
        """Integrity problems in the alias table (empty when healthy).

        Detects cycles (a chain that revisits an id, which would hang
        :meth:`resolve`) and dangling chains (a chain ending at an id
        that is neither live nor further aliased).  Walks the raw table
        directly — never through :meth:`resolve` — so it terminates even
        on a corrupted table.
        """
        defects: List[str] = []
        for start in sorted(self._aliases):
            seen = {start}
            current = self._aliases[start]
            while current in self._aliases:
                if current in seen:
                    defects.append(f"alias cycle through id {current}")
                    break
                seen.add(current)
                current = self._aliases[current]
            else:
                if current not in self._states:
                    defects.append(
                        f"alias chain from id {start} dangles at id {current}"
                    )
        return defects

    def repair_aliases(self) -> List[str]:
        """Break alias cycles / re-point dangling chains (repair action).

        Every alias participating in a cycle or dangling chain is
        re-pointed at the smallest live state id (deterministic), or
        dropped when no live state exists.  Returns descriptions of the
        performed edits.
        """
        actions: List[str] = []
        fallback = min(self._states) if self._states else None
        for start in sorted(self._aliases):
            seen = {start}
            current = self._aliases[start]
            broken = False
            while current in self._aliases:
                if current in seen:
                    broken = True
                    break
                seen.add(current)
                current = self._aliases[current]
            if not broken and current in self._states:
                continue
            if fallback is None:
                del self._aliases[start]
                actions.append(f"dropped unresolvable alias {start}")
            else:
                self._aliases[start] = fallback
                actions.append(f"re-pointed alias {start} -> {fallback}")
        return actions

    def merge(self, keep_id: int, drop_id: int) -> ModelState:
        """Merge state ``drop_id`` into ``keep_id``.

        The survivor's vector becomes the visit-weighted mean of the two;
        the dropped id becomes an alias of the survivor.
        """
        keep_id = self.resolve(keep_id)
        drop_id = self.resolve(drop_id)
        if keep_id == drop_id:
            return self._states[keep_id]
        keep = self._states[keep_id]
        drop = self._states.pop(drop_id)
        total = max(keep.visits + drop.visits, 1)
        weight_keep = max(keep.visits, 1) / total if total else 0.5
        keep.vector = weight_keep * keep.vector + (1 - weight_keep) * drop.vector
        keep.visits += drop.visits
        self._aliases[drop_id] = keep_id
        self._matrix = None
        self._matrix_ids = None
        self._pair_forget(drop_id)
        if self._pair_matrix is not None:
            self._pair_dirty.add(keep_id)
        # The survivor teleported to the weighted mean; its new pair
        # distances are unbounded below, so the certified bound dies.
        self._pair_min_bound = None
        return keep

    # -- queries ----------------------------------------------------------

    def distances_to(self, points: np.ndarray) -> "tuple[np.ndarray, List[int]]":
        """``(N, M)`` Euclidean distances from ``points`` to live states.

        Returns the distance matrix and the state ids labelling its
        columns (id order).  This is the single kernel behind
        :meth:`nearest`, :meth:`assign_batch` and the clusterer's
        one-pass window update.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        # Huge-magnitude observations (~1e300, seen under adversarial
        # floods) legitimately saturate their squared distances to inf;
        # comparisons against thresholds and argmin stay well-defined.
        with np.errstate(over="ignore"):
            return self._distances_unguarded(points)

    def _distances_unguarded(
        self, points: np.ndarray
    ) -> "tuple[np.ndarray, List[int]]":
        """:meth:`distances_to` body for hot callers that already hold a
        float ``(N, d)`` matrix and ``np.errstate(over="ignore")``."""
        matrix, ids = self._ensure_cache()
        if not ids:
            return np.zeros((points.shape[0], 0)), ids
        # The kernel lives in the active backend (repro.backend); the
        # NumPy flavor recycles its (N, M, d) difference tensor and
        # squared-norm buffer through this instance's private scratch
        # dict (the steady fused loop hits one shape for whole
        # stretches).  Only the returned distance matrix is freshly
        # allocated — callers hold on to it across further queries.
        return (
            self._kernels.pairwise_distances(
                points, matrix, self._distance_scratch
            ),
            ids,
        )

    def nearest(self, point: np.ndarray) -> Tuple[ModelState, float]:
        """The live state closest to ``point`` and its distance.

        Distance ties go to the lowest state id (``argmin`` returns the
        first minimum and columns are in id order, matching the scalar
        reference's strict-``<`` scan).  Raises ``ValueError`` on an
        empty set.
        """
        if not self._states:
            raise ValueError("StateSet is empty")
        distances, ids = self.distances_to(np.asarray(point, dtype=float))
        column = int(np.argmin(distances[0]))
        return self._states[ids[column]], float(distances[0, column])

    def assign_batch(self, points: np.ndarray) -> List[int]:
        """Nearest-state id for every row of ``points`` in one kernel.

        Ties break toward the lowest id, exactly like :meth:`nearest`.
        Raises ``ValueError`` on an empty set.
        """
        if not self._states:
            raise ValueError("StateSet is empty")
        distances, ids = self.distances_to(points)
        return [ids[column] for column in np.argmin(distances, axis=1)]

    def _nearest_scalar(self, point: np.ndarray) -> Tuple[ModelState, float]:
        """Scalar reference for :meth:`nearest` (kept for property tests)."""
        if not self._states:
            raise ValueError("StateSet is empty")
        point = np.asarray(point, dtype=float)
        best: Optional[ModelState] = None
        best_distance = float("inf")
        for state in self:
            distance = state.distance_to(point)
            if distance < best_distance:
                best = state
                best_distance = distance
        assert best is not None
        return best, best_distance

    def vectors(self) -> np.ndarray:
        """``(M, d)`` matrix of live state vectors, in id order.

        An emptied set still reports ``(0, d)`` once the dimensionality
        is known (mirrors the empty-window shape contract), so callers
        can ``vstack``/iterate without special-casing.
        """
        matrix, _ = self._ensure_cache()
        return matrix.copy()

    def closest_pair(self) -> Optional[Tuple[int, int, float]]:
        """The two closest live states and their distance (None if < 2).

        Ties break toward the lexicographically smallest id pair, like
        the scalar reference's ordered double loop.
        """
        with np.errstate(over="ignore"):  # inf distances are comparable
            return self._closest_pair_unguarded()

    def _closest_pair_unguarded(self) -> Optional[Tuple[int, int, float]]:
        """:meth:`closest_pair` body for hot callers that already hold
        ``np.errstate(over="ignore")``."""
        matrix, ids = self._ensure_cache()
        if len(ids) < 2:
            self._pair_min_bound = math.inf
            return None
        m = len(ids)
        if (
            self._pair_matrix is None
            or self._pair_ids != ids
            # Patching k dirty rows costs about k row kernels plus the
            # final argmin; the full rebuild is one (M, M) kernel.  For
            # small sets or mostly-dirty caches the rebuild is cheaper,
            # and both produce bit-identical entries.
            or 2 * len(self._pair_dirty) >= m
        ):
            diff = matrix[:, None, :] - matrix[None, :, :]
            distances = np.sqrt(np.einsum("ijd,ijd->ij", diff, diff))
            distances[_tril_indices(m)] = np.inf
            self._pair_matrix = distances
            self._pair_ids = list(ids)
            self._pair_dirty.clear()
        elif self._pair_dirty:
            # Recompute only the rows/columns of centroids that moved.
            # Each refreshed entry is the same subtraction/square/sum the
            # full rebuild performs (up to an exact sign flip under the
            # square), so the cache stays bit-identical to a rebuild.
            pair = self._pair_matrix
            if len(self._pair_dirty) == 1:
                # Eq. 6 usually moves exactly one centroid per window;
                # one (M, d) kernel refreshes its row and column.
                i = ids.index(self._pair_dirty.pop())
                diff = matrix[i] - matrix
                row = np.sqrt(np.einsum("md,md->m", diff, diff))
                pair[i, i + 1 :] = row[i + 1 :]
                pair[:i, i] = row[:i]
            else:
                dirty = sorted(ids.index(s) for s in self._pair_dirty)
                diff = matrix[dirty][:, None, :] - matrix[None, :, :]
                rows = np.sqrt(np.einsum("dmk,dmk->dm", diff, diff))
                for r, i in enumerate(dirty):
                    pair[i, i + 1 :] = rows[r, i + 1 :]
                    pair[:i, i] = rows[r, :i]
                self._pair_dirty.clear()
        flat = int(np.argmin(self._pair_matrix))
        i, j = divmod(flat, m)
        best = float(self._pair_matrix[i, j])
        # Shave a relative slack off the measured minimum so distance
        # rounding can never make a later scan measure below the bound.
        self._pair_min_bound = best - abs(best) * 1e-12
        return ids[i], ids[j], best

    def peek_decayed_pair_bound(self, delta: float) -> Optional[float]:
        """The pair bound as it would stand after a move of ``delta``,
        without committing it (same slack as :meth:`update_vector`)."""
        bound = self._pair_min_bound
        if bound is None:
            return None
        if math.isinf(bound):
            # No pair existed at the last scan; a centroid move cannot
            # create one, so the bound stays infinite (the IEEE decay
            # would produce inf - inf = NaN and fail certification).
            return bound
        return (bound - delta) - (abs(bound) + delta) * 1e-12

    def commit_pair_bound(self, bound: Optional[float]) -> None:
        """Store a bound previously obtained from
        :meth:`peek_decayed_pair_bound` (steady-stretch commit step)."""
        self._pair_min_bound = bound

    def apply_steady_motion(
        self, state_id: int, vector: Sequence[float], visit_increment: int
    ) -> None:
        """Write back a centroid that was evolved outside the set.

        The fused pipeline's steady-stretch path advances one centroid's
        Eq. 6 recurrence in Python floats (bit-identical arithmetic) and
        folds the result back here on exit.  The caller has already
        decayed the pair bound once per intermediate move, so this only
        refreshes the vector caches and the visit count.
        """
        state = self.get(state_id)
        state.vector = np.asarray(vector, dtype=float)
        if self._matrix is not None:
            assert self._matrix_ids is not None
            row = self._matrix_ids.index(state.state_id)
            self._matrix[row] = state.vector
        if self._pair_matrix is not None:
            self._pair_dirty.add(state.state_id)
        state.visits += visit_increment

    def pair_distance_at_least(self, threshold: float) -> bool:
        """True when the certified bound proves no pair is closer than
        ``threshold`` — i.e. a :meth:`closest_pair` scan could not find a
        mergeable pair.  ``False`` whenever the bound is unknown (or has
        been poisoned to NaN by a non-finite move), so callers fall back
        to an actual scan.
        """
        bound = self._pair_min_bound
        return bound is not None and bound >= threshold

    def _closest_pair_scalar(self) -> Optional[Tuple[int, int, float]]:
        """Scalar reference for :meth:`closest_pair` (property tests)."""
        states = list(self)
        if len(states) < 2:
            return None
        best: Optional[Tuple[int, int, float]] = None
        for i, first in enumerate(states):
            for second in states[i + 1 :]:
                distance = first.distance_to(second.vector)
                if best is None or distance < best[2]:
                    best = (first.state_id, second.state_id, distance)
        return best

    def labels(self) -> Dict[int, str]:
        """state_id -> ``(t,h)`` display label, for reports."""
        return {state.state_id: state.label() for state in self}

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of the full set (states, aliases, id counter)."""
        return {
            "next_id": self._next_id,
            "states": [
                {
                    "id": state.state_id,
                    "vector": [float(x) for x in state.vector],
                    "visits": state.visits,
                }
                for state in self
            ],
            "aliases": sorted(
                [dropped, kept] for dropped, kept in self._aliases.items()
            ),
        }

    @classmethod
    def from_state_dict(cls, payload: Dict[str, object]) -> "StateSet":
        """Rebuild a set from :meth:`state_dict` output (inverse operation)."""
        restored = cls()
        for entry in payload["states"]:
            state = ModelState(
                state_id=int(entry["id"]),
                vector=np.asarray(entry["vector"], dtype=float),
                visits=int(entry["visits"]),
            )
            restored._states[state.state_id] = state
            if restored._dim is None:
                restored._dim = int(state.vector.shape[0])
        restored._aliases = {
            int(dropped): int(kept) for dropped, kept in payload["aliases"]
        }
        restored._next_id = int(payload["next_id"])
        return restored
