"""Raw alarm generation (paper §3.1, Alarm Generation module).

A raw alarm ``a^j`` fires for sensor ``j`` in window ``i`` when the
sensor's mapped state differs from the correct state (``l_j != c_i``).
Raw alarms are noisy (the paper measures ≈1.5 % false alarms on a
healthy GDI node, Fig. 12) and must be smoothed by the alarm filters in
:mod:`repro.core.filtering`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from .identification import WindowIdentification


@dataclass(frozen=True)
class RawAlarm:
    """One raw alarm: a sensor disagreed with the majority in a window."""

    window_index: int
    sensor_id: int
    sensor_state: int
    correct_state: int


@dataclass
class AlarmGenerator:
    """Generates raw alarms and keeps the per-sensor alarm history.

    The history is what Fig. 12 plots (raw alarms over time for a
    faulty and a non-faulty node) and what the false-alarm-rate metric
    consumes.
    """

    history: Dict[int, List[bool]] = field(default_factory=dict)
    alarms: List[RawAlarm] = field(default_factory=list)

    def process(
        self, window_index: int, identification: WindowIdentification
    ) -> List[RawAlarm]:
        """Emit raw alarms for one identified window.

        Every *reporting* sensor gets a history entry (True = alarm) so
        alarm rates are computed over windows where the sensor was
        actually heard from.
        """
        new_alarms: List[RawAlarm] = []
        for sensor_id, state_id in identification.sensor_states.items():
            # Plain bool (state ids may be numpy ints): the history lists
            # are snapshotted as-is, so they must stay JSON-serialisable.
            fired = bool(state_id != identification.correct_state)
            self.history.setdefault(sensor_id, []).append(fired)
            if fired:
                alarm = RawAlarm(
                    window_index=window_index,
                    sensor_id=sensor_id,
                    sensor_state=state_id,
                    correct_state=identification.correct_state,
                )
                self.alarms.append(alarm)
                new_alarms.append(alarm)
        return new_alarms

    def alarm_rate(self, sensor_id: int) -> float:
        """Fraction of this sensor's reporting windows that raised alarms."""
        series = self.history.get(sensor_id, [])
        if not series:
            return 0.0
        return sum(series) / len(series)

    def alarm_series(self, sensor_id: int) -> List[bool]:
        """Per-window alarm booleans for one sensor (Fig. 12 series)."""
        return list(self.history.get(sensor_id, []))

    def sensors_seen(self) -> Set[int]:
        """All sensors that reported at least once."""
        return set(self.history.keys())

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of the alarm log and per-sensor history.

        The history lists hold plain bools by construction, so a shallow
        ``list`` copy suffices — per-element conversion here used to
        dominate whole-pipeline snapshot cost on long runs.
        """
        return {
            "history": [
                [sensor_id, list(series)]
                for sensor_id, series in sorted(self.history.items())
            ],
            "alarms": [
                [a.window_index, a.sensor_id, a.sensor_state, a.correct_state]
                for a in self.alarms
            ],
        }

    @classmethod
    def from_state_dict(cls, payload: Dict[str, object]) -> "AlarmGenerator":
        generator = cls()
        generator.history = {
            int(sensor_id): [bool(x) for x in series]
            for sensor_id, series in payload["history"]
        }
        generator.alarms = [
            RawAlarm(
                window_index=int(w),
                sensor_id=int(s),
                sensor_state=int(state),
                correct_state=int(correct),
            )
            for w, s, state, correct in payload["alarms"]
        ]
        return generator
