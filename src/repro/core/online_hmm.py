"""The paper's online HMM estimator (§3.2).

Estimates an HMM from a stream of ``(hidden state, observation symbol)``
pairs — available here because the Correct State Identification module
supplies the hidden states.  At each step, with ``i`` the previous hidden
state, ``j`` the current one, and ``l`` the current symbol:

* if ``j != i``, the transition row of ``i`` moves toward ``j``:
  ``a_ik = (1-β) a_ik + β δ_kj``;
* the emission row of the current hidden state moves toward ``l``:
  ``b_jk = (1-γ) b_jk + γ δ_kl``.

Both matrices start as identities and remain row-stochastic under these
updates (the paper proves this is preserved).  *Notation note*: the paper
writes the B update with index ``i``; we update the row of the current
state ``j``, which matches the semantics of emission at time ``t`` and
reproduces the paper's Tables 2-7 (see DESIGN.md §6).

Unlike a textbook HMM, the state space here is *open*: the clusterer may
spawn or merge model states at any time, and the error-track HMM ``M_CE``
uses the extra ⊥ symbol.  The estimator therefore keys rows and columns
by stable state ids and grows its matrices on demand, and it tracks
visit counts so structural analysis can ignore states it never saw
(the paper's "spurious states").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .states import BOTTOM_STATE_ID


@dataclass(frozen=True)
class EmissionMatrix:
    """A labelled snapshot of the emission matrix ``B``.

    Attributes
    ----------
    matrix:
        ``(n_states, n_symbols)`` row-stochastic array.
    state_ids:
        Hidden-state id of each row.
    symbol_ids:
        Symbol id of each column (may include ``BOTTOM_STATE_ID``).
    """

    matrix: np.ndarray
    state_ids: Tuple[int, ...]
    symbol_ids: Tuple[int, ...]

    def row_of(self, state_id: int) -> np.ndarray:
        """Emission row for one hidden state id."""
        return self.matrix[self.state_ids.index(state_id)]

    def without_symbol(self, symbol_id: int) -> "EmissionMatrix":
        """Drop one symbol column and renormalise the rows.

        Used to exclude the fictitious ⊥ symbol before classification
        ("this fictitious state is not taken into account during
        classification", §4.1).  Hidden states whose entire mass sat on
        the dropped symbol (a tracked sensor that always *agreed* there)
        carry no error evidence and are dropped with it.
        """
        if symbol_id not in self.symbol_ids:
            return self
        keep_cols = [k for k, s in enumerate(self.symbol_ids) if s != symbol_id]
        sub = self.matrix[:, keep_cols]
        sums = sub.sum(axis=1)
        keep_rows = [r for r in range(sub.shape[0]) if sums[r] > 1e-12]
        if not keep_rows or not keep_cols:
            return EmissionMatrix(matrix=np.zeros((0, 0)), state_ids=(), symbol_ids=())
        sub = sub[keep_rows, :]
        sub = sub / sub.sum(axis=1, keepdims=True)
        return EmissionMatrix(
            matrix=sub,
            state_ids=tuple(self.state_ids[r] for r in keep_rows),
            symbol_ids=tuple(self.symbol_ids[k] for k in keep_cols),
        )

    def denoised(self, floor: float = 0.2) -> "EmissionMatrix":
        """Zero out sub-``floor`` entries and renormalise the rows.

        The forgetting-factor estimator leaves small residual mass on
        symbols seen during state-boundary windows (the observable mean
        briefly disagrees with the majority at every environment
        transition).  Flooring removes that smear while preserving the
        structural signatures classification needs: a Dynamic Creation's
        0.35/0.65 row split and a Dynamic Deletion's ≈1.0 row collapse
        both sit far above any reasonable floor.  Rows whose entries all
        fall below the floor keep their single largest entry.
        """
        if not 0.0 <= floor < 1.0:
            raise ValueError("floor must be in [0, 1)")
        if self.matrix.size == 0 or floor == 0.0:
            return self
        out = self.matrix.copy()
        keep = out >= floor
        # Rows whose entries all fall below the floor keep their single
        # largest entry (one masked pass instead of a per-row loop).
        starved = ~keep.any(axis=1)
        if np.any(starved):
            keep[starved] = out[starved] == out[starved].max(axis=1, keepdims=True)
        out = np.where(keep, out, 0.0)
        sums = out.sum(axis=1, keepdims=True)
        out = out / np.maximum(sums, 1e-300)
        return EmissionMatrix(
            matrix=out, state_ids=self.state_ids, symbol_ids=self.symbol_ids
        )

    def dominant_symbols(self) -> Dict[int, int]:
        """state id -> symbol id with the largest emission probability."""
        return {
            state_id: self.symbol_ids[int(np.argmax(self.matrix[row]))]
            for row, state_id in enumerate(self.state_ids)
        }


class OnlineHMM:
    """Exponentially forgetting HMM estimator over an open state space.

    Parameters
    ----------
    transition_innovation:
        Weight of the new evidence in the A update (the multiplier of
        the Kronecker delta in the paper's formula).
    emission_innovation:
        Weight of the new evidence in the B update.

    *Interpretation note* (DESIGN.md §6): the paper's Table 1 lists
    β = γ = 0.90 as "learning factors", but a literal innovation weight
    of 0.9 would make every row ≈ 0.9 at its *last* symbol — the paper's
    own reported matrices (e.g. Table 7's 0.3546/0.6454 split) are only
    attainable with slow innovation.  We therefore read Table 1's values
    as retention factors and pass ``innovation = 1 - β = 0.10`` here;
    :class:`repro.config.PipelineConfig` performs that conversion.
    """

    def __init__(
        self,
        transition_innovation: float = 0.10,
        emission_innovation: float = 0.10,
    ):
        if not 0.0 < transition_innovation < 1.0:
            raise ValueError("transition_innovation must be in (0, 1)")
        if not 0.0 < emission_innovation < 1.0:
            raise ValueError("emission_innovation must be in (0, 1)")
        self.transition_innovation = transition_innovation
        self.emission_innovation = emission_innovation
        self._state_index: Dict[int, int] = {}
        self._symbol_index: Dict[int, int] = {}
        self._transition = np.zeros((0, 0))
        self._emission = np.zeros((0, 0))
        self._state_visits: Dict[int, int] = {}
        self._symbol_visits: Dict[int, int] = {}
        self._pair_counts: Dict[Tuple[int, int], int] = {}
        self._previous_state: Optional[int] = None
        self._n_updates = 0

    # -- alphabet management ----------------------------------------------

    def _ensure_state(self, state_id: int) -> int:
        """Add a hidden state (and its same-id symbol) if unseen."""
        if state_id in self._state_index:
            return self._state_index[state_id]
        index = len(self._state_index)
        self._state_index[state_id] = index
        # Grow A with an identity row/column: a new state initially
        # self-loops, the open-alphabet analogue of A = I at start-up.
        grown = np.zeros((index + 1, index + 1))
        grown[:index, :index] = self._transition
        grown[index, index] = 1.0
        self._transition = grown
        # Grow B with a zero-filled row, then point it at the state's own
        # symbol (identity initialisation in the shared alphabet).
        self._emission = np.pad(self._emission, ((0, 1), (0, 0)))
        self._state_visits.setdefault(state_id, 0)
        symbol_index = self._ensure_symbol(state_id)
        self._emission[index, :] = 0.0
        self._emission[index, symbol_index] = 1.0
        return index

    def _ensure_symbol(self, symbol_id: int) -> int:
        """Add an observation symbol column if unseen."""
        if symbol_id in self._symbol_index:
            return self._symbol_index[symbol_id]
        index = len(self._symbol_index)
        self._symbol_index[symbol_id] = index
        self._emission = np.pad(self._emission, ((0, 0), (0, 1)))
        self._symbol_visits.setdefault(symbol_id, 0)
        return index

    # -- the §3.2 update ----------------------------------------------------

    def observe(self, hidden_state_id: int, symbol_id: int) -> None:
        """Consume one ``(hidden state, symbol)`` pair.

        ``hidden_state_id`` is ``c_i`` from the Correct State
        Identification module; ``symbol_id`` is ``o_i`` for ``M_CO`` or
        ``e_i`` (possibly ``BOTTOM_STATE_ID``) for ``M_CE``.
        """
        j = self._ensure_state(hidden_state_id)
        l = self._ensure_symbol(symbol_id)

        # Both updates run in place on the matrix rows: scaling by the
        # retention factor then adding the innovation at the delta's
        # index performs the exact same two roundings per entry as the
        # textbook ``(1-rate)*row + rate*delta`` form, without allocating
        # a one-hot delta vector per observation.
        if self._previous_state is not None:
            i = self._state_index[self._previous_state]
            if self._previous_state != hidden_state_id:
                rate = self.transition_innovation
                row = self._transition[i]
                row *= 1.0 - rate
                row[j] += rate

        rate = self.emission_innovation
        row = self._emission[j]
        row *= 1.0 - rate
        row[l] += rate

        self._previous_state = hidden_state_id
        self._state_visits[hidden_state_id] += 1
        self._symbol_visits[symbol_id] += 1
        pair = (hidden_state_id, symbol_id)
        self._pair_counts[pair] = self._pair_counts.get(pair, 0) + 1
        self._n_updates += 1

    # -- snapshots ------------------------------------------------------------

    @property
    def n_updates(self) -> int:
        """How many (state, symbol) pairs were consumed."""
        return self._n_updates

    @property
    def state_ids(self) -> List[int]:
        """Hidden-state ids, in matrix row order."""
        return sorted(self._state_index, key=self._state_index.get)

    @property
    def symbol_ids(self) -> List[int]:
        """Symbol ids, in matrix column order."""
        return sorted(self._symbol_index, key=self._symbol_index.get)

    def state_visits(self, state_id: int) -> int:
        """Visit count of one hidden state (0 if never seen)."""
        return self._state_visits.get(state_id, 0)

    def transition_matrix(self) -> "tuple[np.ndarray, Tuple[int, ...]]":
        """Snapshot of ``A`` plus the state ids labelling its rows."""
        return self._transition.copy(), tuple(self.state_ids)

    def emission_matrix(
        self, min_state_visits: int = 0, min_symbol_visits: int = 0
    ) -> EmissionMatrix:
        """Snapshot of ``B``, optionally restricted to well-visited parts.

        Restricting to visited states/symbols implements the paper's
        dropping of spurious states before structural analysis.  Rows are
        renormalised after column filtering so the snapshot stays
        row-stochastic.
        """
        states = [
            s for s in self.state_ids if self._state_visits.get(s, 0) >= min_state_visits
        ]
        symbols = [
            s
            for s in self.symbol_ids
            if self._symbol_visits.get(s, 0) >= min_symbol_visits
        ]
        if not states or not symbols:
            return EmissionMatrix(
                matrix=np.zeros((0, 0)), state_ids=(), symbol_ids=()
            )
        rows = [self._state_index[s] for s in states]
        cols = [self._symbol_index[s] for s in symbols]
        sub = self._emission[np.ix_(rows, cols)]
        sums = sub.sum(axis=1, keepdims=True)
        sub = np.where(sums > 0, sub / np.maximum(sums, 1e-300), 0.0)
        return EmissionMatrix(
            matrix=sub, state_ids=tuple(states), symbol_ids=tuple(symbols)
        )

    def emission_without_bottom(
        self, min_state_visits: int = 0
    ) -> EmissionMatrix:
        """Emission snapshot with the ⊥ column removed and renormalised.

        Hidden states that never actually emitted a non-⊥ symbol (they
        only ever *agreed* with the majority while tracked) carry no
        error evidence — their rows would otherwise surface their
        identity-initialisation residue — so they are dropped here.
        """
        snapshot = self.emission_matrix(min_state_visits=min_state_visits)
        informative = {
            state
            for (state, symbol), count in self._pair_counts.items()
            if symbol != BOTTOM_STATE_ID and count > 0
        }
        keep = [
            r for r, state in enumerate(snapshot.state_ids) if state in informative
        ]
        if len(keep) != len(snapshot.state_ids):
            if not keep:
                return EmissionMatrix(
                    matrix=np.zeros((0, 0)), state_ids=(), symbol_ids=()
                )
            snapshot = EmissionMatrix(
                matrix=snapshot.matrix[keep, :],
                state_ids=tuple(snapshot.state_ids[r] for r in keep),
                symbol_ids=snapshot.symbol_ids,
            )
        return snapshot.without_symbol(BOTTOM_STATE_ID)

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of the full estimator state.

        Matrices are stored at full float precision (via ``repr``-exact
        floats once JSON-encoded) so a restored estimator continues the
        exponential-forgetting recursion bit-identically.
        """
        return {
            "transition_innovation": self.transition_innovation,
            "emission_innovation": self.emission_innovation,
            "state_index": [
                [state_id, index] for state_id, index in self._state_index.items()
            ],
            "symbol_index": [
                [symbol_id, index] for symbol_id, index in self._symbol_index.items()
            ],
            "transition": [[float(x) for x in row] for row in self._transition],
            "emission": [[float(x) for x in row] for row in self._emission],
            "state_visits": [
                [state_id, count] for state_id, count in self._state_visits.items()
            ],
            "symbol_visits": [
                [symbol_id, count] for symbol_id, count in self._symbol_visits.items()
            ],
            "pair_counts": [
                [state_id, symbol_id, count]
                for (state_id, symbol_id), count in self._pair_counts.items()
            ],
            "previous_state": self._previous_state,
            "n_updates": self._n_updates,
        }

    @classmethod
    def from_state_dict(cls, payload: Dict[str, object]) -> "OnlineHMM":
        """Rebuild an estimator from :meth:`state_dict` output."""
        model = cls(
            transition_innovation=float(payload["transition_innovation"]),
            emission_innovation=float(payload["emission_innovation"]),
        )
        model._state_index = {int(s): int(i) for s, i in payload["state_index"]}
        model._symbol_index = {int(s): int(i) for s, i in payload["symbol_index"]}
        n_states = len(model._state_index)
        n_symbols = len(model._symbol_index)
        model._transition = np.asarray(payload["transition"], dtype=float).reshape(
            n_states, n_states
        )
        model._emission = np.asarray(payload["emission"], dtype=float).reshape(
            n_states, n_symbols
        )
        model._state_visits = {int(s): int(c) for s, c in payload["state_visits"]}
        model._symbol_visits = {int(s): int(c) for s, c in payload["symbol_visits"]}
        model._pair_counts = {
            (int(s), int(o)): int(c) for s, o, c in payload["pair_counts"]
        }
        previous = payload["previous_state"]
        model._previous_state = None if previous is None else int(previous)
        model._n_updates = int(payload["n_updates"])
        return model

    def row_defects(self, atol: float = 1e-8) -> List[str]:
        """Rows violating row-stochasticity, described (empty = healthy).

        A row is defective when it contains a non-finite entry, a
        negative entry, or a sum off unity by more than ``atol``.  Used
        by the invariant supervisor; :meth:`is_row_stochastic` stays the
        cheap boolean form.
        """
        defects: List[str] = []
        for label, matrix, ids in (
            ("A", self._transition, self.state_ids),
            ("B", self._emission, self.state_ids),
        ):
            if matrix.size == 0:
                continue
            finite = np.isfinite(matrix).all(axis=1)
            negative = (matrix < 0.0).any(axis=1)
            sums = np.where(finite, matrix.sum(axis=1), np.nan)
            off = ~finite | negative | ~np.isclose(sums, 1.0, atol=atol)
            for row in np.flatnonzero(off):
                defects.append(
                    f"{label} row of state {ids[row]} "
                    f"(sum={float(matrix[row].sum())!r})"
                )
        return defects

    def renormalize_rows(self, atol: float = 1e-8) -> List[str]:
        """Bounded repair: rescale near-degenerate rows back to unit sum.

        Rows whose entries are finite, non-negative, and sum to
        something positive are divided by their sum; rows that cannot be
        renormalized that way (non-finite entries, negative mass, or an
        all-zero row) are reset to the identity initialisation — a
        one-hot at the state's own index in ``A`` and at the state's own
        symbol in ``B``, exactly the paper's ``A = B = I`` start-up (the
        estimator then relearns the row from subsequent windows).
        Returns descriptions of the repaired rows.
        """
        actions: List[str] = []
        for label, matrix in (("A", self._transition), ("B", self._emission)):
            if matrix.size == 0:
                continue
            for row_index, state_id in enumerate(self.state_ids):
                row = matrix[row_index]
                total = row.sum()
                if np.isfinite(total) and np.isclose(total, 1.0, atol=atol) and (
                    row >= 0.0
                ).all():
                    continue
                if (
                    np.isfinite(row).all()
                    and (row >= 0.0).all()
                    and float(total) > 0.0
                ):
                    matrix[row_index] = row / total
                    actions.append(
                        f"renormalized {label} row of state {state_id}"
                    )
                else:
                    matrix[row_index] = 0.0
                    if label == "A":
                        matrix[row_index, row_index] = 1.0
                    else:
                        matrix[row_index, self._symbol_index[state_id]] = 1.0
                    actions.append(
                        f"re-initialized {label} row of state {state_id} "
                        "to identity"
                    )
        return actions

    def reinitialize_identity(self) -> None:
        """Reset both matrices to the paper's ``A = B = I`` start-up.

        The alphabet (state/symbol indices) and the visit bookkeeping
        are preserved — only the learned probability mass is discarded.
        The supervisor applies this when a model is poisoned beyond
        row-level repair.
        """
        n = len(self._state_index)
        self._transition = np.eye(n)
        self._emission = np.zeros((n, len(self._symbol_index)))
        for state_id, row in self._state_index.items():
            self._emission[row, self._symbol_index[state_id]] = 1.0
        self._previous_state = None

    def is_row_stochastic(self, atol: float = 1e-8) -> bool:
        """Invariant check: both matrices keep unit row sums."""
        if self._transition.size == 0:
            return True
        ok_a = np.allclose(self._transition.sum(axis=1), 1.0, atol=atol)
        ok_b = np.allclose(self._emission.sum(axis=1), 1.0, atol=atol)
        return bool(ok_a and ok_b)
