"""First-order Markov models of the environment dynamics.

The pipeline's final deliverable is the error/attack-free Markov model
``M_C`` of the environment (step 5 of §3); the classifier's intuition is
phrased in terms of ``M_C`` versus the observable model ``M_O`` ("attacks
change the temporal behavior of the environment as sensed by the
network, while errors do not").  This module estimates such models from
state-id sequences, prunes spurious low-probability states (the Fig. 7
discussion drops state (16,27)), and compares two models structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np


@dataclass
class MarkovModel:
    """An estimated first-order Markov chain over model states.

    Attributes
    ----------
    state_ids:
        Ids of the states, in matrix order.
    transition:
        Row-stochastic transition matrix between those states.
    visit_counts:
        Number of sequence steps spent in each state.
    state_vectors:
        Optional attribute vector per state id (for display labels).
    """

    state_ids: Tuple[int, ...]
    transition: np.ndarray
    visit_counts: Tuple[int, ...]
    state_vectors: Dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def n_states(self) -> int:
        """Number of states in the model."""
        return len(self.state_ids)

    def visit_fraction(self, state_id: int) -> float:
        """Fraction of all steps spent in ``state_id``."""
        total = sum(self.visit_counts)
        if total == 0:
            return 0.0
        return self.visit_counts[self.state_ids.index(state_id)] / total

    def transitions(self, min_probability: float = 0.0) -> List[Tuple[int, int, float]]:
        """(from id, to id, probability) for every edge above threshold."""
        edges = []
        for i, src in enumerate(self.state_ids):
            for j, dst in enumerate(self.state_ids):
                p = float(self.transition[i, j])
                if p > min_probability:
                    edges.append((src, dst, p))
        return edges

    def edge_set(self, min_probability: float = 0.05) -> Set[Tuple[int, int]]:
        """The structural (from, to) edge set, thresholded."""
        return {
            (src, dst)
            for src, dst, p in self.transitions(min_probability)
            if src != dst
        }

    def label(self, state_id: int) -> str:
        """Display label ``(t,h)`` from the attached state vector."""
        vector = self.state_vectors.get(state_id)
        if vector is None:
            return f"s{state_id}"
        coords = ",".join(f"{x:.0f}" for x in np.asarray(vector))
        return f"({coords})"

    def to_graph(self, min_probability: float = 0.01) -> nx.DiGraph:
        """Export as a networkx digraph (nodes carry labels/visits)."""
        graph = nx.DiGraph()
        for idx, state_id in enumerate(self.state_ids):
            graph.add_node(
                state_id,
                label=self.label(state_id),
                visits=self.visit_counts[idx],
            )
        for src, dst, p in self.transitions(min_probability):
            graph.add_edge(src, dst, probability=p)
        return graph

    def prune(self, min_visit_fraction: float = 0.02) -> "MarkovModel":
        """Drop spurious states visited less than the given fraction.

        This is how Fig. 7's low-probability fluctuation state (16,27)
        is excluded from the "key states of the system".  Transition
        rows are renormalised over the surviving states.
        """
        total = max(sum(self.visit_counts), 1)
        keep = [
            i
            for i, count in enumerate(self.visit_counts)
            if count / total >= min_visit_fraction
        ]
        if not keep:
            keep = [int(np.argmax(self.visit_counts))]
        sub = self.transition[np.ix_(keep, keep)]
        sums = sub.sum(axis=1, keepdims=True)
        sub = np.where(sums > 0, sub / np.maximum(sums, 1e-300), 0.0)
        # Rows that lost all mass (only transitioned to pruned states)
        # become self-loops, the least-information choice.
        for row in range(sub.shape[0]):
            if sub[row].sum() == 0.0:
                sub[row, row] = 1.0
        kept_ids = tuple(self.state_ids[i] for i in keep)
        return MarkovModel(
            state_ids=kept_ids,
            transition=sub,
            visit_counts=tuple(self.visit_counts[i] for i in keep),
            state_vectors={
                s: v for s, v in self.state_vectors.items() if s in kept_ids
            },
        )


def estimate_markov_model(
    sequence: Sequence[int],
    state_vectors: Optional[Dict[int, np.ndarray]] = None,
    smoothing: float = 0.0,
) -> MarkovModel:
    """Estimate a Markov model from a state-id sequence.

    Parameters
    ----------
    sequence:
        The observed state ids (``c_i`` for ``M_C``, ``o_i`` for
        ``M_O``).
    state_vectors:
        Optional id -> attribute vector map for labels.
    smoothing:
        Additive smoothing on transition counts (0 keeps the raw MLE).
    """
    sequence = list(sequence)
    if not sequence:
        raise ValueError("cannot estimate a Markov model from an empty sequence")
    state_ids = tuple(sorted(set(sequence)))
    index = {s: i for i, s in enumerate(state_ids)}
    n = len(state_ids)

    counts = np.full((n, n), float(smoothing))
    visits = np.zeros(n, dtype=int)
    visits[index[sequence[0]]] += 1
    for prev, curr in zip(sequence[:-1], sequence[1:]):
        counts[index[prev], index[curr]] += 1.0
        visits[index[curr]] += 1

    sums = counts.sum(axis=1, keepdims=True)
    transition = np.where(sums > 0, counts / np.maximum(sums, 1e-300), 0.0)
    for row in range(n):
        if transition[row].sum() == 0.0:
            transition[row, row] = 1.0

    vectors = {}
    if state_vectors:
        vectors = {
            s: np.asarray(state_vectors[s], dtype=float)
            for s in state_ids
            if s in state_vectors
        }
    return MarkovModel(
        state_ids=state_ids,
        transition=transition,
        visit_counts=tuple(int(v) for v in visits),
        state_vectors=vectors,
    )


@dataclass(frozen=True)
class ModelComparison:
    """Structural comparison of two Markov models (M_C vs M_O).

    The paper's first-order intuition: under *errors* the two models
    share state count and transition structure; under *attacks* the
    temporal structure differs.
    """

    same_state_count: bool
    common_edges: int
    only_in_first: int
    only_in_second: int

    @property
    def same_structure(self) -> bool:
        """True when the models share their full edge sets."""
        return (
            self.same_state_count
            and self.only_in_first == 0
            and self.only_in_second == 0
        )


def compare_models(
    first: MarkovModel,
    second: MarkovModel,
    min_probability: float = 0.05,
) -> ModelComparison:
    """Compare the structural edge sets of two Markov models."""
    edges_first = first.edge_set(min_probability)
    edges_second = second.edge_set(min_probability)
    return ModelComparison(
        same_state_count=first.n_states == second.n_states,
        common_edges=len(edges_first & edges_second),
        only_in_first=len(edges_first - edges_second),
        only_in_second=len(edges_second - edges_first),
    )
