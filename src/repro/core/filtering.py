"""Alarm filtering (paper §3.1, Alarm Filtering module).

Raw alarms are integrated into stable *filtered* alarms.  The paper's
"simple approach" is the k-of-n rule; it also points at change-detection
schemes — the Sequential Probability Ratio Test (SPRT) and the CUSUM
procedure (Basseville & Nikiforov [9]) — which are implemented here as
drop-in alternatives.  All filters share one interface:

    filter.update(raw: bool) -> bool     # new filtered-alarm state

and a :class:`FilterBank` manages one filter instance per sensor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from collections import deque


class AlarmFilter:
    """Interface of a per-sensor alarm filter (stateful)."""

    def update(self, raw: bool) -> bool:
        """Consume one raw-alarm boolean; return the filtered state."""
        raise NotImplementedError

    @property
    def active(self) -> bool:
        """Current filtered-alarm state."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all history."""
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (parameters plus mutable state)."""
        raise NotImplementedError


@dataclass
class KOfNFilter(AlarmFilter):
    """Filtered alarm iff at least ``k`` of the last ``n`` raw alarms fired.

    This is exactly the paper's simple rule ("generate a filtered alarm
    only after receiving k raw alarms in the last n time steps").
    """

    k: int = 3
    n: int = 5
    _window: Deque[bool] = field(default_factory=deque, repr=False)
    _active: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not 1 <= self.k <= self.n:
            raise ValueError("need 1 <= k <= n")

    def update(self, raw: bool) -> bool:
        self._window.append(bool(raw))
        if len(self._window) > self.n:
            self._window.popleft()
        self._active = sum(self._window) >= self.k
        return self._active

    @property
    def active(self) -> bool:
        return self._active

    def reset(self) -> None:
        self._window.clear()
        self._active = False

    def state_dict(self) -> Dict[str, object]:
        return {
            "kind": "k_of_n",
            "k": self.k,
            "n": self.n,
            "window": [bool(x) for x in self._window],
            "active": self._active,
        }

    @classmethod
    def from_state_dict(cls, payload: Dict[str, object]) -> "KOfNFilter":
        filt = cls(k=int(payload["k"]), n=int(payload["n"]))
        filt._window = deque(bool(x) for x in payload["window"])
        filt._active = bool(payload["active"])
        return filt


@dataclass
class SPRTFilter(AlarmFilter):
    """Wald's Sequential Probability Ratio Test on the alarm stream.

    Tests H0 "healthy" (alarm probability ``p0``) against H1 "anomalous"
    (alarm probability ``p1``) with error targets ``alpha`` (false
    positive) and ``beta`` (false negative).  Accepting H1 raises the
    filtered alarm; accepting H0 clears it; either decision restarts the
    test so the filter keeps tracking regime changes.
    """

    p0: float = 0.02
    p1: float = 0.65
    alpha: float = 0.01
    beta: float = 0.01
    _llr: float = field(default=0.0, repr=False)
    _active: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.p0 < self.p1 < 1.0:
            raise ValueError("need 0 < p0 < p1 < 1")
        if not (0.0 < self.alpha < 1.0 and 0.0 < self.beta < 1.0):
            raise ValueError("alpha and beta must be in (0, 1)")

    @property
    def upper_threshold(self) -> float:
        """Accept-H1 boundary ``log((1-beta)/alpha)``."""
        return math.log((1.0 - self.beta) / self.alpha)

    @property
    def lower_threshold(self) -> float:
        """Accept-H0 boundary ``log(beta/(1-alpha))``."""
        return math.log(self.beta / (1.0 - self.alpha))

    def update(self, raw: bool) -> bool:
        if raw:
            self._llr += math.log(self.p1 / self.p0)
        else:
            self._llr += math.log((1.0 - self.p1) / (1.0 - self.p0))
        if self._llr >= self.upper_threshold:
            self._active = True
            self._llr = 0.0
        elif self._llr <= self.lower_threshold:
            self._active = False
            self._llr = 0.0
        return self._active

    @property
    def active(self) -> bool:
        return self._active

    def reset(self) -> None:
        self._llr = 0.0
        self._active = False

    def state_dict(self) -> Dict[str, object]:
        return {
            "kind": "sprt",
            "p0": self.p0,
            "p1": self.p1,
            "alpha": self.alpha,
            "beta": self.beta,
            "llr": self._llr,
            "active": self._active,
        }

    @classmethod
    def from_state_dict(cls, payload: Dict[str, object]) -> "SPRTFilter":
        filt = cls(
            p0=float(payload["p0"]),
            p1=float(payload["p1"]),
            alpha=float(payload["alpha"]),
            beta=float(payload["beta"]),
        )
        filt._llr = float(payload["llr"])
        filt._active = bool(payload["active"])
        return filt


@dataclass
class CUSUMFilter(AlarmFilter):
    """One-sided CUSUM on the alarm stream.

    Accumulates ``g = max(0, g + x - drift)`` where ``x`` is the raw
    alarm indicator; the filtered alarm sets when ``g`` exceeds
    ``threshold`` and clears when ``g`` returns to zero.  ``drift``
    should sit between the healthy and anomalous alarm rates.
    """

    drift: float = 0.25
    threshold: float = 2.0
    _g: float = field(default=0.0, repr=False)
    _active: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.drift < 1.0:
            raise ValueError("drift must be in (0, 1)")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")

    def update(self, raw: bool) -> bool:
        self._g = max(0.0, self._g + (1.0 if raw else 0.0) - self.drift)
        if self._g > self.threshold:
            self._active = True
        elif self._g == 0.0:
            self._active = False
        return self._active

    @property
    def active(self) -> bool:
        return self._active

    def reset(self) -> None:
        self._g = 0.0
        self._active = False

    def state_dict(self) -> Dict[str, object]:
        return {
            "kind": "cusum",
            "drift": self.drift,
            "threshold": self.threshold,
            "g": self._g,
            "active": self._active,
        }

    @classmethod
    def from_state_dict(cls, payload: Dict[str, object]) -> "CUSUMFilter":
        filt = cls(drift=float(payload["drift"]), threshold=float(payload["threshold"]))
        filt._g = float(payload["g"])
        filt._active = bool(payload["active"])
        return filt


#: filter kind tag -> restoring class, for checkpoint round-trips.
_FILTER_CLASSES = {
    "k_of_n": KOfNFilter,
    "sprt": SPRTFilter,
    "cusum": CUSUMFilter,
}


def filter_from_state_dict(payload: Dict[str, object]) -> AlarmFilter:
    """Rebuild any alarm filter from its :meth:`~AlarmFilter.state_dict`."""
    kind = payload.get("kind")
    if kind not in _FILTER_CLASSES:
        raise ValueError(f"unknown alarm filter kind: {kind!r}")
    return _FILTER_CLASSES[kind].from_state_dict(payload)


@dataclass(frozen=True)
class FilterTransition:
    """A filtered alarm changed state for one sensor."""

    sensor_id: int
    window_index: int
    raised: bool  # True = alarm set, False = alarm cleared


@dataclass
class FilterBank:
    """One alarm filter per sensor, created on demand from a factory."""

    factory: Callable[[], AlarmFilter] = KOfNFilter
    filters: Dict[int, AlarmFilter] = field(default_factory=dict)

    def filter_for(self, sensor_id: int) -> AlarmFilter:
        """Get (or lazily create) the filter of one sensor."""
        if sensor_id not in self.filters:
            self.filters[sensor_id] = self.factory()
        return self.filters[sensor_id]

    def update(
        self, window_index: int, raw_by_sensor: Dict[int, bool]
    ) -> List[FilterTransition]:
        """Feed one window of raw alarms; return state transitions."""
        transitions: List[FilterTransition] = []
        for sensor_id, raw in sorted(raw_by_sensor.items()):
            filt = self.filter_for(sensor_id)
            before = filt.active
            after = filt.update(raw)
            if after != before:
                transitions.append(
                    FilterTransition(
                        sensor_id=sensor_id,
                        window_index=window_index,
                        raised=after,
                    )
                )
        return transitions

    def active_sensors(self) -> List[int]:
        """Sensors whose filtered alarm is currently set."""
        return sorted(s for s, f in self.filters.items() if f.active)

    def is_active(self, sensor_id: int) -> bool:
        """Filtered-alarm state of one sensor (False if never seen)."""
        filt = self.filters.get(sensor_id)
        return filt.active if filt is not None else False

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of every per-sensor filter."""
        return {
            "filters": [
                [sensor_id, self.filters[sensor_id].state_dict()]
                for sensor_id in sorted(self.filters)
            ]
        }

    def load_state_dict(self, payload: Dict[str, object]) -> None:
        """Replace all per-sensor filters with a snapshot's contents.

        The bank keeps its current ``factory`` (supplied by the pipeline
        configuration) for sensors first seen after the restore.
        """
        self.filters = {
            int(sensor_id): filter_from_state_dict(state)
            for sensor_id, state in payload["filters"]
        }
