"""Alarm filtering (paper §3.1, Alarm Filtering module).

Raw alarms are integrated into stable *filtered* alarms.  The paper's
"simple approach" is the k-of-n rule; it also points at change-detection
schemes — the Sequential Probability Ratio Test (SPRT) and the CUSUM
procedure (Basseville & Nikiforov [9]) — which are implemented here as
drop-in alternatives.  All filters share one interface:

    filter.update(raw: bool) -> bool     # new filtered-alarm state

and a :class:`FilterBank` manages one filter instance per sensor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from collections import deque

import numpy as np


class AlarmFilter:
    """Interface of a per-sensor alarm filter (stateful)."""

    def update(self, raw: bool) -> bool:
        """Consume one raw-alarm boolean; return the filtered state."""
        raise NotImplementedError

    @property
    def active(self) -> bool:
        """Current filtered-alarm state."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all history."""
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (parameters plus mutable state)."""
        raise NotImplementedError


@dataclass
class KOfNFilter(AlarmFilter):
    """Filtered alarm iff at least ``k`` of the last ``n`` raw alarms fired.

    This is exactly the paper's simple rule ("generate a filtered alarm
    only after receiving k raw alarms in the last n time steps").
    """

    k: int = 3
    n: int = 5
    _window: Deque[bool] = field(default_factory=deque, repr=False)
    _active: bool = field(default=False, repr=False)
    # Running number of True entries in ``_window`` so each update is
    # O(1) instead of re-summing the whole deque.  Derived state: never
    # serialized (state_dict layout is unchanged), recomputed on restore.
    _count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 1 <= self.k <= self.n:
            raise ValueError("need 1 <= k <= n")
        self._count = sum(self._window)

    def update(self, raw: bool) -> bool:
        raw = bool(raw)
        self._window.append(raw)
        self._count += raw
        if len(self._window) > self.n:
            self._count -= self._window.popleft()
        self._active = self._count >= self.k
        return self._active

    @property
    def active(self) -> bool:
        return self._active

    def reset(self) -> None:
        self._window.clear()
        self._count = 0
        self._active = False

    def state_dict(self) -> Dict[str, object]:
        return {
            "kind": "k_of_n",
            "k": self.k,
            "n": self.n,
            "window": [bool(x) for x in self._window],
            "active": self._active,
        }

    @classmethod
    def from_state_dict(cls, payload: Dict[str, object]) -> "KOfNFilter":
        filt = cls(k=int(payload["k"]), n=int(payload["n"]))
        filt._window = deque(bool(x) for x in payload["window"])
        filt._count = sum(filt._window)
        filt._active = bool(payload["active"])
        return filt


@dataclass
class SPRTFilter(AlarmFilter):
    """Wald's Sequential Probability Ratio Test on the alarm stream.

    Tests H0 "healthy" (alarm probability ``p0``) against H1 "anomalous"
    (alarm probability ``p1``) with error targets ``alpha`` (false
    positive) and ``beta`` (false negative).  Accepting H1 raises the
    filtered alarm; accepting H0 clears it; either decision restarts the
    test so the filter keeps tracking regime changes.
    """

    p0: float = 0.02
    p1: float = 0.65
    alpha: float = 0.01
    beta: float = 0.01
    _llr: float = field(default=0.0, repr=False)
    _active: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.p0 < self.p1 < 1.0:
            raise ValueError("need 0 < p0 < p1 < 1")
        if not (0.0 < self.alpha < 1.0 and 0.0 < self.beta < 1.0):
            raise ValueError("alpha and beta must be in (0, 1)")

    @property
    def upper_threshold(self) -> float:
        """Accept-H1 boundary ``log((1-beta)/alpha)``."""
        return math.log((1.0 - self.beta) / self.alpha)

    @property
    def lower_threshold(self) -> float:
        """Accept-H0 boundary ``log(beta/(1-alpha))``."""
        return math.log(self.beta / (1.0 - self.alpha))

    def update(self, raw: bool) -> bool:
        if raw:
            self._llr += math.log(self.p1 / self.p0)
        else:
            self._llr += math.log((1.0 - self.p1) / (1.0 - self.p0))
        if self._llr >= self.upper_threshold:
            self._active = True
            self._llr = 0.0
        elif self._llr <= self.lower_threshold:
            self._active = False
            self._llr = 0.0
        return self._active

    @property
    def active(self) -> bool:
        return self._active

    def reset(self) -> None:
        self._llr = 0.0
        self._active = False

    def state_dict(self) -> Dict[str, object]:
        return {
            "kind": "sprt",
            "p0": self.p0,
            "p1": self.p1,
            "alpha": self.alpha,
            "beta": self.beta,
            "llr": self._llr,
            "active": self._active,
        }

    @classmethod
    def from_state_dict(cls, payload: Dict[str, object]) -> "SPRTFilter":
        filt = cls(
            p0=float(payload["p0"]),
            p1=float(payload["p1"]),
            alpha=float(payload["alpha"]),
            beta=float(payload["beta"]),
        )
        filt._llr = float(payload["llr"])
        filt._active = bool(payload["active"])
        return filt


@dataclass
class CUSUMFilter(AlarmFilter):
    """One-sided CUSUM on the alarm stream.

    Accumulates ``g = max(0, g + x - drift)`` where ``x`` is the raw
    alarm indicator; the filtered alarm sets when ``g`` exceeds
    ``threshold`` and clears when ``g`` returns to zero.  ``drift``
    should sit between the healthy and anomalous alarm rates.
    """

    drift: float = 0.25
    threshold: float = 2.0
    _g: float = field(default=0.0, repr=False)
    _active: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.drift < 1.0:
            raise ValueError("drift must be in (0, 1)")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")

    def update(self, raw: bool) -> bool:
        self._g = max(0.0, self._g + (1.0 if raw else 0.0) - self.drift)
        if self._g > self.threshold:
            self._active = True
        elif self._g == 0.0:
            self._active = False
        return self._active

    @property
    def active(self) -> bool:
        return self._active

    def reset(self) -> None:
        self._g = 0.0
        self._active = False

    def state_dict(self) -> Dict[str, object]:
        return {
            "kind": "cusum",
            "drift": self.drift,
            "threshold": self.threshold,
            "g": self._g,
            "active": self._active,
        }

    @classmethod
    def from_state_dict(cls, payload: Dict[str, object]) -> "CUSUMFilter":
        filt = cls(drift=float(payload["drift"]), threshold=float(payload["threshold"]))
        filt._g = float(payload["g"])
        filt._active = bool(payload["active"])
        return filt


#: filter kind tag -> restoring class, for checkpoint round-trips.
_FILTER_CLASSES = {
    "k_of_n": KOfNFilter,
    "sprt": SPRTFilter,
    "cusum": CUSUMFilter,
}


def filter_from_state_dict(payload: Dict[str, object]) -> AlarmFilter:
    """Rebuild any alarm filter from its :meth:`~AlarmFilter.state_dict`."""
    kind = payload.get("kind")
    if kind not in _FILTER_CLASSES:
        raise ValueError(f"unknown alarm filter kind: {kind!r}")
    return _FILTER_CLASSES[kind].from_state_dict(payload)


@dataclass(frozen=True)
class FilterTransition:
    """A filtered alarm changed state for one sensor."""

    sensor_id: int
    window_index: int
    raised: bool  # True = alarm set, False = alarm cleared


@dataclass
class FilterBank:
    """One alarm filter per sensor, created on demand from a factory."""

    factory: Callable[[], AlarmFilter] = KOfNFilter
    filters: Dict[int, AlarmFilter] = field(default_factory=dict)

    def filter_for(self, sensor_id: int) -> AlarmFilter:
        """Get (or lazily create) the filter of one sensor."""
        if sensor_id not in self.filters:
            self.filters[sensor_id] = self.factory()
        return self.filters[sensor_id]

    def update(
        self, window_index: int, raw_by_sensor: Dict[int, bool]
    ) -> List[FilterTransition]:
        """Feed one window of raw alarms; return state transitions."""
        transitions: List[FilterTransition] = []
        for sensor_id, raw in sorted(raw_by_sensor.items()):
            filt = self.filter_for(sensor_id)
            before = filt.active
            after = filt.update(raw)
            if after != before:
                transitions.append(
                    FilterTransition(
                        sensor_id=sensor_id,
                        window_index=window_index,
                        raised=after,
                    )
                )
        return transitions

    def active_sensors(self) -> List[int]:
        """Sensors whose filtered alarm is currently set."""
        return sorted(s for s, f in self.filters.items() if f.active)

    def is_active(self, sensor_id: int) -> bool:
        """Filtered-alarm state of one sensor (False if never seen)."""
        filt = self.filters.get(sensor_id)
        return filt.active if filt is not None else False

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of every per-sensor filter."""
        return {
            "filters": [
                [sensor_id, self.filters[sensor_id].state_dict()]
                for sensor_id in sorted(self.filters)
            ]
        }

    def load_state_dict(self, payload: Dict[str, object]) -> None:
        """Replace all per-sensor filters with a snapshot's contents.

        The bank keeps its current ``factory`` (supplied by the pipeline
        configuration) for sensors first seen after the restore.
        """
        self.filters = {
            int(sensor_id): filter_from_state_dict(state)
            for sensor_id, state in payload["filters"]
        }


class VectorFilterBank:
    """Struct-of-arrays :class:`FilterBank` for homogeneous filter banks.

    Holds every per-sensor filter statistic as one ``(n_sensors,)``
    array — k-of-n ring buffers, SPRT log-likelihood ratios, CUSUM
    scores — and advances all of them with one vectorized
    :meth:`update_batch` per window.  The update recurrences are
    elementwise translations of the scalar filters, so the produced
    transitions, active sets, and ``state_dict`` payloads are
    bit-identical to a :class:`FilterBank` fed the same stream; v2
    checkpoints round-trip freely across both implementations.

    The bank is homogeneous: every sensor shares one filter kind and one
    parameter set.  :meth:`load_state_dict` rejects payloads that mix
    kinds or parameters (a scalar bank restored from a checkpoint taken
    under a different configuration can hold those; the fused pipeline
    path falls back to the scalar oracle in that case, see DESIGN.md
    §11).
    """

    def __init__(
        self,
        kind: str,
        params: Dict[str, object],
        kernels: "Optional[object]" = None,
    ):
        if kind not in _FILTER_CLASSES:
            raise ValueError(f"unknown alarm filter kind: {kind!r}")
        if kernels is None:
            from ..backend import get_backend

            kernels = get_backend("numpy")
        #: Update-kernel implementations (repro.backend.KernelBackend).
        #: Only the whole-bank lockstep/slice paths route through them;
        #: the desynced k-of-n gather/scatter stays NumPy-only (rare
        #: after partial updates, not worth a compiled twin).
        self._kernels = kernels
        self.kind = kind
        self._slot_of: Dict[int, int] = {}
        self._capacity = 0
        self._active = np.zeros(0, dtype=bool)
        # Memoized sensor-id-array -> slot-index-array mapping for the
        # common case of the same sensor population every window (slots
        # are append-only, so a cached mapping never goes stale).  The
        # final flag marks "the ids cover every live slot in order", which
        # lets updates swap fancy indexing for whole-array slices.
        self._slot_cache: Optional[Tuple[bytes, np.ndarray, bool]] = None
        # Common ring position shared by *all* k-of-n slots, or None once
        # a partial update (or an unevenly restored snapshot) desyncs
        # them.  While synced, the ring eviction column is one basic
        # slice instead of a 2-d gather.
        self._pos_sync: Optional[int] = 0
        if kind == "k_of_n":
            self.k = int(params["k"])
            self.n = int(params["n"])
            if not 1 <= self.k <= self.n:
                raise ValueError("need 1 <= k <= n")
            self._buf = np.zeros((0, self.n), dtype=bool)
            self._pos = np.zeros(0, dtype=np.int64)
            self._updates = np.zeros(0, dtype=np.int64)
            self._count = np.zeros(0, dtype=np.int64)
        elif kind == "sprt":
            self.p0 = float(params["p0"])
            self.p1 = float(params["p1"])
            self.alpha = float(params["alpha"])
            self.beta = float(params["beta"])
            if not 0.0 < self.p0 < self.p1 < 1.0:
                raise ValueError("need 0 < p0 < p1 < 1")
            if not (0.0 < self.alpha < 1.0 and 0.0 < self.beta < 1.0):
                raise ValueError("alpha and beta must be in (0, 1)")
            # Hoisted once; math.log is deterministic, so these equal the
            # per-update logs the scalar filter computes.
            self._log_up = math.log(self.p1 / self.p0)
            self._log_down = math.log((1.0 - self.p1) / (1.0 - self.p0))
            self._upper = math.log((1.0 - self.beta) / self.alpha)
            self._lower = math.log(self.beta / (1.0 - self.alpha))
            self._llr = np.zeros(0, dtype=float)
        elif kind == "cusum":
            self.drift = float(params["drift"])
            self.threshold = float(params["threshold"])
            if not 0.0 < self.drift < 1.0:
                raise ValueError("drift must be in (0, 1)")
            if self.threshold <= 0:
                raise ValueError("threshold must be positive")
            self._g = np.zeros(0, dtype=float)

    @classmethod
    def from_prototype(
        cls,
        prototype: AlarmFilter,
        kernels: "Optional[object]" = None,
    ) -> "VectorFilterBank":
        """Build an empty bank matching one scalar filter's kind/params.

        ``prototype`` must be a pristine instance of one of the three
        stock filter classes exactly (a subclass may override ``update``,
        and a pre-seeded prototype would diverge from the zero state this
        bank gives newly seen sensors) — otherwise ``ValueError``.
        """
        if type(prototype) is KOfNFilter:
            bank = cls(
                "k_of_n", {"k": prototype.k, "n": prototype.n}, kernels=kernels
            )
        elif type(prototype) is SPRTFilter:
            bank = cls(
                "sprt",
                {
                    "p0": prototype.p0,
                    "p1": prototype.p1,
                    "alpha": prototype.alpha,
                    "beta": prototype.beta,
                },
                kernels=kernels,
            )
        elif type(prototype) is CUSUMFilter:
            bank = cls(
                "cusum",
                {"drift": prototype.drift, "threshold": prototype.threshold},
                kernels=kernels,
            )
        else:
            raise ValueError(
                "VectorFilterBank requires a stock KOfNFilter/SPRTFilter/"
                f"CUSUMFilter prototype, got {type(prototype).__name__}"
            )
        if prototype.state_dict() != bank._pristine_state():
            raise ValueError(
                "filter factory returns pre-seeded filters; the vector "
                "bank can only mirror pristine per-sensor state"
            )
        return bank

    def _pristine_state(self) -> Dict[str, object]:
        """state_dict of the zero-state filter new sensors start from."""
        if self.kind == "k_of_n":
            return {
                "kind": "k_of_n",
                "k": self.k,
                "n": self.n,
                "window": [],
                "active": False,
            }
        if self.kind == "sprt":
            return {
                "kind": "sprt",
                "p0": self.p0,
                "p1": self.p1,
                "alpha": self.alpha,
                "beta": self.beta,
                "llr": 0.0,
                "active": False,
            }
        return {
            "kind": "cusum",
            "drift": self.drift,
            "threshold": self.threshold,
            "g": 0.0,
            "active": False,
        }

    # -- slot management --------------------------------------------------

    def _grow_one(self, sensor_id: int) -> int:
        slot = len(self._slot_of)
        if slot == self._capacity:
            new_cap = max(8, 2 * self._capacity)
            grow = new_cap - self._capacity
            self._active = np.concatenate(
                [self._active, np.zeros(grow, dtype=bool)]
            )
            if self.kind == "k_of_n":
                self._buf = np.concatenate(
                    [self._buf, np.zeros((grow, self.n), dtype=bool)]
                )
                self._pos = np.concatenate(
                    [self._pos, np.zeros(grow, dtype=np.int64)]
                )
                self._updates = np.concatenate(
                    [self._updates, np.zeros(grow, dtype=np.int64)]
                )
                self._count = np.concatenate(
                    [self._count, np.zeros(grow, dtype=np.int64)]
                )
            elif self.kind == "sprt":
                self._llr = np.concatenate([self._llr, np.zeros(grow)])
            else:
                self._g = np.concatenate([self._g, np.zeros(grow)])
            self._capacity = new_cap
        self._slot_of[sensor_id] = slot
        # A newcomer's ring starts at position 0; existing rings keep the
        # lockstep invariant only if they are also at 0.
        if self._pos_sync != 0:
            self._pos_sync = None
        return slot

    def _slots_for(self, sids: np.ndarray) -> "Tuple[np.ndarray, bool]":
        """Slot indices for ascending sensor ids, creating missing slots.

        Also reports whether the ids map onto ``0..n_live-1`` in order
        (every live slot updated, none skipped) — the shape that allows
        whole-array update kernels.
        """
        key = sids.tobytes()
        cached = self._slot_cache
        if cached is not None and cached[0] == key:
            return cached[1], cached[2]
        slot_of = self._slot_of
        slots = np.empty(len(sids), dtype=np.intp)
        for i, sid_raw in enumerate(sids):
            sid = int(sid_raw)
            slot = slot_of.get(sid)
            if slot is None:
                slot = self._grow_one(sid)
            slots[i] = slot
        full = len(slots) == len(slot_of) and bool(
            (slots == np.arange(len(slots))).all()
        )
        self._slot_cache = (key, slots, full)
        return slots, full

    # -- updates ----------------------------------------------------------

    def update_batch(
        self,
        window_index: int,
        sensor_ids: Sequence[int],
        raw: Sequence[bool],
        *,
        assume_sorted: bool = False,
    ) -> List[FilterTransition]:
        """Advance every reporting sensor's filter with one array pass.

        Sensors are processed in ascending id order (matching
        ``FilterBank.update`` over ``sorted(raw_by_sensor.items())``);
        absent sensors keep their state untouched, exactly like the
        scalar bank.  Returns the filtered-alarm transitions in the same
        order the scalar bank emits them.  ``assume_sorted`` skips the
        ascending-id check for callers (the fused pipeline) that already
        hold the ids strictly ascending.
        """
        sids = np.asarray(sensor_ids)
        raws = np.asarray(raw, dtype=bool)
        if (
            not assume_sorted
            and len(sids) > 1
            and not np.all(sids[1:] > sids[:-1])
        ):
            order = np.argsort(sids, kind="stable")
            sids = sids[order]
            raws = raws[order]
        slots, full = self._slots_for(sids)
        if len(slots) == 0:
            return []
        # When every live slot updates in order, basic slices replace the
        # fancy gathers/scatters — same elements, same values, just read
        # and written through views.
        sel: "object" = slice(0, len(slots)) if full else slots
        before = self._active[sel].copy()
        if self.kind == "k_of_n":
            if full and self._pos_sync is not None:
                self._update_k_of_n_lockstep(len(slots), raws)
            else:
                self._pos_sync = None
                self._update_k_of_n(slots, raws)
        elif self.kind == "sprt":
            self._update_sprt(sel, raws)
        else:
            self._update_cusum(sel, raws)
        after = self._active[sel]
        changed = np.flatnonzero(before != after)
        return [
            FilterTransition(
                sensor_id=int(sids[i]),
                window_index=window_index,
                raised=bool(after[i]),
            )
            for i in changed
        ]

    def _update_k_of_n_lockstep(self, live: int, raws: np.ndarray) -> None:
        """:meth:`_update_k_of_n` when all ``live`` rings share one write
        position — integer arithmetic on whole-array views, so the state
        arrays end bit-identical to the gather/scatter kernel's."""
        p = self._pos_sync
        assert p is not None
        self._kernels.k_of_n_lockstep(
            self._buf[:live],
            p,
            raws,
            self._count[:live],
            self._active[:live],
            self.k,
        )
        advanced = (p + 1) % self.n
        self._pos[:live] = advanced
        self._pos_sync = advanced
        self._updates[:live] += 1

    def quiescent_all_false(self, sensor_ids: np.ndarray) -> bool:
        """True when all-False updates over this exact id set are pure
        positional advances.

        Holds for a lockstep k-of-n bank whose rings are all empty
        (``count == 0`` implies every ring cell is False): evicting
        False and inserting False leaves counts, rings, and active flags
        untouched — only the shared write position and the per-slot
        update counters move.  ``sensor_ids`` must cover every live slot
        in ascending order (the ``full`` shape), or partial updates
        would desync positions.  SPRT/CUSUM statistics decay toward
        their rest state rather than sitting at it, so they never
        qualify.
        """
        if self.kind != "k_of_n" or self._pos_sync is None:
            return False
        slots, full = self._slots_for(sensor_ids)
        if not full or len(slots) == 0:
            return False
        return not self._count[: len(slots)].any()

    def advance_quiescent(self, count: int) -> None:
        """Apply ``count`` deferred all-False windows in O(1).

        Only valid immediately after :meth:`quiescent_all_false`
        returned True and no other update ran since: positions advance
        ``count`` steps, update counters grow by ``count``, everything
        else is provably unchanged.
        """
        if count <= 0:
            return
        live = len(self._slot_of)
        assert self._pos_sync is not None
        advanced = (self._pos_sync + count) % self.n
        self._pos[:live] = advanced
        self._pos_sync = advanced
        self._updates[:live] += count

    def _update_k_of_n(self, slots: np.ndarray, raws: np.ndarray) -> None:
        # Ring cells that were never written are False (allocation and
        # snapshot restore both guarantee it), so the evicted value can
        # be read unconditionally — a not-yet-full ring evicts False,
        # exactly like the scalar filter's shorter deque.
        pos = self._pos[slots]
        removed = self._buf[slots, pos]
        count = self._count[slots] + (raws.astype(np.int64) - removed)
        self._count[slots] = count
        self._buf[slots, pos] = raws
        self._pos[slots] = (pos + 1) % self.n
        self._updates[slots] += 1
        self._active[slots] = count >= self.k

    def _update_sprt(self, slots: "object", raws: np.ndarray) -> None:
        # ``slots`` is a slot-index array, or a basic slice covering every
        # live slot in order (same elements either way).  The kernel
        # returns fresh gathered arrays; scatter them back.
        llr, active = self._kernels.sprt_step(
            self._llr[slots],
            raws,
            self._active[slots],
            self._log_up,
            self._log_down,
            self._upper,
            self._lower,
        )
        self._active[slots] = active
        self._llr[slots] = llr

    def _update_cusum(self, slots: "object", raws: np.ndarray) -> None:
        # ``slots``: see :meth:`_update_sprt`.
        g, active = self._kernels.cusum_step(
            self._g[slots],
            raws,
            self._active[slots],
            self.drift,
            self.threshold,
        )
        self._g[slots] = g
        self._active[slots] = active

    def update(
        self, window_index: int, raw_by_sensor: Dict[int, bool]
    ) -> List[FilterTransition]:
        """:meth:`FilterBank.update`-compatible entry point."""
        items = sorted(raw_by_sensor.items())
        return self.update_batch(
            window_index,
            np.array([sid for sid, _ in items], dtype=np.int64),
            np.array([bool(raw) for _, raw in items], dtype=bool),
        )

    # -- queries ----------------------------------------------------------

    def active_sensors(self) -> List[int]:
        """Sensors whose filtered alarm is currently set."""
        return sorted(
            sid for sid, slot in self._slot_of.items() if self._active[slot]
        )

    def is_active(self, sensor_id: int) -> bool:
        """Filtered-alarm state of one sensor (False if never seen)."""
        slot = self._slot_of.get(sensor_id)
        return bool(self._active[slot]) if slot is not None else False

    # -- checkpointing ----------------------------------------------------

    def _sensor_state(self, slot: int) -> Dict[str, object]:
        if self.kind == "k_of_n":
            length = min(int(self._updates[slot]), self.n)
            pos = int(self._pos[slot])
            if length < self.n:
                window = self._buf[slot, :length]
            else:
                window = np.concatenate(
                    [self._buf[slot, pos:], self._buf[slot, :pos]]
                )
            return {
                "kind": "k_of_n",
                "k": self.k,
                "n": self.n,
                "window": [bool(x) for x in window],
                "active": bool(self._active[slot]),
            }
        if self.kind == "sprt":
            return {
                "kind": "sprt",
                "p0": self.p0,
                "p1": self.p1,
                "alpha": self.alpha,
                "beta": self.beta,
                "llr": float(self._llr[slot]),
                "active": bool(self._active[slot]),
            }
        return {
            "kind": "cusum",
            "drift": self.drift,
            "threshold": self.threshold,
            "g": float(self._g[slot]),
            "active": bool(self._active[slot]),
        }

    def state_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot, byte-compatible with ``FilterBank``'s."""
        return {
            "filters": [
                [sensor_id, self._sensor_state(self._slot_of[sensor_id])]
                for sensor_id in sorted(self._slot_of)
            ]
        }

    def load_state_dict(self, payload: Dict[str, object]) -> None:
        """Replace all per-sensor state with a snapshot's contents.

        Accepts snapshots written by either bank implementation.  Raises
        ``ValueError`` when any per-sensor entry's kind or parameters
        differ from this bank's (heterogeneous banks need the scalar
        implementation).
        """
        entries = [(int(sid), state) for sid, state in payload["filters"]]
        for _, state in entries:
            self._check_compatible(state)
        self._slot_of = {}
        self._capacity = 0
        self._slot_cache = None
        self._active = np.zeros(0, dtype=bool)
        if self.kind == "k_of_n":
            self._buf = np.zeros((0, self.n), dtype=bool)
            self._pos = np.zeros(0, dtype=np.int64)
            self._updates = np.zeros(0, dtype=np.int64)
            self._count = np.zeros(0, dtype=np.int64)
        elif self.kind == "sprt":
            self._llr = np.zeros(0, dtype=float)
        else:
            self._g = np.zeros(0, dtype=float)
        for sid, state in entries:
            slot = self._grow_one(sid)
            self._active[slot] = bool(state["active"])
            if self.kind == "k_of_n":
                window = [bool(x) for x in state["window"]]
                if len(window) > self.n:
                    raise ValueError(
                        f"k-of-n window longer than n={self.n} in snapshot"
                    )
                length = len(window)
                self._buf[slot, :length] = window
                # Oldest entry sits at index 0, so the ring's write
                # position is `length % n` (0 when the buffer is full).
                self._pos[slot] = length % self.n
                self._updates[slot] = length
                self._count[slot] = sum(window)
            elif self.kind == "sprt":
                self._llr[slot] = float(state["llr"])
            else:
                self._g[slot] = float(state["g"])
        if self.kind == "k_of_n":
            live = len(self._slot_of)
            pos = self._pos[:live]
            if live == 0:
                self._pos_sync = 0
            elif bool((pos == pos[0]).all()):
                self._pos_sync = int(pos[0])
            else:
                self._pos_sync = None

    def _check_compatible(self, state: Dict[str, object]) -> None:
        kind = state.get("kind")
        if kind != self.kind:
            raise ValueError(
                f"snapshot filter kind {kind!r} does not match "
                f"vector bank kind {self.kind!r}"
            )
        if self.kind == "k_of_n":
            same = int(state["k"]) == self.k and int(state["n"]) == self.n
        elif self.kind == "sprt":
            same = (
                float(state["p0"]) == self.p0
                and float(state["p1"]) == self.p1
                and float(state["alpha"]) == self.alpha
                and float(state["beta"]) == self.beta
            )
        else:
            same = (
                float(state["drift"]) == self.drift
                and float(state["threshold"]) == self.threshold
            )
        if not same:
            raise ValueError(
                "snapshot filter parameters differ from the vector "
                "bank's; heterogeneous banks need the scalar FilterBank"
            )
