"""Error-versus-attack classification (paper §3.4, Fig. 5).

The classifier inspects the structure of the two learned HMMs:

* the global ``M_CO`` (correct states → observable states) carries the
  signature of **attacks**, which "change the temporal behavior of the
  environment as sensed by the network":

  - non-orthogonal *columns* of ``B^CO`` → **Dynamic Creation** (one
    correct state maps to several observable states),
  - non-orthogonal *rows* → **Dynamic Deletion** (several correct states
    collapse onto one observable state),
  - both → **Mixed**,
  - orthogonal but with a one-to-one state correspondence whose
    attribute values all differ → **Dynamic Change**;

* the per-sensor ``M_CE`` (correct states → error/attack-track states)
  carries the signature of **errors**:

  - a single (approximately) all-ones column of ``B^CE`` → **Stuck-at**
    (Eq. 7),
  - orthogonal rows and columns (one-to-one mapping, Eq. 8) with a
    constant correct/error attribute *ratio* → **Calibration**, with a
    constant *difference* → **Additive**,
  - neither → fall back to the Dynamic Change test, then **Unknown**.

Random-noise errors are acknowledged by the paper to be unclassifiable
under its estimation model (they average out); they surface here as
*Unknown* or as no diagnosis at all, which tests assert explicitly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .online_hmm import EmissionMatrix, OnlineHMM
from .orthogonality import (
    OrthogonalityReport,
    analyze_orthogonality,
    has_all_ones_column,
)
from .tracks import ErrorAttackTrack


class AnomalyCategory(enum.Enum):
    """Top-level verdict: was the malfunction accidental or malicious?"""

    NONE = "none"
    ERROR = "error"
    ATTACK = "attack"
    UNKNOWN = "unknown"


class AnomalyType(enum.Enum):
    """The §3.3 fault/attack taxonomy."""

    NONE = "none"
    STUCK_AT = "stuck_at"
    CALIBRATION = "calibration"
    ADDITIVE = "additive"
    RANDOM_NOISE = "random_noise"
    UNKNOWN_ERROR = "unknown_error"
    DYNAMIC_CREATION = "creation"
    DYNAMIC_DELETION = "deletion"
    DYNAMIC_CHANGE = "change"
    MIXED = "mixed"

    @property
    def category(self) -> AnomalyCategory:
        """The category this type belongs to."""
        if self in (AnomalyType.NONE,):
            return AnomalyCategory.NONE
        if self in (
            AnomalyType.STUCK_AT,
            AnomalyType.CALIBRATION,
            AnomalyType.ADDITIVE,
            AnomalyType.RANDOM_NOISE,
        ):
            return AnomalyCategory.ERROR
        if self in (
            AnomalyType.DYNAMIC_CREATION,
            AnomalyType.DYNAMIC_DELETION,
            AnomalyType.DYNAMIC_CHANGE,
            AnomalyType.MIXED,
        ):
            return AnomalyCategory.ATTACK
        return AnomalyCategory.UNKNOWN


@dataclass
class ClassifierConfig:
    """Tunable thresholds of the structural analysis.

    Defaults follow the paper's empirical tolerances where it states
    them (§4.1) and DESIGN.md §6 where it does not.
    """

    #: Row-Gram cross tolerance for B^CO.  Deletion collapses two rows
    #: onto one symbol (cross ≈ 1.0) while single-sensor faults only
    #: leak (paper Table 2: 0.11-0.17), so this sits between the bands.
    row_cross_tolerance: float = 0.45
    #: Column-Gram cross tolerance for B^CO.  Creation splits one row
    #: across two symbols (column cross ``b(1-b) <= 0.25``); the paper's
    #: "< 0.1" tolerance applies at this scale.
    column_cross_tolerance: float = 0.12
    #: Row-Gram cross tolerance for the per-sensor B^CE one-to-one test.
    ce_row_tolerance: float = 0.45
    #: Diagonal Gram tolerance (paper: > 0.8).
    self_tolerance: float = 0.8
    #: Emission entries below this are treated as estimator smear and
    #: zeroed before structural analysis (see EmissionMatrix.denoised).
    emission_floor: float = 0.2
    #: Minimum per-row mass a column needs to count as "all ones" (Eq. 7).
    stuck_threshold: float = 0.6
    #: Maximum relative dispersion for a "constant" ratio (calibration).
    ratio_dispersion_max: float = 0.08
    #: Minimum deviation of the mean ratio from 1 to call it calibration.
    ratio_deviation_min: float = 0.04
    #: Maximum dispersion (relative to attribute scale) for a "constant"
    #: difference (additive).
    diff_dispersion_max: float = 0.08
    #: Minimum mean absolute difference to call it additive.
    diff_magnitude_min: float = 1.0
    #: Attribute scale used to normalise difference dispersion.
    attribute_scale: float = 25.0
    #: Per-attribute displacement for the dynamic-change test.
    change_displacement_min: float = 2.0
    #: Ignore hidden states / tracks with fewer visits than this.
    min_state_visits: int = 3
    #: Minimum recorded track length before classification is attempted.
    min_track_length: int = 5
    #: Minimum number of (correct, error) state pairs for the
    #: calibration/additive tests.
    min_pairs: int = 2
    #: Minimum number of concurrently tracked sensors for an attack
    #: verdict to stand.  The paper's attacks are coalition attacks (a
    #: third of the sensors): a single sensor cannot move the network
    #: mean onto a held/created state without reporting values extreme
    #: enough to be clipped, so an attack-shaped B^CO corroborated by
    #: only one tracked sensor is treated as that sensor's fault
    #: leakage instead (DESIGN.md §6).
    min_attack_coalition: int = 2


@dataclass(frozen=True)
class AttributeComparison:
    """Ratio/difference statistics across corresponding state pairs."""

    pairs: Tuple[Tuple[int, int], ...]
    ratio_mean: Optional[np.ndarray]
    ratio_std: Optional[np.ndarray]
    diff_mean: np.ndarray
    diff_std: np.ndarray

    @property
    def n_pairs(self) -> int:
        """Number of corresponding (correct, symbol) state pairs."""
        return len(self.pairs)


@dataclass(frozen=True)
class Diagnosis:
    """A classification verdict plus its supporting evidence.

    Attributes
    ----------
    anomaly_type:
        The §3.3 type (or NONE / UNKNOWN_ERROR).
    sensor_id:
        The diagnosed sensor, or None for system-level verdicts.
    confidence:
        Coarse confidence in [0, 1] derived from evidence margins.
    evidence:
        Free-form structured evidence (Gram extremes, offending pairs,
        ratio/difference statistics) for reports and debugging.
    """

    anomaly_type: AnomalyType
    sensor_id: Optional[int] = None
    confidence: float = 1.0
    evidence: Dict[str, object] = field(default_factory=dict)

    @property
    def category(self) -> AnomalyCategory:
        """ERROR / ATTACK / NONE / UNKNOWN."""
        return self.anomaly_type.category

    @property
    def is_attack(self) -> bool:
        """Convenience flag."""
        return self.category is AnomalyCategory.ATTACK

    @property
    def is_error(self) -> bool:
        """Convenience flag."""
        return self.category is AnomalyCategory.ERROR


# ---------------------------------------------------------------------------
# System-level analysis of M_CO
# ---------------------------------------------------------------------------


def _one_to_one_correspondence(
    emission: EmissionMatrix,
) -> Optional[List[Tuple[int, int]]]:
    """Dominant (state id, symbol id) pairs when the mapping is injective."""
    if emission.matrix.size == 0:
        return None
    dominant = emission.dominant_symbols()
    symbols = list(dominant.values())
    if len(set(symbols)) != len(symbols):
        return None
    return sorted(dominant.items())


def _change_displacements(
    pairs: Sequence[Tuple[int, int]],
    state_vectors: Dict[int, np.ndarray],
) -> List[Tuple[Tuple[int, int], np.ndarray]]:
    """Per-pair |correct - observable| attribute displacements."""
    out = []
    for state_id, symbol_id in pairs:
        if state_id == symbol_id:
            continue
        correct = state_vectors.get(state_id)
        observed = state_vectors.get(symbol_id)
        if correct is None or observed is None:
            continue
        out.append(
            ((state_id, symbol_id), np.abs(np.asarray(correct) - np.asarray(observed)))
        )
    return out


def classify_system(
    m_co: OnlineHMM,
    state_vectors: Dict[int, np.ndarray],
    config: Optional[ClassifierConfig] = None,
) -> Diagnosis:
    """Classify the system-level condition from ``M_CO`` (Fig. 5, top).

    Returns a Diagnosis with one of DYNAMIC_CREATION, DYNAMIC_DELETION,
    MIXED, DYNAMIC_CHANGE, or NONE (the error branch is per-sensor; see
    :func:`classify_track`).

    The paper states the tests as row/column orthogonality of ``B^CO``.
    Orthogonality alone, however, cannot distinguish attack structure
    from the residual leakage a single degraded sensor induces around
    state boundaries (the paper's own Table 2 shows 0.11-0.17 of such
    leakage and still calls the matrix orthogonal).  We therefore apply
    the orthogonality conditions to the *denoised* matrix and read them
    through their structural content (§3.4 wording in parentheses):

    * **creation** — a column with no corresponding hidden state
      receives mass from a row that also emits its own symbol ("a
      correct environment state being associated with multiple
      observable environment states", the new one being spurious —
      exactly Table 7, where column (25,69) has no matching row);
    * **deletion** — a row's dominant symbol is another *existing*
      state's own symbol while the row's own column is starved
      ("multiple correct environment states being associated with the
      same observable environment state" — Table 6, where row (29,56)
      emits (20,71) and column (29,56) is empty);
    * **change** — rows map one-to-one onto spurious symbols whose
      attributes all differ from the correct states' (left branch of
      Fig. 5).
    """
    config = config or ClassifierConfig()
    emission = m_co.emission_matrix(
        min_state_visits=config.min_state_visits,
        min_symbol_visits=config.min_state_visits,
    ).denoised(config.emission_floor)
    report = analyze_orthogonality(
        emission,
        row_tolerance=config.row_cross_tolerance,
        column_tolerance=config.column_cross_tolerance,
        self_tolerance=config.self_tolerance,
    )
    evidence: Dict[str, object] = {
        "orthogonality": report,
        "b_co_states": emission.state_ids,
        "b_co_symbols": emission.symbol_ids,
    }
    if emission.matrix.size == 0:
        return Diagnosis(anomaly_type=AnomalyType.NONE, evidence=evidence)

    structure = _analyze_co_structure(emission, config)
    evidence.update(structure.as_evidence())

    if structure.creation_pairs and structure.deletion_pairs:
        return Diagnosis(
            anomaly_type=AnomalyType.MIXED,
            confidence=_cross_confidence(report, config),
            evidence=evidence,
        )
    if structure.creation_pairs:
        return Diagnosis(
            anomaly_type=AnomalyType.DYNAMIC_CREATION,
            confidence=_cross_confidence(report, config),
            evidence=evidence,
        )
    if structure.deletion_pairs:
        return Diagnosis(
            anomaly_type=AnomalyType.DYNAMIC_DELETION,
            confidence=_cross_confidence(report, config),
            evidence=evidence,
        )

    # No creation/deletion structure: either clean or a Dynamic Change
    # (one-to-one correspondence with displaced attributes).
    if structure.change_pairs:
        displaced = _change_displacements(structure.change_pairs, state_vectors)
        changed = [
            pair
            for pair, displacement in displaced
            if np.all(displacement >= config.change_displacement_min)
        ]
        if changed:
            evidence["changed_pairs"] = tuple(changed)
            return Diagnosis(
                anomaly_type=AnomalyType.DYNAMIC_CHANGE,
                confidence=min(
                    1.0,
                    0.5 + len(changed) / max(len(structure.change_pairs), 1) / 2,
                ),
                evidence=evidence,
            )
    return Diagnosis(anomaly_type=AnomalyType.NONE, evidence=evidence)


@dataclass(frozen=True)
class _COStructure:
    """Structural reading of a denoised ``B^CO`` matrix."""

    #: (hidden state, spurious symbol) pairs where the row splits
    #: between its own symbol and the spurious one -> creation.
    creation_pairs: Tuple[Tuple[int, int], ...]
    #: (collapsed state, surviving state) pairs -> deletion.
    deletion_pairs: Tuple[Tuple[int, int], ...]
    #: (hidden state, spurious symbol) one-to-one shifts -> change
    #: candidates (confirmed by the attribute-displacement test).
    change_pairs: Tuple[Tuple[int, int], ...]

    def as_evidence(self) -> Dict[str, object]:
        return {
            "creation_pairs": self.creation_pairs,
            "deletion_pairs": self.deletion_pairs,
            "change_candidate_pairs": self.change_pairs,
        }


def _analyze_co_structure(
    emission: EmissionMatrix, config: ClassifierConfig
) -> _COStructure:
    """Extract the creation / deletion / change structure of ``B^CO``."""
    matrix = emission.matrix
    hidden = set(emission.state_ids)
    symbol_index = {s: k for k, s in enumerate(emission.symbol_ids)}
    significant = config.emission_floor

    def mass(state_id: int, symbol_id: int) -> float:
        col = symbol_index.get(symbol_id)
        if col is None:
            return 0.0
        return float(matrix[emission.state_ids.index(state_id), col])

    def column_peak(symbol_id: int) -> float:
        col = symbol_index.get(symbol_id)
        if col is None:
            return 0.0
        return float(matrix[:, col].max())

    # Spurious symbols: observable states that never became correct
    # states — they cannot come from the environment's own dynamics.
    spurious = [
        s for s in emission.symbol_ids
        if s not in hidden and column_peak(s) >= significant
    ]

    creation_pairs = []
    change_shift_map = {}
    for row, state_id in enumerate(emission.state_ids):
        own = mass(state_id, state_id)
        for symbol_id in spurious:
            leaked = mass(state_id, symbol_id)
            if leaked < significant:
                continue
            if own >= significant:
                # The row alternates between the real and the spurious
                # symbol: a new state was *added* to the dynamics.
                creation_pairs.append((state_id, symbol_id))
            else:
                # The row moved wholesale onto the spurious symbol: the
                # state was *renamed* — a change candidate.
                change_shift_map[state_id] = symbol_id

    deletion_pairs = []
    dominant = emission.dominant_symbols()
    for state_id in emission.state_ids:
        target = dominant[state_id]
        if target == state_id or target not in hidden:
            continue
        if dominant.get(target) != target:
            continue
        # Collapse is only a deletion if the collapsed state's own
        # symbol effectively vanished from the observable dynamics.
        if column_peak(state_id) < significant:
            deletion_pairs.append((state_id, target))

    # Change requires the shift map to be injective (one-to-one).
    images = list(change_shift_map.values())
    change_pairs = (
        tuple(sorted(change_shift_map.items()))
        if images and len(set(images)) == len(images)
        else ()
    )
    return _COStructure(
        creation_pairs=tuple(creation_pairs),
        deletion_pairs=tuple(deletion_pairs),
        change_pairs=change_pairs,
    )


def _cross_confidence(
    report: OrthogonalityReport, config: ClassifierConfig
) -> float:
    """Confidence that grows with the margin over the cross tolerances."""
    row_margin = (report.max_row_cross - config.row_cross_tolerance) / max(
        1.0 - config.row_cross_tolerance, 1e-9
    )
    col_margin = (
        report.max_column_cross - config.column_cross_tolerance
    ) / max(1.0 - config.column_cross_tolerance, 1e-9)
    margin = max(row_margin, col_margin)
    return float(np.clip(0.5 + margin, 0.0, 1.0))


# ---------------------------------------------------------------------------
# Per-sensor analysis of M_CE
# ---------------------------------------------------------------------------


def compare_state_attributes(
    pairs: Sequence[Tuple[int, int]],
    state_vectors: Dict[int, np.ndarray],
) -> Optional[AttributeComparison]:
    """Ratio/difference statistics for corresponding state pairs (§3.4).

    Ratios follow the paper's ``x^c / x^e`` convention; they are omitted
    (None) when any error-state attribute is too close to zero for the
    quotient to be meaningful.
    """
    correct_rows = []
    error_rows = []
    used_pairs = []
    for state_id, symbol_id in pairs:
        correct = state_vectors.get(state_id)
        error = state_vectors.get(symbol_id)
        if correct is None or error is None:
            continue
        correct_rows.append(np.asarray(correct, dtype=float))
        error_rows.append(np.asarray(error, dtype=float))
        used_pairs.append((state_id, symbol_id))
    if not used_pairs:
        return None
    correct_mat = np.vstack(correct_rows)
    error_mat = np.vstack(error_rows)

    diff = correct_mat - error_mat
    if np.any(np.abs(error_mat) < 1e-6):
        ratio_mean = ratio_std = None
    else:
        ratio = correct_mat / error_mat
        ratio_mean = ratio.mean(axis=0)
        ratio_std = ratio.std(axis=0)
    return AttributeComparison(
        pairs=tuple(used_pairs),
        ratio_mean=ratio_mean,
        ratio_std=ratio_std,
        diff_mean=diff.mean(axis=0),
        diff_std=diff.std(axis=0),
    )


def _calibration_matches(
    comparison: AttributeComparison, config: ClassifierConfig
) -> bool:
    """Constant, non-unit ratio across all attributes."""
    if comparison.ratio_mean is None or comparison.ratio_std is None:
        return False
    if comparison.n_pairs < config.min_pairs:
        return False
    dispersion_ok = np.all(
        comparison.ratio_std <= config.ratio_dispersion_max
        * np.maximum(np.abs(comparison.ratio_mean), 1e-9)
        + 1e-12
    )
    deviates_from_unit = np.any(
        np.abs(comparison.ratio_mean - 1.0) >= config.ratio_deviation_min
    )
    return bool(dispersion_ok and deviates_from_unit)


def _additive_matches(
    comparison: AttributeComparison, config: ClassifierConfig
) -> bool:
    """Constant, non-zero difference across all attributes."""
    if comparison.n_pairs < config.min_pairs:
        return False
    dispersion_ok = np.all(
        comparison.diff_std
        <= config.diff_dispersion_max * config.attribute_scale
    )
    has_magnitude = np.any(
        np.abs(comparison.diff_mean) >= config.diff_magnitude_min
    )
    return bool(dispersion_ok and has_magnitude)


def _normalized_dispersion(values_std: np.ndarray, scale: np.ndarray) -> float:
    """Mean std-to-scale ratio, the tie-breaking dispersion measure."""
    return float(np.mean(values_std / np.maximum(np.abs(scale), 1e-9)))


def classify_track(
    track: ErrorAttackTrack,
    m_co: OnlineHMM,
    state_vectors: Dict[int, np.ndarray],
    config: Optional[ClassifierConfig] = None,
    n_tracked_sensors: Optional[int] = None,
) -> Diagnosis:
    """Classify one sensor's anomaly (Fig. 5, full procedure).

    The system-level ``M_CO`` analysis runs first (attacks dominate: the
    observable dynamics of the *network* changed); when it is clean, the
    track's ``M_CE`` drives the error-type determination.

    Parameters
    ----------
    n_tracked_sensors:
        Number of distinct sensors currently under tracks, used for the
        attack-coalition corroboration check; ``None`` skips the check.
    """
    config = config or ClassifierConfig()
    system = classify_system(m_co, state_vectors, config)
    coalition_ok = (
        n_tracked_sensors is None
        or n_tracked_sensors >= config.min_attack_coalition
    )
    if coalition_ok and system.anomaly_type in (
        AnomalyType.DYNAMIC_CREATION,
        AnomalyType.DYNAMIC_DELETION,
        AnomalyType.MIXED,
    ):
        return Diagnosis(
            anomaly_type=system.anomaly_type,
            sensor_id=track.sensor_id,
            confidence=system.confidence,
            evidence=dict(system.evidence),
        )

    if track.length < config.min_track_length:
        return Diagnosis(
            anomaly_type=AnomalyType.NONE,
            sensor_id=track.sensor_id,
            confidence=0.0,
            evidence={"reason": "track too short", "length": track.length},
        )

    emission = track.model.emission_without_bottom(
        min_state_visits=config.min_state_visits
    ).denoised(config.emission_floor)
    evidence: Dict[str, object] = {
        "b_ce_states": emission.state_ids,
        "b_ce_symbols": emission.symbol_ids,
        "track_length": track.length,
    }
    if emission.matrix.size == 0:
        return Diagnosis(
            anomaly_type=AnomalyType.UNKNOWN_ERROR,
            sensor_id=track.sensor_id,
            confidence=0.2,
            evidence=evidence,
        )

    # Eq. 7: stuck-at — one column of (approximately) all ones.
    stuck, stuck_symbol = has_all_ones_column(emission, config.stuck_threshold)
    if stuck:
        evidence["stuck_symbol"] = stuck_symbol
        if stuck_symbol in state_vectors:
            evidence["stuck_vector"] = np.asarray(state_vectors[stuck_symbol])
        return Diagnosis(
            anomaly_type=AnomalyType.STUCK_AT,
            sensor_id=track.sensor_id,
            confidence=float(emission.matrix.min(axis=0).max()),
            evidence=evidence,
        )

    # Eq. 8: one-to-one mapping between correct and error states.  The
    # row-orthogonality gate rejects many-to-one collapses; injectivity
    # of the dominant-symbol map rejects one-to-many splits (we use the
    # dominant map rather than strict column orthogonality because the
    # forgetting-factor estimator leaves small boundary splits in B^CE;
    # see DESIGN.md §6).
    report = analyze_orthogonality(
        emission,
        row_tolerance=config.ce_row_tolerance,
        column_tolerance=1.0,
        self_tolerance=config.self_tolerance,
    )
    evidence["orthogonality"] = report
    if report.rows_orthogonal:
        pairs = _one_to_one_correspondence(emission)
        if pairs:
            comparison = compare_state_attributes(pairs, state_vectors)
            if comparison is not None:
                evidence["comparison"] = comparison
                calibration = _calibration_matches(comparison, config)
                additive = _additive_matches(comparison, config)
                if calibration and additive:
                    # Both look constant: pick the lower normalised
                    # dispersion, the paper's variance comparison.
                    assert comparison.ratio_std is not None
                    assert comparison.ratio_mean is not None
                    ratio_disp = _normalized_dispersion(
                        comparison.ratio_std, comparison.ratio_mean
                    )
                    diff_disp = _normalized_dispersion(
                        comparison.diff_std,
                        np.full_like(comparison.diff_mean, config.attribute_scale),
                    )
                    calibration = ratio_disp <= diff_disp
                    additive = not calibration
                if calibration:
                    return Diagnosis(
                        anomaly_type=AnomalyType.CALIBRATION,
                        sensor_id=track.sensor_id,
                        confidence=0.9,
                        evidence=evidence,
                    )
                if additive:
                    return Diagnosis(
                        anomaly_type=AnomalyType.ADDITIVE,
                        sensor_id=track.sensor_id,
                        confidence=0.9,
                        evidence=evidence,
                    )

    # Neither error signature held: last chance is the Dynamic Change
    # test on M_CO (paper: "If neither of the conditions holds, then we
    # check for the presence of a Dynamic Change attack").
    if coalition_ok and system.anomaly_type is AnomalyType.DYNAMIC_CHANGE:
        return Diagnosis(
            anomaly_type=AnomalyType.DYNAMIC_CHANGE,
            sensor_id=track.sensor_id,
            confidence=system.confidence,
            evidence={**evidence, **system.evidence},
        )
    return Diagnosis(
        anomaly_type=AnomalyType.UNKNOWN_ERROR,
        sensor_id=track.sensor_id,
        confidence=0.4,
        evidence=evidence,
    )
