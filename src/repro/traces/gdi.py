"""Synthetic Great Duck Island trace generator.

The paper evaluates on one month (July 2003) of readings from 10 outside
motes of the GDI habitat-monitoring deployment [7], sampling temperature
and humidity every 5 minutes, with substantial packet loss and some
malformed packets.  The original traces are not redistributable, so this
module generates a calibrated synthetic equivalent (see DESIGN.md §2 for
the substitution argument): the diurnal/weather structure, mote count,
sampling period, and loss processes are matched to what the paper
reports, which is all its method consumes.

The generator is a thin composition of the :mod:`repro.sensornet`
substrate — it literally runs the simulated deployment and records what
the collector received.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sensornet.collector import CollectorNode
from ..sensornet.environment import GDIDiurnalEnvironment, MINUTES_PER_DAY
from ..sensornet.messages import SensorMessage
from ..sensornet.network import StarNetwork
from ..sensornet.sensor import Mote
from ..sensornet.simulator import CorruptionStage, NetworkSimulator
from .schema import Trace, TraceRecord

#: The paper's Table 1 mote count.
GDI_SENSOR_COUNT = 10

#: GDI sampling period: one reading every 5 minutes.
GDI_SAMPLE_PERIOD_MINUTES = 5.0

#: July has 31 days.
GDI_DURATION_DAYS = 31


@dataclass
class GDITraceConfig:
    """Knobs of the synthetic GDI deployment.

    Defaults reproduce the paper's setup: 10 motes, 5-minute sampling,
    31 days, moderate loss ("about a hundred sensor readings in average"
    per 12-sample window of 10 motes implies roughly 15 % loss).
    """

    n_sensors: int = GDI_SENSOR_COUNT
    n_days: int = GDI_DURATION_DAYS
    sample_period_minutes: float = GDI_SAMPLE_PERIOD_MINUTES
    noise_std: float = 0.35
    loss_probability: float = 0.12
    corruption_probability: float = 0.01
    seed: int = 2003

    def __post_init__(self) -> None:
        if self.n_sensors <= 0:
            raise ValueError("n_sensors must be positive")
        if self.n_days <= 0:
            raise ValueError("n_days must be positive")
        if self.sample_period_minutes <= 0:
            raise ValueError("sample_period_minutes must be positive")

    @property
    def duration_minutes(self) -> float:
        """Total simulated time."""
        return self.n_days * float(MINUTES_PER_DAY)


def build_environment(config: Optional[GDITraceConfig] = None) -> GDIDiurnalEnvironment:
    """The calibrated July GDI environment for a given configuration."""
    config = config or GDITraceConfig()
    return GDIDiurnalEnvironment(n_days=config.n_days, seed=config.seed)


def generate_gdi_trace(
    config: Optional[GDITraceConfig] = None,
    corruption: Optional[CorruptionStage] = None,
) -> Trace:
    """Generate one synthetic GDI month as a :class:`Trace`.

    Parameters
    ----------
    config:
        Generator knobs; defaults reproduce the paper's setup.
    corruption:
        Optional fault/attack stage (see :mod:`repro.faults.injector`)
        applied to each report before the radio.  This is how the
        experiments plant the paper's faulty sensors 6/7 and the injected
        attacks.

    Returns
    -------
    Trace
        All reports the collector successfully parsed, plus delivery
        statistics in ``trace.metadata``.
    """
    config = config or GDITraceConfig()
    environment = build_environment(config)
    motes = [
        Mote(
            sensor_id=i,
            environment=environment,
            noise_std=config.noise_std,
            seed=config.seed,
        )
        for i in range(config.n_sensors)
    ]
    network = StarNetwork.homogeneous(
        sensor_ids=range(config.n_sensors),
        loss_probability=config.loss_probability,
        corruption_probability=config.corruption_probability,
        seed=config.seed,
    )
    collector = CollectorNode(window_minutes=config.duration_minutes)
    simulator = NetworkSimulator(
        environment=environment,
        motes=motes,
        network=network,
        collector=collector,
        sample_period_minutes=config.sample_period_minutes,
        corruption=corruption,
    )

    delivered: List[SensorMessage] = []
    report = simulator.run(config.duration_minutes)
    for window in report.windows:
        delivered.extend(window.messages)
    final = collector.flush()
    if final is not None:
        delivered.extend(final.messages)

    trace = Trace(
        records=[TraceRecord.from_message(m) for m in delivered],
        attribute_names=environment.attribute_names,
    )
    trace.metadata.update(
        {
            "n_sensors": float(config.n_sensors),
            "n_days": float(config.n_days),
            "seed": float(config.seed),
            "accepted": float(collector.stats.accepted),
            "malformed": float(collector.stats.malformed),
            "lost": float(collector.stats.lost),
        }
    )
    return trace
