"""Columnar fast path for scenario/trace generation.

The object-path generator (:func:`repro.traces.gdi.generate_gdi_trace`)
walks the simulator tick by tick, building a :class:`SensorMessage` per
reading.  That is the *oracle*: simple, obviously faithful to the
deployment model, and kept intact.  This module implements the same
computation over dense arrays — one ``(T, S, d)`` value grid plus
parallel id/time/drop masks — and is pinned to the oracle **bit for
bit** by the parity suite (``tests/test_columnar_parity.py``).

Why bit-exact equivalence is possible at all:

* environment sampling is vectorised such that scalar calls delegate to
  the batched kernels (see :mod:`repro.sensornet.environment`);
* ``Generator.normal(size=(T, d))`` consumes the same RNG stream as
  ``T`` sequential size-``d`` draws, so per-mote noise reproduces
  value-for-value;
* per-link loss/corruption draws are *conditionally* consumed (the
  corruption draw only happens when the packet was not lost), so the
  link stage pre-draws a bounded block of doubles from the private link
  RNG and replays the scalar decision walk over it — over-drawing a
  private Generator is unobservable;
* fault/attack kernels visit reports in message order (tick-major, then
  mote order), which :meth:`FaultInjector.apply_columnar` guarantees.

``GENERATOR_VERSION`` is the cache-invalidation knob: any change to the
generator's *outputs* (not just its speed) must bump it, which changes
every content hash in :mod:`repro.traces.cache` and forces regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sensornet.collector import ArrayWindow, DeliveryStats
from ..sensornet.environment import EnvironmentModel
from ..sensornet.network import GilbertElliottLoss
from .gdi import GDITraceConfig, build_environment
from .schema import Trace, TraceRecord

#: Bump on any behavioural change to trace generation (columnar or
#: object path).  Part of every scenario-cache content hash.
GENERATOR_VERSION = 1

#: Canonical empty observation matrix for windows emitted before any
#: report was accepted (the collector does not know the width yet).
_EMPTY_OBSERVATIONS = np.zeros((0, 0))
_EMPTY_OBSERVATIONS.flags.writeable = False


def tick_schedule(duration_minutes: float, period_minutes: float) -> np.ndarray:
    """Sampling times of the simulator's run loop, bit-exactly.

    The simulator accumulates ``minutes += period`` rather than
    multiplying, so for pathological float periods ``k * period`` could
    differ in the last ulp.  Replaying the accumulation keeps every
    downstream timestamp identical.
    """
    if duration_minutes <= 0:
        raise ValueError("duration_minutes must be positive")
    if period_minutes <= 0:
        raise ValueError("period_minutes must be positive")
    ticks: List[float] = []
    minutes = 0.0
    while minutes < duration_minutes:
        ticks.append(minutes)
        minutes += period_minutes
    return np.asarray(ticks, dtype=float)


@dataclass(eq=False)
class ColumnarTrace:
    """A generated deployment month as dense arrays.

    Attributes
    ----------
    tick_times:
        ``(T,)`` sampling times in minutes.
    sensor_ids:
        ``(S,)`` mote id of each column.
    values:
        ``(T, S, d)`` reports as they left the (possibly corrupted)
        motes.  Cells that were lost/suppressed still hold the values
        that *would* have been sent — consult :attr:`delivered`.
    delivered:
        ``(T, S)`` True where the collector accepted the report.
    lost / malformed:
        ``(T, S)`` link-level packet fate masks (drops and CRC
        failures).
    duplicated:
        ``(T, S)`` True where the link also delivered a second copy
        (always False on the loss-only GDI profile).
    attribute_names / metadata:
        Same provenance the object-path :class:`Trace` carries.

    All arrays are frozen read-only after construction: windows and
    pipeline stages hold *views* into them, and the copy-on-write guard
    tests rely on accidental mutation raising.
    """

    tick_times: np.ndarray
    sensor_ids: np.ndarray
    values: np.ndarray
    delivered: np.ndarray
    lost: np.ndarray
    malformed: np.ndarray
    duplicated: np.ndarray
    attribute_names: Tuple[str, ...] = ("temperature", "humidity")
    metadata: Dict[str, float] = field(default_factory=dict)
    _flat: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default=None, init=False, repr=False
    )

    def __post_init__(self) -> None:
        self.tick_times = np.asarray(self.tick_times, dtype=float)
        self.sensor_ids = np.asarray(self.sensor_ids, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=float)
        for name in ("delivered", "lost", "malformed", "duplicated"):
            setattr(self, name, np.asarray(getattr(self, name), dtype=bool))
        expected = (len(self.tick_times), len(self.sensor_ids))
        if self.values.shape[:2] != expected or self.values.ndim != 3:
            raise ValueError("values must have shape (T, S, d)")
        for name in ("delivered", "lost", "malformed", "duplicated"):
            if getattr(self, name).shape != expected:
                raise ValueError(f"{name} must have shape (T, S)")
        for array in (
            self.tick_times,
            self.sensor_ids,
            self.values,
            self.delivered,
            self.lost,
            self.malformed,
            self.duplicated,
        ):
            array.flags.writeable = False

    @property
    def n_ticks(self) -> int:
        """Number of sampling rounds T."""
        return self.values.shape[0]

    @property
    def n_sensors(self) -> int:
        """Number of motes S."""
        return self.values.shape[1]

    @property
    def n_attributes(self) -> int:
        """Attribute dimensionality d."""
        return self.values.shape[2]

    def __len__(self) -> int:
        return int(self.delivered.sum())

    def delivered_arrays(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Flat ``(timestamps, sensor_ids, values)`` of accepted reports.

        Rows come out in canonical trace order — sorted by
        ``(timestamp, sensor_id)`` — which for an ascending-id grid is
        simply row-major order over the delivered mask.  The value
        array is a fresh contiguous ``(K, d)`` block, frozen read-only
        so windows can alias it safely.
        """
        if self._flat is None:
            tick_idx, sensor_idx = np.nonzero(self.delivered)
            timestamps = self.tick_times[tick_idx]
            sensor_ids = self.sensor_ids[sensor_idx]
            values = self.values[tick_idx, sensor_idx]
            if not np.all(np.diff(self.sensor_ids) > 0):
                order = np.lexsort((sensor_ids, timestamps))
                timestamps = timestamps[order]
                sensor_ids = sensor_ids[order]
                values = values[order]
            for array in (timestamps, sensor_ids, values):
                array.flags.writeable = False
            self._flat = (timestamps, sensor_ids, values)
        return self._flat

    def to_trace(self) -> Trace:
        """Materialise the object-path :class:`Trace` (oracle format)."""
        timestamps, sensor_ids, values = self.delivered_arrays()
        records = [
            TraceRecord(
                sensor_id=int(sensor_ids[row]),
                timestamp=float(timestamps[row]),
                attributes=tuple(float(x) for x in values[row]),
            )
            for row in range(len(timestamps))
        ]
        trace = Trace(records=records, attribute_names=self.attribute_names)
        trace.metadata.update(self.metadata)
        return trace


def _iid_link_walk(
    link_rng: np.random.Generator,
    attempt_ticks: np.ndarray,
    loss_probability: float,
    corruption_probability: float,
) -> "tuple[np.ndarray, np.ndarray]":
    """Replay one i.i.d. link's decision walk over pre-drawn doubles.

    Returns boolean ``(lost, malformed)`` arrays aligned with
    ``attempt_ticks``.  The scalar link consumes one double for the
    loss decision and a second one only when the packet survived; the
    walk reproduces that conditional consumption exactly.
    """
    n = attempt_ticks.size
    lost = np.zeros(n, dtype=bool)
    malformed = np.zeros(n, dtype=bool)
    if n == 0:
        return lost, malformed
    draws = link_rng.random(2 * n)
    ptr = 0
    for i in range(n):
        if draws[ptr] < loss_probability:
            lost[i] = True
            ptr += 1
            continue
        ptr += 1
        if draws[ptr] < corruption_probability:
            malformed[i] = True
        ptr += 1
    return lost, malformed


def generate_gdi_trace_columnar(
    config: Optional[GDITraceConfig] = None,
    corruption: Optional["FaultInjector"] = None,
) -> ColumnarTrace:
    """Columnar equivalent of :func:`repro.traces.gdi.generate_gdi_trace`.

    Same inputs, same seeds, bit-identical outputs (the parity suite
    compares the materialised :class:`Trace` record by record) — but
    environment sampling, mote noise, and fault application run as
    array kernels instead of one Python object per reading.

    Parameters
    ----------
    config:
        Generator knobs; defaults reproduce the paper's setup.
    corruption:
        Optional :class:`repro.faults.injector.FaultInjector`.  Unlike
        the object path (which accepts any callable stage), the
        columnar path needs the injector's vectorised entry point; pass
        arbitrary stages to the object generator instead.
    """
    config = config or GDITraceConfig()
    environment = build_environment(config)
    tick_times = tick_schedule(
        config.duration_minutes, config.sample_period_minutes
    )
    n_ticks = tick_times.size
    n_sensors = config.n_sensors
    sensor_ids = np.arange(n_sensors, dtype=np.int64)

    truth = environment.values_at(tick_times)
    n_attributes = truth.shape[1]
    values = np.empty((n_ticks, n_sensors, n_attributes))
    for s in range(n_sensors):
        mote_rng = np.random.default_rng((config.seed, s))
        values[:, s, :] = truth + mote_rng.normal(
            0.0, config.noise_std, size=(n_ticks, n_attributes)
        )

    if corruption is not None:
        delivered = corruption.apply_columnar(tick_times, sensor_ids, values)
    else:
        delivered = np.ones((n_ticks, n_sensors), dtype=bool)

    lost = np.zeros((n_ticks, n_sensors), dtype=bool)
    malformed = np.zeros((n_ticks, n_sensors), dtype=bool)
    for s in range(n_sensors):
        link_rng = np.random.default_rng(int(config.seed) * 100_003 + s)
        attempts = np.nonzero(delivered[:, s])[0]
        link_lost, link_malformed = _iid_link_walk(
            link_rng,
            attempts,
            config.loss_probability,
            config.corruption_probability,
        )
        lost[attempts, s] = link_lost
        malformed[attempts, s] = link_malformed
    delivered &= ~lost & ~malformed

    # Hardened-ingest parity: the collector quarantines non-finite
    # readings before they reach a window (or the trace).
    finite = np.isfinite(values).all(axis=2)
    delivered &= finite

    metadata = {
        "n_sensors": float(config.n_sensors),
        "n_days": float(config.n_days),
        "seed": float(config.seed),
        "accepted": float(delivered.sum()),
        "malformed": float(malformed.sum()),
        "lost": float(lost.sum()),
    }
    return ColumnarTrace(
        tick_times=tick_times,
        sensor_ids=sensor_ids,
        values=values,
        delivered=delivered,
        lost=lost,
        malformed=malformed,
        duplicated=np.zeros((n_ticks, n_sensors), dtype=bool),
        attribute_names=environment.attribute_names,
        metadata=metadata,
    )


@dataclass
class ColumnarSimResult:
    """What :func:`simulate_windows_columnar` produced."""

    windows: List[ArrayWindow]
    stats: DeliveryStats
    n_ticks: int
    end_minutes: float
    n_in_flight_at_end: int


def simulate_windows_columnar(
    environment: EnvironmentModel,
    *,
    n_sensors: int,
    duration_minutes: float,
    window_minutes: float,
    sample_period_minutes: float = 5.0,
    noise_std: float = 0.35,
    seed: int = 0,
    loss_probability: float = 0.15,
    corruption_probability: float = 0.01,
    burst: Optional[GilbertElliottLoss] = None,
    delay_probability: float = 0.0,
    max_delay_minutes: float = 0.0,
    duplicate_probability: float = 0.0,
    corruption: Optional["FaultInjector"] = None,
    clock_skew_minutes: Optional[Dict[int, float]] = None,
) -> ColumnarSimResult:
    """Columnar equivalent of a full impaired-link simulator run.

    Reproduces ``NetworkSimulator.run`` against a
    ``StarNetwork.impaired`` star and a hardened collector — including
    burst loss, delay/reordering, duplication, and per-mote clock skew
    (skew is applied to reported timestamps *after* the corruption
    stage, mirroring the chaos harness's composition).  The emitted
    :class:`ArrayWindow` sequence and :class:`DeliveryStats` are
    bit-identical to the object run with the same seeds; the parity
    suite pins this.

    Not modelled (use the object simulator): mote ``skip_probability``,
    battery death, and non-injector corruption stages.
    """
    tick_times = tick_schedule(duration_minutes, sample_period_minutes)
    n_ticks = tick_times.size
    sensor_ids = np.arange(n_sensors, dtype=np.int64)
    # The run loop's clock *after* each tick (pop times), replayed with
    # the same float accumulation.
    end_minutes = (
        float(tick_times[-1]) + sample_period_minutes
        if n_ticks
        else sample_period_minutes
    )
    pop_times = np.empty(n_ticks)
    if n_ticks:
        pop_times[:-1] = tick_times[1:]
        pop_times[-1] = end_minutes

    truth = environment.values_at(tick_times)
    n_attributes = truth.shape[1]
    values = np.empty((n_ticks, n_sensors, n_attributes))
    for s in range(n_sensors):
        mote_rng = np.random.default_rng((seed, s))
        values[:, s, :] = truth + mote_rng.normal(
            0.0, noise_std, size=(n_ticks, n_attributes)
        )

    if corruption is not None:
        emitted = corruption.apply_columnar(tick_times, sensor_ids, values)
    else:
        emitted = np.ones((n_ticks, n_sensors), dtype=bool)

    skew = np.zeros(n_sensors)
    for sensor_id, offset in (clock_skew_minutes or {}).items():
        skew[int(sensor_id)] = float(offset)
    reported_ts = tick_times[:, None] + skew[None, :]

    stats = DeliveryStats()
    # Message-bearing deliveries: (tick, sensor, record_idx, arrival).
    immediate: List[Tuple[int, int, int, float]] = []
    delayed: List[Tuple[int, int, int, float]] = []
    duplicated = np.zeros((n_ticks, n_sensors), dtype=bool)
    for s in range(n_sensors):
        link_rng = np.random.default_rng(int(seed) * 100_003 + s)
        link_bad = bool(burst.start_bad) if burst is not None else False
        attempts = np.nonzero(emitted[:, s])[0]
        if attempts.size == 0:
            continue
        # Worst case per attempt: burst flip + loss + corruption +
        # duplicate + 2×(delay decision, delay amount) = 8 doubles.
        draws = link_rng.random(8 * attempts.size)
        ptr = 0
        for t in attempts:
            now = tick_times[t]
            if burst is not None:
                flip = draws[ptr]
                ptr += 1
                if link_bad:
                    if flip < burst.p_bad_to_good:
                        link_bad = False
                elif flip < burst.p_good_to_bad:
                    link_bad = True
                p_loss = burst.loss_bad if link_bad else burst.loss_good
            else:
                p_loss = loss_probability
            if draws[ptr] < p_loss:
                ptr += 1
                stats.lost += 1
                continue
            ptr += 1
            if draws[ptr] < corruption_probability:
                ptr += 1
                stats.malformed += 1
                continue
            ptr += 1
            n_copies = 1
            if duplicate_probability > 0.0:
                if draws[ptr] < duplicate_probability:
                    n_copies = 2
                    duplicated[t, s] = True
                ptr += 1
            for record_idx in range(n_copies):
                arrival = None
                if delay_probability > 0.0:
                    if draws[ptr] < delay_probability:
                        ptr += 1
                        # uniform(0, max) == 0.0 + max * next_double.
                        arrival = now + 0.0 + max_delay_minutes * draws[ptr]
                        ptr += 1
                    else:
                        ptr += 1
                if arrival is None or arrival <= now:
                    immediate.append((int(t), s, record_idx, now))
                else:
                    delayed.append((int(t), s, record_idx, arrival))

    # The simulator heap-pushes delayed records in global message order
    # (tick-major, mote order, record order) with a monotone tiebreak
    # counter; equal arrivals pop in push order.
    delayed.sort(key=lambda item: (item[0], item[1], item[2]))
    # Receive schedule: (receive_tick, phase, sort_a, sort_b, t, s).
    # Phase 0 = heap pops at tick start (ordered by arrival, counter);
    # phase 1 = in-tick deliveries (ordered by mote, record index).
    events: List[Tuple[int, int, float, int, int, int]] = []
    n_in_flight = 0
    for counter, (t, s, record_idx, arrival) in enumerate(delayed):
        k_recv = int(np.searchsorted(tick_times, arrival, side="left"))
        if k_recv >= n_ticks:
            n_in_flight += 1
            continue
        events.append((k_recv, 0, float(arrival), counter, t, s))
    for t, s, record_idx, now in immediate:
        events.append((t, 1, float(s), record_idx, t, s))
    events.sort(key=lambda e: (e[0], e[1], e[2], e[3]))

    # Collector window/pop bookkeeping, replayed with the collector's
    # exact float comparisons.
    next_index_at_tick = np.empty(n_ticks, dtype=np.int64)
    next_index = 1
    for k in range(n_ticks):
        next_index_at_tick[k] = next_index
        while window_minutes * next_index <= pop_times[k]:
            next_index += 1
    n_windows = next_index - 1
    boundaries = np.asarray(
        [window_minutes * i for i in range(n_windows + 1)]
    )
    # Tick whose end-of-tick pop emits window i (1-based): the one just
    # before the first tick that *starts* with next_index > i.
    pop_tick = (
        np.searchsorted(next_index_at_tick, np.arange(2, n_windows + 2)) - 1
    )

    # Replay the hardened ingest over the receive schedule.
    seen_keys: Dict[int, set] = {}
    accepted_t: List[int] = []
    accepted_s: List[int] = []
    first_accept_tick: Optional[int] = None
    finite = np.isfinite(values).all(axis=2)
    for k_recv, _phase, _a, _b, t, s in events:
        ts = reported_ts[t, s]
        if not finite[t, s]:
            stats.non_finite += 1
            continue
        if ts < window_minutes * (next_index_at_tick[k_recv] - 1):
            stats.late += 1
            continue
        key = (float(ts), t)  # mote sequence number == tick index here
        keys = seen_keys.setdefault(s, set())
        if key in keys:
            stats.duplicate += 1
            continue
        keys.add(key)
        stats.accepted += 1
        if first_accept_tick is None:
            first_accept_tick = k_recv
        accepted_t.append(t)
        accepted_s.append(s)

    acc_t = np.asarray(accepted_t, dtype=np.int64)
    acc_s = np.asarray(accepted_s, dtype=np.int64)
    acc_ts = (
        reported_ts[acc_t, acc_s] if acc_t.size else np.zeros(0)
    )
    # Window of each accepted row; rows past the last emitted window
    # stay in the (never flushed) buffer.
    win_idx = np.searchsorted(boundaries, acc_ts, side="right")
    in_emitted = (win_idx >= 1) & (win_idx <= n_windows)
    acc_t, acc_s, acc_ts, win_idx = (
        acc_t[in_emitted],
        acc_s[in_emitted],
        acc_ts[in_emitted],
        win_idx[in_emitted],
    )
    order = np.argsort(win_idx, kind="stable")  # keeps acceptance order
    flat_values = np.ascontiguousarray(values[acc_t[order], acc_s[order]])
    flat_sensor_ids = sensor_ids[acc_s[order]]
    flat_values.flags.writeable = False
    flat_sensor_ids.flags.writeable = False
    sorted_win = win_idx[order]

    windows: List[ArrayWindow] = []
    for i in range(1, n_windows + 1):
        lo = int(np.searchsorted(sorted_win, i, side="left"))
        hi = int(np.searchsorted(sorted_win, i, side="right"))
        width = (
            n_attributes
            if first_accept_tick is not None
            and first_accept_tick <= pop_tick[i - 1]
            else 0
        )
        observations = (
            flat_values[lo:hi] if (hi > lo or width) else _EMPTY_OBSERVATIONS
        )
        windows.append(
            ArrayWindow(
                index=i,
                start_minutes=float(boundaries[i - 1]),
                end_minutes=float(boundaries[i]),
                observations=observations,
                sensor_id_array=flat_sensor_ids[lo:hi],
                n_attributes=width,
            )
        )
    return ColumnarSimResult(
        windows=windows,
        stats=stats,
        n_ticks=n_ticks,
        end_minutes=end_minutes,
        n_in_flight_at_end=n_in_flight,
    )
