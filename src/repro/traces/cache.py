"""Content-addressed scenario trace cache.

Campaign runs spend almost all their time re-simulating deployments
whose inputs have not changed.  The cache stores each generated trace's
*delivered arrays* (flat timestamps / sensor ids / values — exactly what
the columnar windower consumes) as one ``.npz`` under a cache directory,
keyed by a SHA-256 over the canonical JSON of the generating spec.

Invalidation rules (see DESIGN.md):

* the spec dict embeds :data:`repro.traces.columnar.GENERATOR_VERSION`;
  any behavioural change to trace generation bumps it and retires every
  old entry by key;
* scenario entries also embed the scenario name, day count, and seed —
  the full input surface of the standard builders;
* entries additionally store the campaign ground truth and trace
  metadata, so a cache hit never needs to rebuild the campaign (whose
  attack anchors would require a clean reference run).

Writes are atomic (temp file + ``os.replace``), so concurrent workers
racing on a miss at worst regenerate the same bytes.
"""

from __future__ import annotations

import hashlib
import io
import json
import mmap
import os
import tempfile
import threading
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from .columnar import GENERATOR_VERSION

#: On-disk payload layout version (bump on incompatible .npz changes).
CACHE_SCHEMA_VERSION = 1


def canonical_spec_hash(spec: Mapping[str, object]) -> str:
    """SHA-256 of the canonical JSON encoding of ``spec``."""
    canonical = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def scenario_spec(name: str, n_days: int, seed: int) -> Dict[str, object]:
    """The cache spec for one standard scenario run.

    Everything that determines the generated trace must appear here;
    the generator version retires all entries when generation changes.
    """
    return {
        "kind": "scenario-trace",
        "scenario": str(name),
        "n_days": int(n_days),
        "seed": int(seed),
        "generator_version": GENERATOR_VERSION,
    }


#: Member names of a cache entry, in stored order.
_ARRAY_MEMBERS = ("timestamps", "sensor_ids", "values")


def _read_entry_mapped(
    path: Path,
) -> "Tuple[Dict[str, object], Dict[str, np.ndarray]]":
    """Zero-copy reader for uncompressed (``ZIP_STORED``) entries.

    Maps the file read-only once and returns ``np.frombuffer`` views
    into the mapping for every array member — the hot campaign path
    never materializes a fresh copy of the trace grids.  Raises on
    compressed members, Fortran-order payloads, or any structural
    surprise; the caller falls back to the materializing reader.
    """
    with open(path, "rb") as handle:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    view = memoryview(mapped)
    with zipfile.ZipFile(mapped) as archive:
        with archive.open("header.npy") as member:
            header = json.loads(str(np.lib.format.read_array(member)))
        arrays: Dict[str, np.ndarray] = {}
        for name in _ARRAY_MEMBERS:
            info = archive.getinfo(f"{name}.npy")
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(f"{name} member is compressed")
            # The local file header's name/extra lengths may differ
            # from the central directory's, so the data offset comes
            # from the local header itself: 30 fixed bytes + name +
            # extra field.
            local = bytes(view[info.header_offset : info.header_offset + 30])
            if local[:4] != b"PK\x03\x04":
                raise ValueError(f"bad local header for {name}")
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            start = info.header_offset + 30 + name_len + extra_len
            member_view = view[start : start + info.file_size]
            arrays[name] = _npy_from_buffer(member_view)
    return header, arrays


def _npy_from_buffer(buffer: memoryview) -> np.ndarray:
    """Parse one ``.npy`` payload into a read-only zero-copy view."""
    # The header is tiny (dtype/shape dict, padded to a small multiple
    # of 64 bytes); hand a copied prefix to numpy's header parser, then
    # point frombuffer at the original mapping for the data itself.
    prefix = io.BytesIO(bytes(buffer[: min(len(buffer), 4096)]))
    version = np.lib.format.read_magic(prefix)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(prefix)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(prefix)
    else:
        raise ValueError(f"unsupported npy version {version}")
    if fortran or dtype.hasobject:
        raise ValueError("only C-order plain dtypes map zero-copy")
    count = 1
    for extent in shape:
        count *= int(extent)
    array = np.frombuffer(buffer, dtype=dtype, count=count, offset=prefix.tell())
    return array.reshape(shape)


def _read_entry_materialized(
    path: Path,
) -> "Tuple[Dict[str, object], Dict[str, np.ndarray]]":
    """Legacy reader: materialize every member through ``np.load``."""
    with np.load(path, allow_pickle=False) as payload:
        header = json.loads(str(payload["header"]))
        arrays = {name: payload[name] for name in _ARRAY_MEMBERS}
    return header, arrays


@dataclass
class CachedTrace:
    """One cache entry: delivered arrays plus scenario provenance."""

    timestamps: np.ndarray
    sensor_ids: np.ndarray
    values: np.ndarray
    attribute_names: Tuple[str, ...]
    metadata: Dict[str, float]
    #: sensor id -> planted corruption kind (empty for clean runs).
    ground_truth: Dict[int, str]
    #: The scenario run's report label (may differ from the registry
    #: key, e.g. builder key ``stuck_at`` vs run label ``stuck-at``).
    label: str = ""


@dataclass
class TraceCache:
    """Filesystem cache of generated scenario traces.

    Parameters
    ----------
    root:
        Cache directory; created on first use.  Safe to share between
        processes — entries are immutable once written and writes are
        atomic.
    """

    root: Path
    hits: int = field(default=0, init=False)
    misses: int = field(default=0, init=False)
    #: Corrupted/truncated entries moved aside by :meth:`load`.
    quarantined: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, spec: Mapping[str, object]) -> Path:
        """Entry path for ``spec`` (exists only after a store)."""
        return self.root / f"{canonical_spec_hash(spec)}.npz"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupted entry to a ``quarantine/`` sibling directory.

        Keeps the bad bytes around for post-mortem while guaranteeing
        the next :meth:`load` of the same spec is a clean miss (and the
        subsequent :meth:`store` does not fight a broken file).
        """
        target_dir = self.root / "quarantine"
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            # Quarantining is best-effort: if the move itself fails
            # (permissions, races), fall back to deleting the entry so
            # the cache still self-heals.
            try:
                os.unlink(path)
            except OSError:
                pass
        self.quarantined += 1

    def load(self, spec: Mapping[str, object]) -> Optional[CachedTrace]:
        """Return the cached trace for ``spec``, or None (counted).

        Entries written by :meth:`store` (uncompressed ``.npz``) load
        zero-copy: the file is mapped once and every array is a
        read-only ``np.frombuffer`` view straight into the page cache —
        no per-scenario materialization, and repeated loads of the same
        entry share physical pages across processes.  Legacy compressed
        entries fall back to the materializing ``np.load`` reader.

        A corrupted or truncated entry (unreadable zip, missing arrays,
        undecodable header) is treated as a miss rather than poisoning
        the whole campaign: the bad file is moved to a ``quarantine/``
        sibling, counted in :attr:`quarantined`, and ``None`` is
        returned so the caller regenerates and re-stores the trace.
        """
        path = self.path_for(spec)
        if not path.is_file():
            self.misses += 1
            return None
        try:
            try:
                header, arrays = _read_entry_mapped(path)
            except Exception:
                # Legacy compressed entries (or anything the mapped
                # reader cannot represent) take the materializing
                # reader; corruption makes this raise too and lands in
                # the quarantine path below.
                header, arrays = _read_entry_materialized(path)
            if header.get("cache_schema") != CACHE_SCHEMA_VERSION:
                self.misses += 1
                return None
            entry = CachedTrace(
                timestamps=arrays["timestamps"],
                sensor_ids=arrays["sensor_ids"],
                values=arrays["values"],
                attribute_names=tuple(header["attribute_names"]),
                metadata={
                    key: float(value)
                    for key, value in header["metadata"].items()
                },
                ground_truth={
                    int(key): str(value)
                    for key, value in header["ground_truth"].items()
                },
                label=str(header.get("label", "")),
            )
        except Exception:  # zipfile/JSON/key/shape corruption
            self._quarantine(path)
            self.misses += 1
            return None
        for array in (entry.timestamps, entry.sensor_ids, entry.values):
            array.flags.writeable = False
        self.hits += 1
        return entry

    def store(
        self,
        spec: Mapping[str, object],
        timestamps: np.ndarray,
        sensor_ids: np.ndarray,
        values: np.ndarray,
        attribute_names: Tuple[str, ...],
        metadata: Mapping[str, float],
        ground_truth: Mapping[int, str],
        label: str = "",
    ) -> Path:
        """Write one entry atomically; returns its path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        header = json.dumps(
            {
                "cache_schema": CACHE_SCHEMA_VERSION,
                "spec": dict(spec),
                "attribute_names": list(attribute_names),
                "metadata": {k: float(v) for k, v in metadata.items()},
                "ground_truth": {
                    str(k): str(v) for k, v in ground_truth.items()
                },
                "label": str(label),
            },
            sort_keys=True,
        )
        # The temp name embeds the writer's process and thread ids on
        # top of mkstemp's own uniqueness: concurrent workers racing on
        # the same miss each write their own temp file and the atomic
        # os.replace below publishes whichever finishes last — the
        # bytes are identical by construction (same spec, same seed),
        # so the entry is intact either way.
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root,
            prefix=f".tmp-{os.getpid()}-{threading.get_ident()}-",
            suffix=".npz",
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                # Uncompressed on purpose: ZIP_STORED members are what
                # lets load() hand out zero-copy mmap views (and lets
                # the campaign parent publish them into shared memory
                # without a decompression pass).
                np.savez(
                    handle,
                    header=np.asarray(header),
                    timestamps=np.asarray(timestamps, dtype=float),
                    sensor_ids=np.asarray(sensor_ids, dtype=np.int64),
                    values=np.asarray(values, dtype=float),
                )
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def stats_line(self) -> str:
        """Human-readable hit/miss/quarantine counters for CLI output."""
        line = f"cache: hits={self.hits} misses={self.misses}"
        if self.quarantined:
            line += f" quarantined={self.quarantined}"
        return line
