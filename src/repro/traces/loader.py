"""Trace persistence: CSV round-trip with malformed-line tolerance.

The on-disk format is a plain CSV with a header row::

    sensor_id,timestamp,<attr_1>,...,<attr_n>

Real deployment logs contain unparseable lines (the GDI data set's
"malformed sensor packets"); :func:`load_trace` counts and skips them
instead of failing, mirroring the preprocessing the paper describes.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Tuple, Union

from .schema import Trace, TraceRecord

PathLike = Union[str, Path]


@dataclass(frozen=True)
class LoadReport:
    """Outcome of parsing a trace file."""

    trace: Trace
    n_rows: int
    n_malformed: int

    @property
    def malformed_rate(self) -> float:
        """Fraction of data rows that could not be parsed."""
        if self.n_rows == 0:
            return 0.0
        return self.n_malformed / self.n_rows


def save_trace(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` as CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["sensor_id", "timestamp", *trace.attribute_names])
        for record in trace.records:
            writer.writerow(
                [record.sensor_id, f"{record.timestamp:.4f}"]
                + [f"{x:.6f}" for x in record.attributes]
            )


def load_trace(path: PathLike) -> LoadReport:
    """Read a trace CSV, skipping malformed rows.

    Raises
    ------
    ValueError
        If the file is empty or its header is not the expected shape.
    """
    path = Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        if len(header) < 3 or header[0] != "sensor_id" or header[1] != "timestamp":
            raise ValueError(f"{path} has an unexpected header: {header!r}")
        attribute_names: Tuple[str, ...] = tuple(header[2:])

        records = []
        n_rows = 0
        n_malformed = 0
        for row in reader:
            n_rows += 1
            record = _parse_row(row, len(attribute_names))
            if record is None:
                n_malformed += 1
            else:
                records.append(record)

    trace = Trace(records=records, attribute_names=attribute_names)
    trace.metadata["malformed_rows"] = float(n_malformed)
    return LoadReport(trace=trace, n_rows=n_rows, n_malformed=n_malformed)


def _parse_row(row, n_attributes: int):
    """Parse one CSV row; None when the row is malformed."""
    if len(row) != 2 + n_attributes:
        return None
    try:
        sensor_id = int(row[0])
        timestamp = float(row[1])
        attributes = tuple(float(x) for x in row[2:])
    except (TypeError, ValueError):
        return None
    if sensor_id < 0 or timestamp < 0:
        return None
    return TraceRecord(
        sensor_id=sensor_id, timestamp=timestamp, attributes=attributes
    )
