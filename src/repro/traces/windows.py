"""Batch windowing of traces (paper Eq. 1).

Trace-driven experiments already hold the month in memory; this module
turns a :class:`~repro.traces.schema.Trace` into the ordered list of
:class:`~repro.sensornet.collector.ObservationWindow` objects the
pipeline consumes, using the same collector code the live simulator uses
(so batch and online paths cannot diverge).
"""

from __future__ import annotations

from typing import List, Union

from ..sensornet.collector import (
    ArrayWindow,
    ObservationWindow,
    windows_from_arrays,
    windows_from_messages,
)
from .columnar import ColumnarTrace
from .schema import Trace


def window_trace(trace: Trace, window_minutes: float) -> List[ObservationWindow]:
    """Partition ``trace`` into Eq.-1 windows of ``window_minutes``."""
    if window_minutes <= 0:
        raise ValueError("window_minutes must be positive")
    return windows_from_messages(trace.to_messages(), window_minutes)


def window_trace_columnar(
    trace: Union[Trace, ColumnarTrace], window_minutes: float
) -> List[ArrayWindow]:
    """Columnar :func:`window_trace`: array-view windows, no messages.

    Accepts either trace representation; the emitted windows are
    numerically bit-identical to the object path's (same matrices,
    means, bounds, and indices), just backed by contiguous array slices
    instead of per-reading message objects.
    """
    if window_minutes <= 0:
        raise ValueError("window_minutes must be positive")
    if isinstance(trace, ColumnarTrace):
        timestamps, sensor_ids, values = trace.delivered_arrays()
    else:
        timestamps, sensor_ids, values = trace.to_arrays()
    return windows_from_arrays(timestamps, sensor_ids, values, window_minutes)


def window_trace_columnar_by_samples(
    trace: Union[Trace, ColumnarTrace],
    samples_per_window: int,
    sample_period_minutes: float = 5.0,
) -> List[ArrayWindow]:
    """Sample-count variant of :func:`window_trace_columnar`."""
    if samples_per_window <= 0:
        raise ValueError("samples_per_window must be positive")
    if sample_period_minutes <= 0:
        raise ValueError("sample_period_minutes must be positive")
    return window_trace_columnar(
        trace, samples_per_window * sample_period_minutes
    )


def window_trace_by_samples(
    trace: Trace, samples_per_window: int, sample_period_minutes: float = 5.0
) -> List[ObservationWindow]:
    """Window by sample count, the way the paper states Table 1.

    The paper specifies ``w`` as *12 samples* at a 5-minute period, i.e.
    one hour; this helper performs that conversion explicitly.
    """
    if samples_per_window <= 0:
        raise ValueError("samples_per_window must be positive")
    if sample_period_minutes <= 0:
        raise ValueError("sample_period_minutes must be positive")
    return window_trace(trace, samples_per_window * sample_period_minutes)


def non_empty_windows(windows: List[ObservationWindow]) -> List[ObservationWindow]:
    """Drop empty windows (gaps) while preserving order."""
    return [w for w in windows if not w.is_empty]
