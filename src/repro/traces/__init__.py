"""Trace generation, persistence, and windowing.

The synthetic Great Duck Island generator (:mod:`repro.traces.gdi`)
replaces the paper's proprietary July-2003 traces; see DESIGN.md §2.
"""

from .cache import CachedTrace, TraceCache, canonical_spec_hash, scenario_spec
from .columnar import (
    GENERATOR_VERSION,
    ColumnarSimResult,
    ColumnarTrace,
    generate_gdi_trace_columnar,
    simulate_windows_columnar,
    tick_schedule,
)
from .gdi import (
    GDI_DURATION_DAYS,
    GDI_SAMPLE_PERIOD_MINUTES,
    GDI_SENSOR_COUNT,
    GDITraceConfig,
    build_environment,
    generate_gdi_trace,
)
from .loader import LoadReport, load_trace, save_trace
from .schema import Trace, TraceRecord, trace_from_messages
from .windows import (
    non_empty_windows,
    window_trace,
    window_trace_by_samples,
    window_trace_columnar,
    window_trace_columnar_by_samples,
)

__all__ = [
    "CachedTrace",
    "ColumnarSimResult",
    "ColumnarTrace",
    "GDITraceConfig",
    "GDI_DURATION_DAYS",
    "GDI_SAMPLE_PERIOD_MINUTES",
    "GDI_SENSOR_COUNT",
    "GENERATOR_VERSION",
    "LoadReport",
    "Trace",
    "TraceCache",
    "TraceRecord",
    "build_environment",
    "canonical_spec_hash",
    "generate_gdi_trace",
    "generate_gdi_trace_columnar",
    "load_trace",
    "non_empty_windows",
    "save_trace",
    "scenario_spec",
    "simulate_windows_columnar",
    "tick_schedule",
    "trace_from_messages",
    "window_trace",
    "window_trace_by_samples",
    "window_trace_columnar",
    "window_trace_columnar_by_samples",
]
