"""Trace generation, persistence, and windowing.

The synthetic Great Duck Island generator (:mod:`repro.traces.gdi`)
replaces the paper's proprietary July-2003 traces; see DESIGN.md §2.
"""

from .gdi import (
    GDI_DURATION_DAYS,
    GDI_SAMPLE_PERIOD_MINUTES,
    GDI_SENSOR_COUNT,
    GDITraceConfig,
    build_environment,
    generate_gdi_trace,
)
from .loader import LoadReport, load_trace, save_trace
from .schema import Trace, TraceRecord, trace_from_messages
from .windows import non_empty_windows, window_trace, window_trace_by_samples

__all__ = [
    "GDITraceConfig",
    "GDI_DURATION_DAYS",
    "GDI_SAMPLE_PERIOD_MINUTES",
    "GDI_SENSOR_COUNT",
    "LoadReport",
    "Trace",
    "TraceRecord",
    "build_environment",
    "generate_gdi_trace",
    "load_trace",
    "non_empty_windows",
    "save_trace",
    "trace_from_messages",
    "window_trace",
    "window_trace_by_samples",
]
