"""Trace record types.

A *trace* is the flat, collector-side record of a deployment: one row per
successfully parsed sensor report.  The paper's evaluation consumes one
month of such rows from the Great Duck Island deployment; this module
defines the in-memory and on-disk shape of those rows for the synthetic
equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..sensornet.messages import SensorMessage


@dataclass(frozen=True)
class TraceRecord:
    """One parsed sensor report as stored in a trace.

    Attributes
    ----------
    sensor_id:
        Reporting mote.
    timestamp:
        Minutes since deployment start.
    attributes:
        Sampled attribute vector (temperature °C, humidity %RH for the
        GDI configuration).
    """

    sensor_id: int
    timestamp: float
    attributes: Tuple[float, ...]

    @classmethod
    def from_message(cls, message: SensorMessage) -> "TraceRecord":
        """Build a record from a delivered :class:`SensorMessage`."""
        return cls(
            sensor_id=message.sensor_id,
            timestamp=message.timestamp,
            attributes=message.attributes,
        )

    def to_message(self, sequence_number: int = 0) -> SensorMessage:
        """Convert back into the message form the pipeline consumes."""
        return SensorMessage(
            sensor_id=self.sensor_id,
            timestamp=self.timestamp,
            attributes=self.attributes,
            sequence_number=sequence_number,
        )

    @property
    def vector(self) -> np.ndarray:
        """Attribute vector as a float array."""
        return np.asarray(self.attributes, dtype=float)


@dataclass
class Trace:
    """A time-ordered collection of trace records plus metadata.

    Attributes
    ----------
    records:
        Records sorted by (timestamp, sensor_id).
    attribute_names:
        Names of the attribute columns.
    metadata:
        Free-form provenance (generator parameters, seed, loss counts).
    """

    records: List[TraceRecord] = field(default_factory=list)
    attribute_names: Tuple[str, ...] = ("temperature", "humidity")
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.records.sort(key=lambda r: (r.timestamp, r.sensor_id))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def sensor_ids(self) -> List[int]:
        """Sorted distinct sensor ids present in the trace."""
        return sorted({r.sensor_id for r in self.records})

    @property
    def duration_minutes(self) -> float:
        """Span from 0 to the last record's timestamp."""
        if not self.records:
            return 0.0
        return self.records[-1].timestamp

    def for_sensor(self, sensor_id: int) -> List[TraceRecord]:
        """All records of one sensor, in time order."""
        return [r for r in self.records if r.sensor_id == sensor_id]

    def between(self, start_minutes: float, end_minutes: float) -> "Trace":
        """Sub-trace covering ``[start_minutes, end_minutes)``."""
        subset = [
            r for r in self.records if start_minutes <= r.timestamp < end_minutes
        ]
        return Trace(
            records=subset,
            attribute_names=self.attribute_names,
            metadata=dict(self.metadata),
        )

    def day(self, day_index: int) -> "Trace":
        """Sub-trace for one deployment day (0-based)."""
        if day_index < 0:
            raise ValueError("day_index must be non-negative")
        start = day_index * 24 * 60.0
        return self.between(start, start + 24 * 60.0)

    def to_messages(self) -> List[SensorMessage]:
        """Convert the whole trace into pipeline-ready messages."""
        counters: Dict[int, int] = {}
        messages: List[SensorMessage] = []
        for record in self.records:
            seq = counters.get(record.sensor_id, 0)
            counters[record.sensor_id] = seq + 1
            messages.append(record.to_message(sequence_number=seq))
        return messages

    def to_arrays(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Flat ``(timestamps, sensor_ids, values)`` arrays, trace order.

        The columnar windowing/pipeline entry points consume these
        directly; records are already sorted by ``(timestamp,
        sensor_id)``.
        """
        n = len(self.records)
        timestamps = np.empty(n)
        sensor_ids = np.empty(n, dtype=np.int64)
        d = len(self.records[0].attributes) if n else len(self.attribute_names)
        values = np.empty((n, d))
        for row, record in enumerate(self.records):
            timestamps[row] = record.timestamp
            sensor_ids[row] = record.sensor_id
            values[row] = record.attributes
        return timestamps, sensor_ids, values

    def attribute_series(
        self, sensor_id: int, attribute_index: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        """(timestamps, values) of one attribute of one sensor."""
        if not 0 <= attribute_index < len(self.attribute_names):
            raise ValueError("attribute_index out of range")
        rows = self.for_sensor(sensor_id)
        times = np.asarray([r.timestamp for r in rows])
        values = np.asarray([r.attributes[attribute_index] for r in rows])
        return times, values


def trace_from_messages(
    messages: Sequence[SensorMessage],
    attribute_names: Tuple[str, ...] = ("temperature", "humidity"),
) -> Trace:
    """Collect delivered messages into a :class:`Trace`."""
    return Trace(
        records=[TraceRecord.from_message(m) for m in messages],
        attribute_names=attribute_names,
    )
