"""Applying corruptors to the live message stream.

The :class:`FaultInjector` is the glue between :mod:`repro.faults` and
the simulator: it is a valid
:data:`~repro.sensornet.simulator.CorruptionStage`, holds the environment
so adversaries can see Θ(t), dispatches per-sensor corruptors according
to their activation schedules, and keeps a ground-truth log used by the
evaluation metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..sensornet.environment import EnvironmentModel
from ..sensornet.messages import SensorMessage
from .base import ActivationSchedule, Corruptor


@dataclass
class Injection:
    """One corruptor bound to a set of sensors and a schedule."""

    corruptor: Corruptor
    sensor_ids: Set[int]
    schedule: ActivationSchedule = field(default_factory=ActivationSchedule)

    def __post_init__(self) -> None:
        self.sensor_ids = set(self.sensor_ids)
        if not self.sensor_ids:
            raise ValueError("an injection needs at least one sensor")

    def applies_to(self, sensor_id: int, minutes: float) -> bool:
        """True when this injection corrupts ``sensor_id`` at ``minutes``."""
        return sensor_id in self.sensor_ids and self.schedule.active_at(minutes)


@dataclass(frozen=True)
class CorruptionEvent:
    """Ground-truth log entry: one report was rewritten."""

    sensor_id: int
    timestamp: float
    kind: str
    malicious: bool


@dataclass
class FaultInjector:
    """Applies scheduled corruptors to the message stream.

    Parameters
    ----------
    environment:
        The ground-truth model; adversarial corruptors receive Θ(t).
    injections:
        The active corruption plan.  When several injections cover the
        same sensor at the same time, the first in the list wins —
        deterministic and easy to reason about in campaign specs.
    """

    environment: EnvironmentModel
    injections: List[Injection] = field(default_factory=list)
    events: List[CorruptionEvent] = field(default_factory=list)

    def add(
        self,
        corruptor: Corruptor,
        sensor_ids: Sequence[int],
        schedule: Optional[ActivationSchedule] = None,
    ) -> Injection:
        """Register a corruptor for some sensors; returns the injection."""
        injection = Injection(
            corruptor=corruptor,
            sensor_ids=set(sensor_ids),
            schedule=schedule or ActivationSchedule(),
        )
        self.injections.append(injection)
        return injection

    def corrupted_sensor_ids(self) -> Set[int]:
        """All sensors that any injection ever touches."""
        ids: Set[int] = set()
        for injection in self.injections:
            ids |= injection.sensor_ids
        return ids

    def ground_truth_kind(self, sensor_id: int) -> Optional[str]:
        """The corruptor kind planted on ``sensor_id`` (None if clean)."""
        for injection in self.injections:
            if sensor_id in injection.sensor_ids:
                return injection.corruptor.kind
        return None

    def __call__(self, message: SensorMessage) -> Optional[SensorMessage]:
        """CorruptionStage entry point used by the simulator."""
        for injection in self.injections:
            if not injection.applies_to(message.sensor_id, message.timestamp):
                continue
            truth = self.environment.value_at(message.timestamp)
            corrupted = injection.corruptor.corrupt(
                message, truth, injection.schedule.elapsed(message.timestamp)
            )
            if corrupted is not None and corrupted.attributes != message.attributes:
                self.events.append(
                    CorruptionEvent(
                        sensor_id=message.sensor_id,
                        timestamp=message.timestamp,
                        kind=injection.corruptor.kind,
                        malicious=injection.corruptor.malicious,
                    )
                )
            return corrupted
        return message

    def apply_columnar(
        self,
        tick_times: np.ndarray,
        sensor_ids: np.ndarray,
        values: np.ndarray,
        emitted: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorised equivalent of streaming every message through ``__call__``.

        Parameters
        ----------
        tick_times:
            ``(T,)`` sampling times in minutes.
        sensor_ids:
            ``(S,)`` sensor id of each column, in mote iteration order.
        values:
            ``(T, S, d)`` report grid, **modified in place**.
        emitted:
            Optional ``(T, S)`` mask of reports that exist (False for
            dead/skipped motes).  Defaults to all-True.

        Returns the ``(T, S)`` delivered mask: emitted reports that no
        corruptor suppressed.  The ground-truth ``events`` log receives
        exactly the entries (and order) the scalar path would append.
        """
        tick_times = np.asarray(tick_times, dtype=float)
        sensor_ids = np.asarray(sensor_ids)
        n_ticks, n_sensors, _ = values.shape
        delivered = (
            np.ones((n_ticks, n_sensors), dtype=bool)
            if emitted is None
            else emitted.copy()
        )
        # First-match-wins: a cell visited by an earlier injection is
        # consumed even when that injection left the report unchanged.
        claimed = np.zeros((n_ticks, n_sensors), dtype=bool)
        truth_all: Optional[np.ndarray] = None
        pending: List["tuple[int, int, str, bool]"] = []
        for injection in self.injections:
            sensor_mask = np.isin(sensor_ids, list(injection.sensor_ids))
            if not sensor_mask.any():
                continue
            time_mask = injection.schedule.active_mask(tick_times)
            cell_mask = (
                time_mask[:, None]
                & sensor_mask[None, :]
                & delivered
                & ~claimed
            )
            if not cell_mask.any():
                continue
            claimed |= cell_mask
            # np.nonzero walks the grid row-major: tick-major, then mote
            # order — the exact order the scalar stream visits messages,
            # which stateful RNG corruptors rely on.
            tt, ss = np.nonzero(cell_mask)
            if truth_all is None:
                truth_all = self.environment.values_at(tick_times)
            sub_values = values[tt, ss]
            new_values, sub_delivered = injection.corruptor.corrupt_columnar(
                sub_values,
                truth_all[tt],
                injection.schedule.elapsed_array(tick_times)[tt],
            )
            values[tt, ss] = new_values
            delivered[tt, ss] = sub_delivered
            changed = np.any(new_values != sub_values, axis=1) & sub_delivered
            for t_idx, s_idx in zip(tt[changed], ss[changed]):
                pending.append(
                    (
                        int(t_idx),
                        int(s_idx),
                        injection.corruptor.kind,
                        injection.corruptor.malicious,
                    )
                )
        # Interleave the per-injection event blocks back into global
        # message order (the scalar log's order).
        pending.sort(key=lambda item: (item[0], item[1]))
        for t_idx, s_idx, kind, malicious in pending:
            self.events.append(
                CorruptionEvent(
                    sensor_id=int(sensor_ids[s_idx]),
                    timestamp=float(tick_times[t_idx]),
                    kind=kind,
                    malicious=malicious,
                )
            )
        return delivered

    def events_by_sensor(self) -> Dict[int, List[CorruptionEvent]]:
        """Group the ground-truth log per sensor."""
        grouped: Dict[int, List[CorruptionEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.sensor_id, []).append(event)
        return grouped
