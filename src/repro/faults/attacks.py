"""Malicious-attack models (paper §3.3, "Model for Malicious Attacks").

An adversary controls a fraction ``f`` of the sensors, knows the true
environment Θ(t), and coordinates the compromised sensors to move the
*network-wide mean* (which drives the observable state, Eq. 2) to a
chosen target: if correct sensors report θ, the malicious sensors report

    m = θ + (target - θ) / f

so that ``(1-f)·θ + f·m = target``.  All malicious values are clipped to
their admissible ranges to evade range checking, exactly as the paper's
injection experiments do (§4.2).

* :class:`DynamicCreationAttack` — introduce a spurious environment
  state while the true environment sits still.
* :class:`DynamicDeletionAttack` — hold the observable state fixed while
  the true environment moves into a (now deleted) state.
* :class:`DynamicChangeAttack` — remap state attributes one-to-one
  without altering temporal structure.
* :class:`MixedAttack` — a combination of the above.
* :class:`BenignAttack` — a compromised sensor that mimics correct
  behaviour; explicitly out of the paper's classification scope, present
  so tests can confirm it raises no diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..sensornet.messages import SensorMessage
from .base import GDI_ADMISSIBLE_RANGES, Corruptor, clip_to_ranges


def _as_vector(values: Sequence[float]) -> np.ndarray:
    return np.asarray(values, dtype=float)


def _distances_to(points: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Euclidean distance of each row of ``points`` from ``target``.

    One explicit ``sqrt(sum(square))`` shared by the scalar and the
    columnar attack paths.  ``np.linalg.norm`` is deliberately avoided:
    its vector form routes through BLAS ``nrm2`` whose scaled algorithm
    rounds differently from the axis form, so mixing the two would break
    bit-parity on trigger/mapping decisions at region boundaries.
    Supports broadcasting (e.g. ``(K, 1, d)`` against ``(M, d)``).
    """
    diff = np.asarray(points, dtype=float) - np.asarray(target, dtype=float)
    return np.sqrt((diff * diff).sum(axis=-1))


def coordinated_report(
    truth: np.ndarray,
    target: np.ndarray,
    fraction: float,
    ranges: Sequence[Tuple[float, float]],
) -> np.ndarray:
    """The reading a colluding sensor must send to move the mean.

    Parameters
    ----------
    truth:
        What correct sensors report (≈ Θ(t)).
    target:
        Where the adversary wants the network-wide mean.
    fraction:
        Fraction of sensors the adversary controls, in (0, 1].
    ranges:
        Admissible per-attribute ranges to clip into.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    report = truth + (target - truth) / fraction
    return clip_to_ranges(report, ranges)


@dataclass
class DynamicCreationAttack(Corruptor):
    """Introduce a spurious state in the sensed environment.

    While the true environment is inside the trigger region (or always,
    when ``trigger`` is None), compromised sensors coordinate to pull the
    observed mean to ``target`` — e.g. injecting hot/dry readings while
    the island is actually cold and humid (Fig. 11).

    The injection is *duty-cycled*: within each ``period_minutes`` span
    the adversary injects only for the first ``on_fraction``.  This is
    what makes the attack a state **creation**: the observable dynamics
    alternate between the real state and the spurious one, splitting the
    corresponding row of ``B^CO`` across two observation symbols (the
    paper's Table 7 row (12,95) splits 0.35/0.65).  A non-alternating
    pull would merely *rename* the state — a Dynamic Change.
    """

    #: The spurious state.  Chosen well off the temperature-humidity
    #: anti-correlation manifold so the created observable state cannot
    #: be confused with (or flap between) real environment states.
    target: Tuple[float, ...] = (14.0, 55.0)
    fraction: float = 1.0 / 3.0
    trigger: Optional[Tuple[float, ...]] = None
    trigger_radius: float = 6.0
    #: Align the duty cycle with whole observation windows (240 min at
    #: 0.5 = two 1-hour windows on, two off) so partially injected
    #: windows — whose means land between states — stay rare.
    period_minutes: float = 240.0
    on_fraction: float = 0.5
    ranges: Tuple[Tuple[float, float], ...] = GDI_ADMISSIBLE_RANGES
    kind: str = "creation"
    malicious: bool = True

    def __post_init__(self) -> None:
        if self.period_minutes <= 0:
            raise ValueError("period_minutes must be positive")
        if not 0.0 < self.on_fraction <= 1.0:
            raise ValueError("on_fraction must be in (0, 1]")

    def _triggered(self, truth: np.ndarray) -> bool:
        if self.trigger is None:
            return True
        distance = float(_distances_to(truth, _as_vector(self.trigger)))
        return distance <= self.trigger_radius

    def _injecting(self, elapsed_minutes: float) -> bool:
        phase = (elapsed_minutes % self.period_minutes) / self.period_minutes
        return phase < self.on_fraction

    def corrupt(
        self, message: SensorMessage, truth: np.ndarray, elapsed_minutes: float
    ) -> Optional[SensorMessage]:
        if not self._triggered(truth) or not self._injecting(elapsed_minutes):
            return message
        report = coordinated_report(
            truth, _as_vector(self.target), self.fraction, self.ranges
        )
        return message.with_attributes(report)

    def corrupt_columnar(
        self, values: np.ndarray, truths: np.ndarray, elapsed: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        values = np.asarray(values, dtype=float)
        truths = np.asarray(truths, dtype=float)
        elapsed = np.asarray(elapsed, dtype=float)
        mask = np.ones(values.shape[0], dtype=bool)
        if self.trigger is not None:
            distances = _distances_to(truths, _as_vector(self.trigger))
            mask &= distances <= self.trigger_radius
        phase = (elapsed % self.period_minutes) / self.period_minutes
        mask &= phase < self.on_fraction
        out = values.copy()
        if mask.any():
            out[mask] = coordinated_report(
                truths[mask], _as_vector(self.target), self.fraction, self.ranges
            )
        return out, np.ones(values.shape[0], dtype=bool)


@dataclass
class DynamicDeletionAttack(Corruptor):
    """Remove a valid state from the sensed environment.

    Whenever the true environment comes within ``radius`` of
    ``deleted_state``, compromised sensors pull the observed mean back to
    ``hold_state`` so the network never sees the transition — e.g.
    reporting low temperatures so the observable state stays at (20, 71)
    while the island really warmed to (29, 56) (Fig. 10 / Table 6).
    """

    deleted_state: Tuple[float, ...] = (29.0, 56.0)
    hold_state: Tuple[float, ...] = (20.0, 71.0)
    radius: float = 6.0
    fraction: float = 1.0 / 3.0
    ranges: Tuple[Tuple[float, float], ...] = GDI_ADMISSIBLE_RANGES
    kind: str = "deletion"
    malicious: bool = True

    def corrupt(
        self, message: SensorMessage, truth: np.ndarray, elapsed_minutes: float
    ) -> Optional[SensorMessage]:
        distance = float(_distances_to(truth, _as_vector(self.deleted_state)))
        if distance > self.radius:
            return message
        report = coordinated_report(
            truth, _as_vector(self.hold_state), self.fraction, self.ranges
        )
        return message.with_attributes(report)

    def corrupt_columnar(
        self, values: np.ndarray, truths: np.ndarray, elapsed: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        values = np.asarray(values, dtype=float)
        truths = np.asarray(truths, dtype=float)
        distances = _distances_to(truths, _as_vector(self.deleted_state))
        mask = distances <= self.radius
        out = values.copy()
        if mask.any():
            out[mask] = coordinated_report(
                truths[mask], _as_vector(self.hold_state), self.fraction, self.ranges
            )
        return out, np.ones(values.shape[0], dtype=bool)


@dataclass
class DynamicChangeAttack(Corruptor):
    """Modify state attributes without changing temporal behaviour.

    The adversary holds a one-to-one remapping of environment states:
    whenever the true environment is near a source state, the observed
    mean is pulled to that source's image.  Because the mapping is a
    bijection, ``B^CO`` stays orthogonal and only the *attribute values*
    of corresponding states differ — the left branch of Fig. 5.
    """

    mapping: Tuple[Tuple[Tuple[float, ...], Tuple[float, ...]], ...] = (
        ((12.0, 94.0), (4.0, 82.0)),
        ((17.0, 84.0), (9.0, 72.0)),
        ((24.0, 70.0), (16.0, 58.0)),
        ((31.0, 56.0), (23.0, 44.0)),
    )
    fraction: float = 1.0 / 3.0
    ranges: Tuple[Tuple[float, float], ...] = GDI_ADMISSIBLE_RANGES
    kind: str = "change"
    malicious: bool = True

    def __post_init__(self) -> None:
        if not self.mapping:
            raise ValueError("mapping must be non-empty")
        images = [tuple(image) for _, image in self.mapping]
        if len(set(images)) != len(images):
            raise ValueError("dynamic change mapping must be one-to-one")

    def _image_of(self, truth: np.ndarray) -> np.ndarray:
        sources = np.asarray([source for source, _ in self.mapping])
        images = np.asarray([image for _, image in self.mapping])
        distances = _distances_to(sources, truth[None, :])
        return images[int(np.argmin(distances))]

    def corrupt(
        self, message: SensorMessage, truth: np.ndarray, elapsed_minutes: float
    ) -> Optional[SensorMessage]:
        target = self._image_of(truth)
        report = coordinated_report(truth, target, self.fraction, self.ranges)
        return message.with_attributes(report)

    def corrupt_columnar(
        self, values: np.ndarray, truths: np.ndarray, elapsed: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        values = np.asarray(values, dtype=float)
        truths = np.asarray(truths, dtype=float)
        sources = np.asarray([source for source, _ in self.mapping])
        images = np.asarray([image for _, image in self.mapping])
        distances = _distances_to(sources[None, :, :], truths[:, None, :])
        targets = images[np.argmin(distances, axis=1)]
        out = coordinated_report(truths, targets, self.fraction, self.ranges)
        return out, np.ones(values.shape[0], dtype=bool)


@dataclass
class MixedAttack(Corruptor):
    """A combination of simple attacks (paper's *Mixed* category).

    Each component inspects the truth in turn; the first component whose
    corruption actually changes the report wins.  The default pairs a
    creation with a deletion, which makes both the row and the column
    Gram tests of ``B^CO`` fire simultaneously.
    """

    components: Tuple[Corruptor, ...] = field(
        default_factory=lambda: (
            DynamicCreationAttack(trigger=(12.0, 94.0), target=(14.0, 55.0)),
            DynamicDeletionAttack(),
        )
    )
    kind: str = "mixed"
    malicious: bool = True

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("components must be non-empty")

    def corrupt(
        self, message: SensorMessage, truth: np.ndarray, elapsed_minutes: float
    ) -> Optional[SensorMessage]:
        for component in self.components:
            candidate = component.corrupt(message, truth, elapsed_minutes)
            if candidate is None:
                return None
            if candidate.attributes != message.attributes:
                return candidate
        return message

    def corrupt_columnar(
        self, values: np.ndarray, truths: np.ndarray, elapsed: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        # Stateful-RNG components consume their stream only on the rows
        # that actually reach them in the scalar first-change-wins loop;
        # a masked batch call cannot reproduce that, so fall back to the
        # row-by-row replay for such components.
        if any(getattr(c, "_rng", None) is not None for c in self.components):
            return super().corrupt_columnar(values, truths, elapsed)
        values = np.asarray(values, dtype=float)
        truths = np.asarray(truths, dtype=float)
        elapsed = np.asarray(elapsed, dtype=float)
        out = values.copy()
        delivered = np.ones(values.shape[0], dtype=bool)
        undecided = np.ones(values.shape[0], dtype=bool)
        for component in self.components:
            if not undecided.any():
                break
            idx = np.nonzero(undecided)[0]
            candidate, cand_delivered = component.corrupt_columnar(
                values[idx], truths[idx], elapsed[idx]
            )
            changed = np.any(candidate != values[idx], axis=1)
            take = changed | ~cand_delivered
            rows = idx[take]
            out[rows] = candidate[take]
            delivered[rows] = cand_delivered[take]
            undecided[rows] = False
        return out, delivered


@dataclass
class BenignAttack(Corruptor):
    """A compromised sensor that behaves exactly like a correct one.

    The paper explicitly excludes benign attackers from its
    classification scope ("it does not alter the system behavior in any
    manner", §3.3); the model exists so the test suite can verify that
    the pipeline raises no diagnosis for such a sensor.
    """

    mimic_noise_std: float = 0.35
    seed: int = 23
    kind: str = "benign"
    malicious: bool = True
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mimic_noise_std < 0:
            raise ValueError("mimic_noise_std must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def corrupt(
        self, message: SensorMessage, truth: np.ndarray, elapsed_minutes: float
    ) -> Optional[SensorMessage]:
        noise = self._rng.normal(0.0, self.mimic_noise_std, size=truth.shape)
        return message.with_attributes(truth + noise)

    def corrupt_columnar(
        self, values: np.ndarray, truths: np.ndarray, elapsed: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        truths = np.asarray(truths, dtype=float)
        noise = self._rng.normal(0.0, self.mimic_noise_std, size=truths.shape)
        return truths + noise, np.ones(truths.shape[0], dtype=bool)
