"""Accidental-fault models (paper §3.3, "Model for Accidental Errors").

Each fault transforms the sensor's *own reading* (it is a property of the
degraded device, not of the environment):

* :class:`StuckAtFault` — constant reading;
* :class:`CalibrationFault` — multiplicative error;
* :class:`AdditiveFault` — additive error;
* :class:`RandomNoiseFault` — zero-mean high-variance noise;
* :class:`DriftFault` — slow ramp toward a terminal value, the "unknown
  error" archetype; it also reproduces the paper's naturally faulty
  sensor 6, whose humidity decayed continuously to almost zero before
  sticking (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from ..sensornet.messages import SensorMessage
from .base import Corruptor


@dataclass
class StuckAtFault(Corruptor):
    """The sensor constantly reports a fixed value.

    Parameters
    ----------
    value:
        The stuck attribute vector (e.g. ``(15.0, 1.0)``, the stuck state
        the paper's sensor 6 converged to).
    """

    value: Tuple[float, ...] = (15.0, 1.0)
    kind: str = "stuck_at"
    malicious: bool = False

    def corrupt(
        self, message: SensorMessage, truth: np.ndarray, elapsed_minutes: float
    ) -> Optional[SensorMessage]:
        if len(self.value) != message.n_attributes:
            raise ValueError("stuck value dimensionality mismatch")
        return message.with_attributes(self.value)

    def corrupt_columnar(
        self, values: np.ndarray, truths: np.ndarray, elapsed: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        values = np.asarray(values, dtype=float)
        if len(self.value) != values.shape[1]:
            raise ValueError("stuck value dimensionality mismatch")
        out = np.tile(np.asarray(self.value, dtype=float), (values.shape[0], 1))
        return out, np.ones(values.shape[0], dtype=bool)


@dataclass
class CalibrationFault(Corruptor):
    """Readings scaled by a per-attribute gain (multiplicative error).

    The paper's sensor 7 read humidity about 10-16 % high and
    temperature about 20 % low (the Tables 4-5 ratios average
    (1.24, 1.16) under the paper's per-attribute ratio conventions); the
    defaults reproduce that sensor.  Note this gain combination slides
    readings *along* the diurnal temperature-humidity ladder, so the
    faulty sensor's reports snap onto neighbouring model states — which
    is exactly why the paper's B^CE pairs correct states with *other
    correct states* rather than with freshly spawned ones.
    """

    gains: Tuple[float, ...] = (1.0 / 1.24, 1.16)
    kind: str = "calibration"
    malicious: bool = False

    def __post_init__(self) -> None:
        if any(g <= 0 for g in self.gains):
            raise ValueError("gains must be positive")

    def corrupt(
        self, message: SensorMessage, truth: np.ndarray, elapsed_minutes: float
    ) -> Optional[SensorMessage]:
        if len(self.gains) != message.n_attributes:
            raise ValueError("gains dimensionality mismatch")
        return message.with_attributes(message.vector * np.asarray(self.gains))

    def corrupt_columnar(
        self, values: np.ndarray, truths: np.ndarray, elapsed: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        values = np.asarray(values, dtype=float)
        if len(self.gains) != values.shape[1]:
            raise ValueError("gains dimensionality mismatch")
        out = values * np.asarray(self.gains)
        return out, np.ones(values.shape[0], dtype=bool)


@dataclass
class AdditiveFault(Corruptor):
    """Readings shifted by a per-attribute constant offset."""

    offsets: Tuple[float, ...] = (5.0, 10.0)
    kind: str = "additive"
    malicious: bool = False

    def corrupt(
        self, message: SensorMessage, truth: np.ndarray, elapsed_minutes: float
    ) -> Optional[SensorMessage]:
        if len(self.offsets) != message.n_attributes:
            raise ValueError("offsets dimensionality mismatch")
        return message.with_attributes(message.vector + np.asarray(self.offsets))

    def corrupt_columnar(
        self, values: np.ndarray, truths: np.ndarray, elapsed: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        values = np.asarray(values, dtype=float)
        if len(self.offsets) != values.shape[1]:
            raise ValueError("offsets dimensionality mismatch")
        out = values + np.asarray(self.offsets)
        return out, np.ones(values.shape[0], dtype=bool)


@dataclass
class RandomNoiseFault(Corruptor):
    """Readings corrupted by zero-mean noise with high variance.

    The paper notes this fault is intrinsically hard to classify under
    its estimation model (the corrupted readings still average to the
    truth), and may be reported as error-free; the reproduction keeps
    that behaviour.
    """

    noise_std: float = 8.0
    seed: int = 7
    kind: str = "random_noise"
    malicious: bool = False
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.noise_std <= 0:
            raise ValueError("noise_std must be positive")
        self._rng = np.random.default_rng(self.seed)

    def corrupt(
        self, message: SensorMessage, truth: np.ndarray, elapsed_minutes: float
    ) -> Optional[SensorMessage]:
        noise = self._rng.normal(0.0, self.noise_std, size=message.n_attributes)
        return message.with_attributes(message.vector + noise)

    def corrupt_columnar(
        self, values: np.ndarray, truths: np.ndarray, elapsed: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        # A (K, d) batched draw consumes the same Generator stream as K
        # sequential size-d draws, so the scalar path's noise reappears
        # value-for-value.
        values = np.asarray(values, dtype=float)
        noise = self._rng.normal(0.0, self.noise_std, size=values.shape)
        return values + noise, np.ones(values.shape[0], dtype=bool)


@dataclass
class DriftFault(Corruptor):
    """Slow linear drift toward a terminal value, then stuck there.

    ``reading(t) = lerp(own reading, terminal, min(1, elapsed/ramp))`` —
    early on the sensor looks almost healthy, then diverges, and finally
    behaves exactly like a stuck-at fault.  This is the paper's "errors
    manifest days before the electronics fail" degradation pattern [1].
    """

    terminal: Tuple[float, ...] = (15.0, 1.0)
    ramp_minutes: float = 7 * 24 * 60.0
    kind: str = "drift"
    malicious: bool = False

    def __post_init__(self) -> None:
        if self.ramp_minutes <= 0:
            raise ValueError("ramp_minutes must be positive")

    def corrupt(
        self, message: SensorMessage, truth: np.ndarray, elapsed_minutes: float
    ) -> Optional[SensorMessage]:
        if len(self.terminal) != message.n_attributes:
            raise ValueError("terminal dimensionality mismatch")
        progress = min(1.0, elapsed_minutes / self.ramp_minutes)
        mixed = (1.0 - progress) * message.vector + progress * np.asarray(
            self.terminal
        )
        return message.with_attributes(mixed)

    def corrupt_columnar(
        self, values: np.ndarray, truths: np.ndarray, elapsed: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        values = np.asarray(values, dtype=float)
        if len(self.terminal) != values.shape[1]:
            raise ValueError("terminal dimensionality mismatch")
        progress = np.minimum(1.0, np.asarray(elapsed, dtype=float) / self.ramp_minutes)
        progress = progress[:, None]
        out = (1.0 - progress) * values + progress * np.asarray(self.terminal)
        return out, np.ones(values.shape[0], dtype=bool)


@dataclass
class PacketDropper(Corruptor):
    """Wraps a corruptor and additionally drops a fraction of packets.

    Field studies [1] report that degrading sensors lose radio quality
    alongside data quality: a dying mote delivers fewer packets.  Under
    the paper's Eq. 2 (mean over *delivered readings*) this shrinks the
    faulty sensor's pull on the observable state, which is why the
    paper's B^CO stays near-orthogonal under single-sensor faults.
    """

    inner: Corruptor = field(default_factory=StuckAtFault)
    drop_probability: float = 0.6
    seed: int = 13
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        self._rng = np.random.default_rng(self.seed)

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self.inner.kind

    @property
    def malicious(self) -> bool:  # type: ignore[override]
        return self.inner.malicious

    def corrupt(
        self, message: SensorMessage, truth: np.ndarray, elapsed_minutes: float
    ) -> Optional[SensorMessage]:
        if self._rng.random() < self.drop_probability:
            return None
        return self.inner.corrupt(message, truth, elapsed_minutes)

    def corrupt_columnar(
        self, values: np.ndarray, truths: np.ndarray, elapsed: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        values = np.asarray(values, dtype=float)
        draws = self._rng.random(values.shape[0])
        kept = draws >= self.drop_probability
        out = values.copy()
        delivered = kept.copy()
        if kept.any():
            # The scalar path only consults the inner corruptor (and so
            # only advances its RNG) for packets that survive the drop.
            idx = np.nonzero(kept)[0]
            inner_out, inner_delivered = self.inner.corrupt_columnar(
                values[idx], np.asarray(truths, dtype=float)[idx],
                np.asarray(elapsed, dtype=float)[idx],
            )
            out[idx] = inner_out
            delivered[idx] = inner_delivered
        return out, delivered


@dataclass
class IntermittentFault(Corruptor):
    """Wraps another fault so it only manifests a fraction of the time.

    Degraded hardware frequently produces *intermittent* symptoms before
    failing solid; this wrapper lets tests and ablations exercise the
    alarm filter's ability to integrate sparse raw alarms.
    """

    inner: Corruptor = field(default_factory=StuckAtFault)
    duty_cycle: float = 0.5
    seed: int = 11
    malicious: bool = False
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in (0, 1]")
        self._rng = np.random.default_rng(self.seed)

    @property
    def kind(self) -> str:  # type: ignore[override]
        return f"intermittent_{self.inner.kind}"

    def corrupt(
        self, message: SensorMessage, truth: np.ndarray, elapsed_minutes: float
    ) -> Optional[SensorMessage]:
        if self._rng.random() < self.duty_cycle:
            return self.inner.corrupt(message, truth, elapsed_minutes)
        return message

    def corrupt_columnar(
        self, values: np.ndarray, truths: np.ndarray, elapsed: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        values = np.asarray(values, dtype=float)
        draws = self._rng.random(values.shape[0])
        active = draws < self.duty_cycle
        out = values.copy()
        delivered = np.ones(values.shape[0], dtype=bool)
        if active.any():
            idx = np.nonzero(active)[0]
            inner_out, inner_delivered = self.inner.corrupt_columnar(
                values[idx], np.asarray(truths, dtype=float)[idx],
                np.asarray(elapsed, dtype=float)[idx],
            )
            out[idx] = inner_out
            delivered[idx] = inner_delivered
        return out, delivered
