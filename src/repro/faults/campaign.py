"""Injection campaigns: reproducible multi-sensor corruption plans.

The paper's experiments plant specific conditions — sensor 6 stuck-at,
sensor 7 mis-calibrated, one third of the sensors colluding in an attack.
A :class:`CampaignSpec` captures such a plan declaratively so the
experiment harness, the examples, and the tests all construct identical
scenarios, and so classification accuracy can be scored against a known
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..sensornet.environment import EnvironmentModel
from .base import ActivationSchedule, Corruptor
from .injector import FaultInjector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiments.runner import ScenarioOutcome


@dataclass
class CampaignEntry:
    """One planned corruption: which sensors, what, and when."""

    corruptor: Corruptor
    sensor_ids: List[int]
    schedule: ActivationSchedule = field(default_factory=ActivationSchedule)


@dataclass
class CampaignSpec:
    """A declarative corruption plan over a deployment.

    Attributes
    ----------
    entries:
        The planned corruptions, applied in order (first match wins for
        overlapping sensors).
    name:
        Label used in reports.
    """

    entries: List[CampaignEntry] = field(default_factory=list)
    name: str = "campaign"

    def plant(
        self,
        corruptor: Corruptor,
        sensor_ids: Sequence[int],
        schedule: Optional[ActivationSchedule] = None,
    ) -> "CampaignSpec":
        """Add one corruption; returns self for chaining."""
        self.entries.append(
            CampaignEntry(
                corruptor=corruptor,
                sensor_ids=list(sensor_ids),
                schedule=schedule or ActivationSchedule(),
            )
        )
        return self

    def build_injector(self, environment: EnvironmentModel) -> FaultInjector:
        """Materialise the plan against an environment model."""
        injector = FaultInjector(environment=environment)
        for entry in self.entries:
            injector.add(entry.corruptor, entry.sensor_ids, entry.schedule)
        return injector

    def ground_truth(self) -> Dict[int, str]:
        """sensor_id -> planted corruptor kind (first match wins)."""
        truth: Dict[int, str] = {}
        for entry in self.entries:
            for sensor_id in entry.sensor_ids:
                truth.setdefault(sensor_id, entry.corruptor.kind)
        return truth

    def malicious_sensor_ids(self) -> List[int]:
        """Sensors planted with an attack (vs an accidental fault)."""
        ids = []
        for entry in self.entries:
            if entry.corruptor.malicious:
                ids.extend(entry.sensor_ids)
        return sorted(set(ids))

    def faulty_sensor_ids(self) -> List[int]:
        """Sensors planted with an accidental fault."""
        ids = []
        for entry in self.entries:
            if not entry.corruptor.malicious:
                ids.extend(entry.sensor_ids)
        return sorted(set(ids))


def run_campaigns_parallel(
    scenario_names: Sequence[str],
    n_days: int = 21,
    seed: int = 2003,
    n_jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    policy: Optional[object] = None,
    chaos: Optional[object] = None,
    journal_dir: Optional[str] = None,
) -> List["ScenarioOutcome"]:
    """Run the named standard campaigns across a process pool.

    Thin campaign-facing wrapper over the fault-tolerant
    :func:`repro.experiments.runner.run_scenarios_parallel` (imported
    lazily — the experiments package imports this module).  Returns
    :class:`~repro.experiments.runner.ScenarioOutcome` summaries in the
    order the names were given, identical for any ``n_jobs``; with a
    ``cache_dir``, previously generated traces are loaded from the
    scenario cache instead of re-simulated.  ``policy`` (a
    :class:`~repro.experiments.retry.RetryPolicy`), ``chaos`` (a
    :class:`~repro.resilience.chaos.WorkerChaos`) and ``journal_dir``
    pass straight through to the campaign runtime.
    """
    from ..experiments.runner import ScenarioSpec, run_scenarios_parallel

    specs = [
        ScenarioSpec(name=name, n_days=n_days, seed=seed)
        for name in scenario_names
    ]
    return run_scenarios_parallel(
        specs,
        n_jobs=n_jobs,
        cache_dir=cache_dir,
        policy=policy,
        chaos=chaos,
        journal_dir=journal_dir,
    )


def choose_compromised(
    sensor_ids: Sequence[int], fraction: float, seed: int = 0
) -> List[int]:
    """Pick ``fraction`` of the sensors to compromise, reproducibly.

    The paper injects malicious behaviour into one third of the available
    sensors (§4.2); ``choose_compromised(range(10), 1/3)`` reproduces
    that population size (ceil keeps at least one sensor).
    """
    sensor_ids = list(sensor_ids)
    if not sensor_ids:
        raise ValueError("sensor_ids must be non-empty")
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    count = max(1, int(np.ceil(fraction * len(sensor_ids))))
    rng = np.random.default_rng(seed)
    chosen = rng.choice(sensor_ids, size=min(count, len(sensor_ids)), replace=False)
    return sorted(int(x) for x in chosen)
