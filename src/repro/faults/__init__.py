"""Fault and attack models plus their injection machinery (paper §3.3)."""

from .attacks import (
    BenignAttack,
    DynamicChangeAttack,
    DynamicCreationAttack,
    DynamicDeletionAttack,
    MixedAttack,
    coordinated_report,
)
from .base import (
    GDI_ADMISSIBLE_RANGES,
    ActivationSchedule,
    Corruptor,
    clip_to_ranges,
)
from .campaign import CampaignEntry, CampaignSpec, choose_compromised
from .errors import (
    AdditiveFault,
    CalibrationFault,
    DriftFault,
    IntermittentFault,
    PacketDropper,
    RandomNoiseFault,
    StuckAtFault,
)
from .injector import CorruptionEvent, FaultInjector, Injection

__all__ = [
    "ActivationSchedule",
    "AdditiveFault",
    "BenignAttack",
    "CalibrationFault",
    "CampaignEntry",
    "CampaignSpec",
    "CorruptionEvent",
    "Corruptor",
    "DriftFault",
    "DynamicChangeAttack",
    "DynamicCreationAttack",
    "DynamicDeletionAttack",
    "FaultInjector",
    "GDI_ADMISSIBLE_RANGES",
    "Injection",
    "IntermittentFault",
    "MixedAttack",
    "PacketDropper",
    "RandomNoiseFault",
    "StuckAtFault",
    "choose_compromised",
    "clip_to_ranges",
    "coordinated_report",
]
