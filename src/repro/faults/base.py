"""Fault/attack injection primitives.

The paper's §3.3 defines a *sensor fault model* (stuck-at-value,
calibration, additive, random-noise, unknown) and a *sensor attack model*
(dynamic creation, deletion, change, mixed).  Both are modelled here as
*corruptors*: transformations applied to a sensor's report before it
enters the radio.  Faults are functions of the sensor's own reading;
attacks are functions of the **true environment** — the adversary is an
intelligent entity that knows the underlying dynamics (§3.4 intuition) —
and of the fraction of sensors it controls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..sensornet.messages import SensorMessage

#: Admissible per-attribute ranges for the GDI configuration.  The paper
#: keeps malicious values in-range to evade range checking ("we have
#: decided to maintain malicious values within their admissible range,
#: e.g., [0, 100] for humidity", §4.2).
GDI_ADMISSIBLE_RANGES: Tuple[Tuple[float, float], ...] = (
    (-10.0, 60.0),  # temperature, °C
    (0.0, 100.0),  # relative humidity, %
)


def clip_to_ranges(
    values: np.ndarray, ranges: Sequence[Tuple[float, float]]
) -> np.ndarray:
    """Clip each attribute into its admissible range."""
    values = np.asarray(values, dtype=float)
    if len(ranges) != values.shape[-1]:
        raise ValueError("ranges/attributes dimensionality mismatch")
    lows = np.asarray([r[0] for r in ranges])
    highs = np.asarray([r[1] for r in ranges])
    if np.any(lows > highs):
        raise ValueError("each range must satisfy low <= high")
    return np.clip(values, lows, highs)


@dataclass(frozen=True)
class ActivationSchedule:
    """When a corruptor is active.

    Attributes
    ----------
    start_minutes:
        Onset time (inclusive).
    end_minutes:
        End time (exclusive); ``None`` means active until the end of the
        deployment.
    """

    start_minutes: float = 0.0
    end_minutes: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_minutes < 0:
            raise ValueError("start_minutes must be non-negative")
        if self.end_minutes is not None and self.end_minutes <= self.start_minutes:
            raise ValueError("end_minutes must exceed start_minutes")

    def active_at(self, minutes: float) -> bool:
        """True when the schedule covers ``minutes``."""
        if minutes < self.start_minutes:
            return False
        return self.end_minutes is None or minutes < self.end_minutes

    def elapsed(self, minutes: float) -> float:
        """Minutes since onset (0 when not yet active)."""
        return max(0.0, minutes - self.start_minutes)

    def active_mask(self, minutes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`active_at` over an array of timestamps."""
        minutes = np.asarray(minutes, dtype=float)
        mask = minutes >= self.start_minutes
        if self.end_minutes is not None:
            mask &= minutes < self.end_minutes
        return mask

    def elapsed_array(self, minutes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`elapsed` over an array of timestamps."""
        minutes = np.asarray(minutes, dtype=float)
        return np.maximum(0.0, minutes - self.start_minutes)


class Corruptor:
    """Interface for fault and attack models.

    Subclasses implement :meth:`corrupt`; ``truth`` is the actual
    environment value Θ(t) at the report's timestamp and
    ``elapsed_minutes`` the time since the corruptor's onset (so
    degradation processes such as drift can progress).
    """

    #: Label used in diagnosis ground truth ("stuck_at", "creation", ...).
    kind: str = "unknown"

    #: Whether this corruptor models a malicious adversary (attack)
    #: rather than an accidental fault.
    malicious: bool = False

    def corrupt(
        self,
        message: SensorMessage,
        truth: np.ndarray,
        elapsed_minutes: float,
    ) -> Optional[SensorMessage]:
        """Return the corrupted report (None suppresses the report)."""
        raise NotImplementedError

    def corrupt_columnar(
        self,
        values: np.ndarray,
        truths: np.ndarray,
        elapsed: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Vectorised :meth:`corrupt` over a batch of reports.

        Parameters are parallel arrays, one row per report *in message
        order* (tick-major, then mote order — the exact order the
        scalar injector visits them, so stateful RNG corruptors consume
        the same stream).  Returns ``(corrupted_values, delivered)``
        where ``delivered`` is False for reports the corruptor
        suppressed (the scalar path's ``None``).

        The base implementation replays the scalar :meth:`corrupt` row
        by row — always correct, never fast.  Hot corruptors override
        it with a true array kernel; the parity suite pins the two
        paths together bit-for-bit.
        """
        values = np.asarray(values, dtype=float)
        truths = np.asarray(truths, dtype=float)
        elapsed = np.asarray(elapsed, dtype=float)
        out = values.copy()
        delivered = np.ones(values.shape[0], dtype=bool)
        for row in range(values.shape[0]):
            message = SensorMessage(
                sensor_id=0,
                timestamp=float(elapsed[row]),
                attributes=tuple(float(x) for x in values[row]),
            )
            corrupted = self.corrupt(message, truths[row], float(elapsed[row]))
            if corrupted is None:
                delivered[row] = False
            else:
                out[row] = corrupted.vector
        return out, delivered
