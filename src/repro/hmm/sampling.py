"""Sampling from discrete HMMs and Markov chains.

Used by tests (to generate sequences with known ground truth) and by the
synthetic workload generators in :mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import DiscreteHMM
from .utils import as_prob_vector, as_stochastic_matrix


@dataclass(frozen=True)
class SampledSequence:
    """A jointly sampled hidden path and observation sequence."""

    states: np.ndarray
    observations: np.ndarray


def sample_sequence(
    model: DiscreteHMM, length: int, rng: np.random.Generator
) -> SampledSequence:
    """Draw a length-``length`` (states, observations) pair from ``model``."""
    if length <= 0:
        raise ValueError("length must be positive")
    states = np.zeros(length, dtype=int)
    observations = np.zeros(length, dtype=int)

    states[0] = rng.choice(model.n_states, p=model.initial)
    observations[0] = rng.choice(model.n_symbols, p=model.emission[states[0]])
    for t in range(1, length):
        states[t] = rng.choice(model.n_states, p=model.transition[states[t - 1]])
        observations[t] = rng.choice(model.n_symbols, p=model.emission[states[t]])
    return SampledSequence(states=states, observations=observations)


def sample_markov_chain(
    transition: np.ndarray,
    initial: np.ndarray,
    length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw a state path from a plain first-order Markov chain."""
    if length <= 0:
        raise ValueError("length must be positive")
    trans = as_stochastic_matrix(transition, "transition")
    init = as_prob_vector(initial, "initial")
    if trans.shape[0] != init.shape[0]:
        raise ValueError("transition/initial size mismatch")
    path = np.zeros(length, dtype=int)
    path[0] = rng.choice(init.size, p=init)
    for t in range(1, length):
        path[t] = rng.choice(init.size, p=trans[path[t - 1]])
    return path


def empirical_emission(
    states: np.ndarray, observations: np.ndarray, n_states: int, n_symbols: int
) -> np.ndarray:
    """Estimate an emission matrix from aligned (state, symbol) pairs.

    Rows with no evidence become uniform.  Handy for checking sampled
    sequences against the generating model in tests.
    """
    states = np.asarray(states, dtype=int)
    observations = np.asarray(observations, dtype=int)
    if states.shape != observations.shape:
        raise ValueError("states and observations must align")
    counts = np.zeros((n_states, n_symbols))
    for state, symbol in zip(states, observations):
        counts[state, symbol] += 1.0
    sums = counts.sum(axis=1, keepdims=True)
    uniform = np.full((1, n_symbols), 1.0 / n_symbols)
    return np.where(sums > 0, counts / np.maximum(sums, 1.0), uniform)
