"""Baum-Welch (EM) re-estimation for discrete HMMs.

This is the batch trainer used by the Warrender-style offline-HMM
baseline [5 in the paper]: an attack-free *training phase* fits the model,
after which low-likelihood traces are flagged as anomalous.  The paper's
own method deliberately avoids this trainer (no attack-free phase is
required); the implementation exists to make the comparison concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .algorithms import forward_backward
from .model import DiscreteHMM
from .utils import normalize_rows, normalize_vector

#: Additive smoothing applied to accumulated counts so no probability is
#: re-estimated to exactly zero (keeps held-out likelihoods finite).
_SMOOTHING = 1e-6


@dataclass(frozen=True)
class TrainingResult:
    """Outcome of a Baum-Welch fit.

    Attributes
    ----------
    model:
        The re-estimated HMM.
    log_likelihoods:
        Total training log-likelihood after each EM iteration.
    converged:
        True if the improvement dropped below ``tol`` before
        ``max_iterations`` was reached.
    iterations:
        Number of EM iterations actually performed.
    """

    model: DiscreteHMM
    log_likelihoods: List[float]
    converged: bool
    iterations: int


def baum_welch(
    model: DiscreteHMM,
    sequences: Sequence[Sequence[int]],
    max_iterations: int = 50,
    tol: float = 1e-4,
) -> TrainingResult:
    """Fit ``model`` to one or more observation sequences with EM.

    Parameters
    ----------
    model:
        Initial model (its sizes define the state/symbol alphabets).
    sequences:
        Non-empty list of integer symbol sequences.
    max_iterations:
        Upper bound on EM iterations.
    tol:
        Convergence threshold on total log-likelihood improvement.

    Returns
    -------
    TrainingResult
        Re-estimated model plus the likelihood trajectory.
    """
    if not sequences:
        raise ValueError("baum_welch requires at least one sequence")
    current = model.copy()
    history: List[float] = []
    converged = False
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        total_loglik, updated = _em_step(current, sequences)
        history.append(total_loglik)
        current = updated
        if len(history) >= 2:
            improvement = history[-1] - history[-2]
            if abs(improvement) < tol:
                converged = True
                break
    return TrainingResult(
        model=current,
        log_likelihoods=history,
        converged=converged,
        iterations=iterations,
    )


def _em_step(
    model: DiscreteHMM, sequences: Sequence[Sequence[int]]
) -> "tuple[float, DiscreteHMM]":
    """One full EM iteration over all sequences; returns (loglik, model)."""
    n_states = model.n_states
    n_symbols = model.n_symbols

    initial_counts = np.zeros(n_states)
    transition_counts = np.zeros((n_states, n_states))
    emission_counts = np.zeros((n_states, n_symbols))
    total_loglik = 0.0

    for sequence in sequences:
        obs = model.validate_observations(sequence)
        result = forward_backward(model, obs)
        total_loglik += result.log_likelihood

        initial_counts += result.gamma[0]
        for symbol in range(n_symbols):
            mask = obs == symbol
            if np.any(mask):
                emission_counts[:, symbol] += result.gamma[mask].sum(axis=0)
        for t in range(obs.size - 1):
            xi = (
                result.alpha[t][:, None]
                * model.transition
                * model.emission[:, obs[t + 1]][None, :]
                * result.beta[t + 1][None, :]
            )
            xi_total = xi.sum()
            if xi_total > 0.0:
                transition_counts += xi / xi_total

    updated = DiscreteHMM(
        transition=normalize_rows(transition_counts + _SMOOTHING),
        emission=normalize_rows(emission_counts + _SMOOTHING),
        initial=normalize_vector(initial_counts + _SMOOTHING),
        state_names=model.state_names,
        symbol_names=model.symbol_names,
    )
    return total_loglik, updated


def fit_random_restarts(
    n_states: int,
    n_symbols: int,
    sequences: Sequence[Sequence[int]],
    rng: np.random.Generator,
    n_restarts: int = 3,
    max_iterations: int = 50,
    tol: float = 1e-4,
) -> TrainingResult:
    """Fit with several random initialisations, keeping the best fit.

    EM is only locally convergent; a few restarts is the standard remedy
    and is cheap at the state counts used in this reproduction (5-10).
    """
    if n_restarts < 1:
        raise ValueError("n_restarts must be >= 1")
    best: Optional[TrainingResult] = None
    for _ in range(n_restarts):
        initial = DiscreteHMM.random(n_states, n_symbols, rng)
        result = baum_welch(
            initial, sequences, max_iterations=max_iterations, tol=tol
        )
        if best is None or result.log_likelihoods[-1] > best.log_likelihoods[-1]:
            best = result
    assert best is not None
    return best
