"""Viterbi decoding for :class:`~repro.hmm.model.DiscreteHMM`.

Finds the single most probable hidden-state path explaining a discrete
observation sequence, in log space for numerical robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .model import DiscreteHMM


@dataclass(frozen=True)
class ViterbiResult:
    """Most probable path and its (log) score.

    Attributes
    ----------
    path:
        ``(T,)`` integer array of hidden-state indices.
    log_probability:
        ``log Pr{path, O | model}`` of the jointly most probable
        explanation; ``-inf`` if the sequence is impossible.
    """

    path: np.ndarray
    log_probability: float


def _safe_log(mat: np.ndarray) -> np.ndarray:
    """Elementwise log with zeros mapped to -inf without warnings."""
    out = np.full(mat.shape, -np.inf)
    positive = mat > 0.0
    out[positive] = np.log(mat[positive])
    return out


def viterbi(model: DiscreteHMM, observations: Sequence[int]) -> ViterbiResult:
    """Decode the most probable hidden-state path for ``observations``."""
    obs = model.validate_observations(observations)
    n_steps = obs.size
    n_states = model.n_states

    log_a = _safe_log(model.transition)
    log_b = _safe_log(model.emission)
    log_pi = _safe_log(model.initial)

    delta = np.zeros((n_steps, n_states))
    backpointer = np.zeros((n_steps, n_states), dtype=int)

    delta[0] = log_pi + log_b[:, obs[0]]
    for t in range(1, n_steps):
        # candidates[i, j] = delta[t-1, i] + log a_ij
        candidates = delta[t - 1][:, None] + log_a
        backpointer[t] = np.argmax(candidates, axis=0)
        delta[t] = candidates[backpointer[t], np.arange(n_states)] + log_b[:, obs[t]]

    path = np.zeros(n_steps, dtype=int)
    path[-1] = int(np.argmax(delta[-1]))
    for t in range(n_steps - 2, -1, -1):
        path[t] = backpointer[t + 1, path[t + 1]]

    return ViterbiResult(
        path=path, log_probability=float(delta[-1, path[-1]])
    )


def decode(model: DiscreteHMM, observations: Sequence[int]) -> np.ndarray:
    """Convenience wrapper returning just the most probable path."""
    return viterbi(model, observations).path
