"""Classic discrete-HMM substrate (Rabiner-style).

The paper's online estimators for ``M_CO``/``M_CE`` live in
:mod:`repro.core.online_hmm`; this package provides the conventional
batch machinery (forward/backward, Viterbi, Baum-Welch, sampling) that
backs the offline-HMM intrusion-detection baseline and the test suite.
"""

from .algorithms import (
    ForwardBackwardResult,
    backward,
    expected_transitions,
    forward,
    forward_backward,
    log_likelihood,
    per_symbol_log_likelihood,
    posterior_states,
)
from .baum_welch import TrainingResult, baum_welch, fit_random_restarts
from .model import DiscreteHMM
from .online_em import OnlineEMEstimator
from .sampling import (
    SampledSequence,
    empirical_emission,
    sample_markov_chain,
    sample_sequence,
)
from .utils import (
    StochasticityError,
    as_prob_vector,
    as_stochastic_matrix,
    is_row_stochastic,
    normalize_rows,
    normalize_vector,
    random_prob_vector,
    random_stochastic_matrix,
    stationary_distribution,
    uniform_stochastic_matrix,
)
from .viterbi import ViterbiResult, decode, viterbi

__all__ = [
    "DiscreteHMM",
    "ForwardBackwardResult",
    "OnlineEMEstimator",
    "SampledSequence",
    "StochasticityError",
    "TrainingResult",
    "ViterbiResult",
    "as_prob_vector",
    "as_stochastic_matrix",
    "backward",
    "baum_welch",
    "decode",
    "empirical_emission",
    "expected_transitions",
    "fit_random_restarts",
    "forward",
    "forward_backward",
    "is_row_stochastic",
    "log_likelihood",
    "normalize_rows",
    "normalize_vector",
    "per_symbol_log_likelihood",
    "posterior_states",
    "random_prob_vector",
    "random_stochastic_matrix",
    "sample_markov_chain",
    "sample_sequence",
    "stationary_distribution",
    "uniform_stochastic_matrix",
    "viterbi",
]
