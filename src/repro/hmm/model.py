"""Discrete Hidden Markov Model container.

This is the classic Rabiner-style HMM [8 in the paper]: ``M`` hidden
states, ``N`` discrete observation symbols, a row-stochastic transition
matrix ``A``, a row-stochastic emission matrix ``B``, and an initial state
distribution ``pi``.  The container is deliberately dumb: the inference
algorithms live in :mod:`repro.hmm.algorithms`, :mod:`repro.hmm.viterbi`,
and :mod:`repro.hmm.baum_welch`, and the paper's *online* estimator (used
for ``M_CO``/``M_CE``) lives in :mod:`repro.core.online_hmm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .utils import (
    as_prob_vector,
    as_stochastic_matrix,
    random_prob_vector,
    random_stochastic_matrix,
    uniform_stochastic_matrix,
)


@dataclass
class DiscreteHMM:
    """A discrete-observation hidden Markov model.

    Attributes
    ----------
    transition:
        ``(M, M)`` row-stochastic state-transition matrix ``A`` where
        ``A[i, j] = Pr{s_{t+1}=j | s_t=i}``.
    emission:
        ``(M, N)`` row-stochastic observation matrix ``B`` where
        ``B[i, k] = Pr{v_t=k | s_t=i}``.
    initial:
        ``(M,)`` initial state distribution ``pi``.
    state_names:
        Optional human-readable labels for the hidden states.
    symbol_names:
        Optional human-readable labels for the observation symbols.
    """

    transition: np.ndarray
    emission: np.ndarray
    initial: np.ndarray
    state_names: Optional[Sequence[str]] = field(default=None)
    symbol_names: Optional[Sequence[str]] = field(default=None)

    def __post_init__(self) -> None:
        self.transition = as_stochastic_matrix(self.transition, "transition")
        self.emission = as_stochastic_matrix(self.emission, "emission")
        self.initial = as_prob_vector(self.initial, "initial")
        m_a, m_a2 = self.transition.shape
        if m_a != m_a2:
            raise ValueError("transition matrix must be square")
        m_b = self.emission.shape[0]
        if m_a != m_b:
            raise ValueError(
                f"transition has {m_a} states but emission has {m_b}"
            )
        if self.initial.shape[0] != m_a:
            raise ValueError("initial distribution length mismatch")
        if self.state_names is not None and len(self.state_names) != m_a:
            raise ValueError("state_names length mismatch")
        if self.symbol_names is not None and len(self.symbol_names) != self.n_symbols:
            raise ValueError("symbol_names length mismatch")

    @property
    def n_states(self) -> int:
        """Number of hidden states ``M``."""
        return self.transition.shape[0]

    @property
    def n_symbols(self) -> int:
        """Number of observation symbols ``N``."""
        return self.emission.shape[1]

    def copy(self) -> "DiscreteHMM":
        """Return a deep copy of the model."""
        return DiscreteHMM(
            transition=self.transition.copy(),
            emission=self.emission.copy(),
            initial=self.initial.copy(),
            state_names=list(self.state_names) if self.state_names else None,
            symbol_names=list(self.symbol_names) if self.symbol_names else None,
        )

    def validate_observations(self, observations: Sequence[int]) -> np.ndarray:
        """Check a symbol sequence against the model's alphabet.

        Returns the sequence as an integer array.  Raises ``ValueError``
        for symbols outside ``[0, N)`` or an empty sequence.
        """
        obs = np.asarray(observations, dtype=int)
        if obs.ndim != 1 or obs.size == 0:
            raise ValueError("observations must be a non-empty 1-D sequence")
        if obs.min() < 0 or obs.max() >= self.n_symbols:
            raise ValueError(
                f"observation symbols must be in [0, {self.n_symbols})"
            )
        return obs

    @classmethod
    def uniform(cls, n_states: int, n_symbols: int) -> "DiscreteHMM":
        """Build the maximally uninformative model of the given size."""
        return cls(
            transition=uniform_stochastic_matrix(n_states, n_states),
            emission=uniform_stochastic_matrix(n_states, n_symbols),
            initial=np.full(n_states, 1.0 / n_states),
        )

    @classmethod
    def random(
        cls, n_states: int, n_symbols: int, rng: np.random.Generator
    ) -> "DiscreteHMM":
        """Draw a random model from flat Dirichlet priors (for tests/init)."""
        return cls(
            transition=random_stochastic_matrix(n_states, n_states, rng),
            emission=random_stochastic_matrix(n_states, n_symbols, rng),
            initial=random_prob_vector(n_states, rng),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiscreteHMM(n_states={self.n_states}, "
            f"n_symbols={self.n_symbols})"
        )
