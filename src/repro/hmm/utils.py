"""Stochastic-matrix and probability-vector helpers for the HMM substrate.

All HMM code in :mod:`repro.hmm` manipulates row-stochastic matrices
(every row sums to one) and probability vectors.  This module centralises
creation, validation, and normalisation of those objects so that numeric
tolerances are applied consistently across the package.
"""

from __future__ import annotations

import numpy as np

#: Absolute tolerance used when checking that probabilities sum to one.
PROB_ATOL = 1e-8

#: Floor applied when normalising to avoid division by zero.
_NORM_FLOOR = 1e-300


class StochasticityError(ValueError):
    """Raised when a matrix or vector fails a stochasticity check."""


def as_prob_vector(values, name: str = "vector") -> np.ndarray:
    """Validate and return ``values`` as a 1-D probability vector.

    Parameters
    ----------
    values:
        Array-like of non-negative floats summing to one.
    name:
        Human-readable name used in error messages.

    Raises
    ------
    StochasticityError
        If the vector has negative entries or does not sum to one.
    """
    vec = np.asarray(values, dtype=float)
    if vec.ndim != 1:
        raise StochasticityError(f"{name} must be 1-D, got shape {vec.shape}")
    if np.any(vec < -PROB_ATOL):
        raise StochasticityError(f"{name} has negative entries")
    total = vec.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise StochasticityError(f"{name} sums to {total!r}, expected 1.0")
    return np.clip(vec, 0.0, None)


def as_stochastic_matrix(values, name: str = "matrix") -> np.ndarray:
    """Validate and return ``values`` as a row-stochastic 2-D matrix.

    Raises
    ------
    StochasticityError
        If any entry is negative or any row does not sum to one.
    """
    mat = np.asarray(values, dtype=float)
    if mat.ndim != 2:
        raise StochasticityError(f"{name} must be 2-D, got shape {mat.shape}")
    if np.any(mat < -PROB_ATOL):
        raise StochasticityError(f"{name} has negative entries")
    row_sums = mat.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=1e-6):
        bad = int(np.argmax(np.abs(row_sums - 1.0)))
        raise StochasticityError(
            f"{name} row {bad} sums to {row_sums[bad]!r}, expected 1.0"
        )
    return np.clip(mat, 0.0, None)


def normalize_rows(mat: np.ndarray) -> np.ndarray:
    """Return a copy of ``mat`` with every row rescaled to sum to one.

    Rows that sum to (numerically) zero are replaced by the uniform
    distribution, which is the conventional neutral choice for
    re-estimation steps that received no evidence for a state.
    """
    mat = np.asarray(mat, dtype=float)
    out = mat.copy()
    sums = out.sum(axis=1)
    zero_rows = sums <= _NORM_FLOOR
    if np.any(zero_rows):
        out[zero_rows] = 1.0 / out.shape[1]
        sums = out.sum(axis=1)
    return out / sums[:, None]


def normalize_vector(vec: np.ndarray) -> np.ndarray:
    """Return ``vec`` rescaled to sum to one (uniform if all-zero)."""
    vec = np.asarray(vec, dtype=float)
    total = vec.sum()
    if total <= _NORM_FLOOR:
        return np.full(vec.shape, 1.0 / vec.size)
    return vec / total


def random_stochastic_matrix(
    n_rows: int, n_cols: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw a dense row-stochastic matrix from a flat Dirichlet prior."""
    if n_rows <= 0 or n_cols <= 0:
        raise ValueError("matrix dimensions must be positive")
    return rng.dirichlet(np.ones(n_cols), size=n_rows)


def random_prob_vector(n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw a probability vector from a flat Dirichlet prior."""
    if n <= 0:
        raise ValueError("vector length must be positive")
    return rng.dirichlet(np.ones(n))


def uniform_stochastic_matrix(n_rows: int, n_cols: int) -> np.ndarray:
    """Return the maximally uninformative row-stochastic matrix."""
    if n_rows <= 0 or n_cols <= 0:
        raise ValueError("matrix dimensions must be positive")
    return np.full((n_rows, n_cols), 1.0 / n_cols)


def is_row_stochastic(mat: np.ndarray, atol: float = 1e-6) -> bool:
    """Return True if ``mat`` is non-negative with unit row sums."""
    mat = np.asarray(mat, dtype=float)
    if mat.ndim != 2:
        return False
    if np.any(mat < -PROB_ATOL):
        return False
    return bool(np.allclose(mat.sum(axis=1), 1.0, atol=atol))


def stationary_distribution(transition: np.ndarray) -> np.ndarray:
    """Compute a stationary distribution of a row-stochastic matrix.

    Uses the left eigenvector of eigenvalue 1.  For reducible chains the
    returned distribution corresponds to one recurrent class; callers that
    need per-class behaviour should decompose the chain first.
    """
    mat = as_stochastic_matrix(transition, "transition")
    eigvals, eigvecs = np.linalg.eig(mat.T)
    idx = int(np.argmin(np.abs(eigvals - 1.0)))
    vec = np.real(eigvecs[:, idx])
    vec = np.abs(vec)
    return normalize_vector(vec)
