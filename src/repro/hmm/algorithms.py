"""Scaled forward/backward inference for :class:`~repro.hmm.model.DiscreteHMM`.

Implements the classic Rabiner recursions with per-step scaling so that
sequence likelihoods of arbitrary length can be computed in log space
without underflow.  These routines back both the Warrender-style offline
HMM baseline (:mod:`repro.baselines.offline_hmm`) and the Baum-Welch
re-estimator (:mod:`repro.hmm.baum_welch`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .model import DiscreteHMM

#: Scale factors below this are clamped to keep logs finite for
#: impossible observations (likelihood -> -inf is reported separately).
_SCALE_FLOOR = 1e-300


@dataclass(frozen=True)
class ForwardBackwardResult:
    """Container for the scaled forward-backward quantities.

    Attributes
    ----------
    log_likelihood:
        ``log Pr{O | model}`` of the full observation sequence.
    alpha:
        ``(T, M)`` scaled forward variables; row ``t`` is the filtering
        distribution ``Pr{s_t | o_1..o_t}``.
    beta:
        ``(T, M)`` scaled backward variables.
    gamma:
        ``(T, M)`` posterior state marginals ``Pr{s_t | O}``.
    scales:
        ``(T,)`` per-step scaling factors ``c_t``.
    """

    log_likelihood: float
    alpha: np.ndarray
    beta: np.ndarray
    gamma: np.ndarray
    scales: np.ndarray


def forward(model: DiscreteHMM, observations: Sequence[int]) -> np.ndarray:
    """Run the scaled forward pass; return the ``(T, M)`` alpha matrix."""
    return forward_backward(model, observations).alpha


def backward(model: DiscreteHMM, observations: Sequence[int]) -> np.ndarray:
    """Run the scaled backward pass; return the ``(T, M)`` beta matrix."""
    return forward_backward(model, observations).beta


def log_likelihood(model: DiscreteHMM, observations: Sequence[int]) -> float:
    """Return ``log Pr{O | model}`` for a symbol sequence.

    Returns ``-inf`` if the sequence is impossible under the model.
    """
    obs = model.validate_observations(observations)
    loglik = 0.0
    alpha = model.initial * model.emission[:, obs[0]]
    total = alpha.sum()
    if total <= 0.0:
        return float("-inf")
    loglik += float(np.log(total))
    alpha = alpha / total
    for symbol in obs[1:]:
        alpha = (alpha @ model.transition) * model.emission[:, symbol]
        total = alpha.sum()
        if total <= 0.0:
            return float("-inf")
        loglik += float(np.log(total))
        alpha = alpha / total
    return loglik


def forward_backward(
    model: DiscreteHMM, observations: Sequence[int]
) -> ForwardBackwardResult:
    """Run the full scaled forward-backward algorithm.

    The returned gamma rows each sum to one; the alpha/beta matrices use
    Rabiner's scaling convention, so ``alpha[t]`` is already normalised.
    """
    obs = model.validate_observations(observations)
    n_steps = obs.size
    n_states = model.n_states

    alpha = np.zeros((n_steps, n_states))
    beta = np.zeros((n_steps, n_states))
    scales = np.zeros(n_steps)

    alpha[0] = model.initial * model.emission[:, obs[0]]
    scales[0] = max(alpha[0].sum(), _SCALE_FLOOR)
    alpha[0] /= scales[0]
    for t in range(1, n_steps):
        alpha[t] = (alpha[t - 1] @ model.transition) * model.emission[:, obs[t]]
        scales[t] = max(alpha[t].sum(), _SCALE_FLOOR)
        alpha[t] /= scales[t]

    beta[-1] = 1.0
    for t in range(n_steps - 2, -1, -1):
        beta[t] = model.transition @ (model.emission[:, obs[t + 1]] * beta[t + 1])
        beta[t] /= scales[t + 1]

    gamma = alpha * beta
    gamma_sums = gamma.sum(axis=1, keepdims=True)
    gamma_sums[gamma_sums <= 0.0] = 1.0
    gamma = gamma / gamma_sums

    if np.any(scales <= _SCALE_FLOOR):
        loglik = float("-inf")
    else:
        loglik = float(np.log(scales).sum())
    return ForwardBackwardResult(
        log_likelihood=loglik, alpha=alpha, beta=beta, gamma=gamma, scales=scales
    )


def posterior_states(
    model: DiscreteHMM, observations: Sequence[int]
) -> np.ndarray:
    """Return the ``(T, M)`` posterior state marginals ``Pr{s_t | O}``."""
    return forward_backward(model, observations).gamma


def expected_transitions(
    model: DiscreteHMM, observations: Sequence[int]
) -> np.ndarray:
    """Return the ``(M, M)`` expected transition-count matrix under ``O``.

    This is the summed xi statistic used by Baum-Welch:
    ``sum_t Pr{s_t=i, s_{t+1}=j | O}``.
    """
    obs = model.validate_observations(observations)
    result = forward_backward(model, obs)
    counts = np.zeros((model.n_states, model.n_states))
    for t in range(obs.size - 1):
        # xi_t[i, j] proportional to alpha_t(i) a_ij b_j(o_{t+1}) beta_{t+1}(j)
        xi = (
            result.alpha[t][:, None]
            * model.transition
            * model.emission[:, obs[t + 1]][None, :]
            * result.beta[t + 1][None, :]
        )
        total = xi.sum()
        if total > 0.0:
            counts += xi / total
    return counts


def per_symbol_log_likelihood(
    model: DiscreteHMM, observations: Sequence[int]
) -> float:
    """Length-normalised log-likelihood, the usual anomaly-score form.

    Host-based HMM intrusion detectors (Warrender et al. [5]) threshold
    this quantity so that scores are comparable across trace lengths.
    """
    obs = model.validate_observations(observations)
    return log_likelihood(model, obs) / float(obs.size)
