"""Online EM estimation of a discrete HMM from observations alone.

The paper's own online estimator (:mod:`repro.core.online_hmm`) relies
on the Correct State Identification module to *expose* the hidden state
each window — that is the trick that makes its updates trivial.  Its
footnote 3 points at advanced online HMM estimation (Stiller & Radons,
IEEE SPL 1999 — reference [10]) for the general case where the hidden
state is never observed.  This module implements that general case as a
recursive EM with exponentially forgotten sufficient statistics:

per observation ``y_t``

1. **E-step (filtering)** — compute the joint posterior
   ``xi[i, j] ∝ phi[i] · A[i, j] · B[j, y_t]`` and the new filter
   ``phi'[j] = Σ_i xi[i, j]``;
2. **M-step (stochastic approximation)** — blend the posterior into the
   transition and emission sufficient statistics with step size η and
   re-normalise.

It backs the comparison the paper implies: the redundancy-aware
estimator needs no such machinery, converges per-window, and keeps the
physical interpretation of its states, while the general estimator must
grind through filtering updates and offers no state identifiability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .model import DiscreteHMM
from .utils import normalize_rows, normalize_vector


@dataclass
class OnlineEMEstimator:
    """Recursive EM for a discrete HMM over a fixed alphabet.

    Parameters
    ----------
    n_states / n_symbols:
        Fixed model dimensions (the general problem has no mechanism to
        discover states, unlike the paper's clustering front end).
    step_size:
        Forgetting rate η of the sufficient statistics, in (0, 1).
    seed:
        Seed for the random initial model (EM needs symmetry breaking).
    """

    n_states: int
    n_symbols: int
    step_size: float = 0.05
    seed: int = 0
    _transition: np.ndarray = field(init=False, repr=False)
    _emission: np.ndarray = field(init=False, repr=False)
    _filter: np.ndarray = field(init=False, repr=False)
    _n_updates: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        if self.n_states <= 0 or self.n_symbols <= 0:
            raise ValueError("n_states and n_symbols must be positive")
        if not 0.0 < self.step_size < 1.0:
            raise ValueError("step_size must be in (0, 1)")
        rng = np.random.default_rng(self.seed)
        # Break symmetry with a perturbed-uniform initialisation.
        self._transition = normalize_rows(
            np.full((self.n_states, self.n_states), 1.0)
            + rng.random((self.n_states, self.n_states)) * 0.5
        )
        self._emission = normalize_rows(
            np.full((self.n_states, self.n_symbols), 1.0)
            + rng.random((self.n_states, self.n_symbols)) * 0.5
        )
        self._filter = np.full(self.n_states, 1.0 / self.n_states)

    @property
    def n_updates(self) -> int:
        """Observations consumed so far."""
        return self._n_updates

    @property
    def filter_distribution(self) -> np.ndarray:
        """Current filtered posterior ``Pr{s_t | y_1..y_t}``."""
        return self._filter.copy()

    def observe(self, symbol: int) -> None:
        """Consume one observation symbol (E-step + M-step)."""
        if not 0 <= symbol < self.n_symbols:
            raise ValueError(f"symbol must be in [0, {self.n_symbols})")

        # E-step: joint posterior of (s_{t-1}, s_t) given y_{1..t}.
        joint = (
            self._filter[:, None]
            * self._transition
            * self._emission[:, symbol][None, :]
        )
        total = joint.sum()
        if total <= 0.0:
            # The model momentarily assigns zero mass to this symbol;
            # fall back to the emission-weighted prior to stay defined.
            joint = np.outer(
                self._filter, self._emission[:, symbol] + 1e-12
            )
            total = joint.sum()
        joint /= total
        new_filter = normalize_vector(joint.sum(axis=0))

        # M-step: stochastic-approximation update of the statistics.
        eta = self.step_size
        transition_target = normalize_rows(joint + 1e-12)
        # Only rows with posterior mass should move appreciably; scale
        # each row's step by how likely we were in that state.
        row_weight = self._filter[:, None]
        self._transition = normalize_rows(
            (1.0 - eta * row_weight) * self._transition
            + eta * row_weight * transition_target
        )

        emission_target = np.zeros_like(self._emission)
        emission_target[:, symbol] = 1.0
        state_weight = new_filter[:, None]
        self._emission = normalize_rows(
            (1.0 - eta * state_weight) * self._emission
            + eta * state_weight * emission_target
        )

        self._filter = new_filter
        self._n_updates += 1

    def observe_sequence(self, symbols: Sequence[int]) -> None:
        """Consume a whole symbol sequence."""
        for symbol in symbols:
            self.observe(int(symbol))

    def current_model(self) -> DiscreteHMM:
        """Snapshot of the running estimate as a :class:`DiscreteHMM`."""
        return DiscreteHMM(
            transition=self._transition.copy(),
            emission=self._emission.copy(),
            initial=self._filter.copy(),
        )
