"""Sensor-network simulation substrate.

Provides everything the paper's evaluation substrate provided in
hardware: a ground-truth environment Θ(t), noisy multimodal motes, lossy
radio links, and a collector node that builds the Eq.-1 observation
windows consumed by the detection pipeline.
"""

from .collector import (
    CollectorNode,
    DeliveryStats,
    ObservationWindow,
    windows_from_messages,
)
from .environment import (
    MINUTES_PER_DAY,
    ConstantEnvironment,
    EnvironmentModel,
    GDIDiurnalEnvironment,
    PiecewiseRegimeEnvironment,
)
from .messages import DeliveryRecord, MalformedMessage, SensorMessage
from .network import GilbertElliottLoss, RadioLink, StarNetwork
from .sensor import BatteryModel, Mote
from .simulator import NetworkSimulator, SimulationReport
from .topology import Deployment, MotePlacement

__all__ = [
    "BatteryModel",
    "CollectorNode",
    "ConstantEnvironment",
    "DeliveryRecord",
    "DeliveryStats",
    "Deployment",
    "EnvironmentModel",
    "GDIDiurnalEnvironment",
    "GilbertElliottLoss",
    "MINUTES_PER_DAY",
    "MalformedMessage",
    "Mote",
    "MotePlacement",
    "NetworkSimulator",
    "ObservationWindow",
    "PiecewiseRegimeEnvironment",
    "RadioLink",
    "SensorMessage",
    "SimulationReport",
    "StarNetwork",
    "windows_from_messages",
]
