"""Deployment topology: mote placement and distance-derived link quality.

The GDI deployment scattered motes across an island, with link quality
falling off with distance to the base station.  The pipeline itself is
topology-agnostic (it sees only the message stream), but the simulator
uses placement to derive heterogeneous per-link loss rates, which makes
the delivery statistics realistic rather than uniform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .network import RadioLink, StarNetwork


@dataclass(frozen=True)
class MotePlacement:
    """Position of one mote relative to the base station at the origin."""

    sensor_id: int
    x: float
    y: float

    @property
    def distance(self) -> float:
        """Euclidean distance to the base station."""
        return math.hypot(self.x, self.y)


@dataclass
class Deployment:
    """A set of mote placements plus a radio propagation model.

    Parameters
    ----------
    placements:
        Where each mote sits (base station at the origin).
    reference_distance:
        Distance at which packet loss reaches ``reference_loss``.
    reference_loss:
        Loss probability at the reference distance; loss grows
        quadratically with distance and is clipped to ``max_loss``.
    corruption_probability:
        Distance-independent chance of a malformed arrival.
    """

    placements: List[MotePlacement]
    reference_distance: float = 100.0
    reference_loss: float = 0.15
    max_loss: float = 0.6
    corruption_probability: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.placements:
            raise ValueError("placements must be non-empty")
        ids = [p.sensor_id for p in self.placements]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate sensor ids in deployment")
        if self.reference_distance <= 0:
            raise ValueError("reference_distance must be positive")
        if not 0.0 <= self.reference_loss <= self.max_loss <= 1.0:
            raise ValueError("need 0 <= reference_loss <= max_loss <= 1")

    @classmethod
    def random_field(
        cls,
        n_motes: int,
        field_size: float = 200.0,
        seed: int = 0,
        **kwargs,
    ) -> "Deployment":
        """Scatter ``n_motes`` uniformly over a square field."""
        if n_motes <= 0:
            raise ValueError("n_motes must be positive")
        rng = np.random.default_rng(seed)
        placements = [
            MotePlacement(
                sensor_id=i,
                x=float(rng.uniform(-field_size / 2, field_size / 2)),
                y=float(rng.uniform(-field_size / 2, field_size / 2)),
            )
            for i in range(n_motes)
        ]
        return cls(placements=placements, seed=seed, **kwargs)

    def loss_probability_at(self, distance: float) -> float:
        """Quadratic path-loss model, clipped to ``max_loss``."""
        scaled = (distance / self.reference_distance) ** 2
        return float(min(self.reference_loss * scaled, self.max_loss))

    def build_network(self) -> StarNetwork:
        """Materialise the per-mote radio links implied by the layout."""
        links: Dict[int, RadioLink] = {}
        for placement in self.placements:
            links[placement.sensor_id] = RadioLink(
                loss_probability=self.loss_probability_at(placement.distance),
                corruption_probability=self.corruption_probability,
                seed=self.seed * 100_003 + placement.sensor_id,
            )
        return StarNetwork(links=links)

    @property
    def sensor_ids(self) -> List[int]:
        """Ids of all deployed motes, in placement order."""
        return [p.sensor_id for p in self.placements]

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """(min_x, min_y, max_x, max_y) of the deployment."""
        xs = [p.x for p in self.placements]
        ys = [p.y for p in self.placements]
        return (min(xs), min(ys), max(xs), max(ys))
