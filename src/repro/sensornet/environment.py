"""Environment models Θ(t) for the sensed phenomenon.

The paper models the monitored region as an unknown multidimensional
parameter ``Θ(t)`` that changes slowly relative to the observation window
(§3.1).  Three concrete models are provided:

* :class:`GDIDiurnalEnvironment` — calibrated to the Great Duck Island
  July-2003 traces used in the paper's evaluation: temperature swings
  roughly 11-32 °C over the day, relative humidity moves anti-correlated
  between roughly 55 and 96 %, and slow weather fronts modulate both.
  Under the paper's pipeline this environment yields ~4 dominant model
  states close to the Fig. 7 states (12,94), (17,84), (24,70), (31,56).
* :class:`PiecewiseRegimeEnvironment` — holds a sequence of explicit
  regimes; ideal for tests that need an exactly known state sequence.
* :class:`ConstantEnvironment` — a degenerate, fixed Θ; used to isolate
  noise effects.

All models are deterministic given their seed so experiments reproduce
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

#: Minutes in one day, the fundamental period of the diurnal models.
MINUTES_PER_DAY = 24 * 60


class EnvironmentModel:
    """Interface: the true (hidden) environment attribute vector at time t."""

    #: Names of the attributes returned by :meth:`value_at`.
    attribute_names: Tuple[str, ...] = ()

    def value_at(self, minutes: float) -> np.ndarray:
        """Return Θ(t) for ``minutes`` since the deployment start."""
        raise NotImplementedError

    def values_at(self, minutes: np.ndarray) -> np.ndarray:
        """Vectorised Θ(t): one ``(len(minutes), n_attributes)`` matrix.

        The base implementation loops :meth:`value_at`.  Concrete models
        override this with a batched kernel and route their *scalar*
        path through it, so the columnar trace generator and the
        per-message simulator can never diverge numerically.
        """
        minutes = np.asarray(minutes, dtype=float)
        if minutes.size == 0:
            return np.zeros((0, self.n_attributes))
        return np.vstack([self.value_at(float(m)) for m in minutes])

    @property
    def n_attributes(self) -> int:
        """Dimensionality of Θ(t)."""
        return len(self.attribute_names)


@dataclass
class ConstantEnvironment(EnvironmentModel):
    """A fixed environment; Θ(t) never changes."""

    attributes: Tuple[float, ...] = (20.0, 75.0)
    attribute_names: Tuple[str, ...] = ("temperature", "humidity")

    def value_at(self, minutes: float) -> np.ndarray:
        return np.asarray(self.attributes, dtype=float)

    def values_at(self, minutes: np.ndarray) -> np.ndarray:
        minutes = np.asarray(minutes, dtype=float)
        return np.tile(np.asarray(self.attributes, dtype=float), (minutes.size, 1))


@dataclass
class PiecewiseRegimeEnvironment(EnvironmentModel):
    """An environment that steps through explicit regimes.

    Parameters
    ----------
    regimes:
        List of attribute tuples, visited in order.
    dwell_minutes:
        Time spent in each regime before moving to the next.
    cycle:
        If True, wrap around to the first regime after the last one;
        otherwise hold the last regime forever.
    """

    regimes: Sequence[Tuple[float, ...]] = field(
        default_factory=lambda: [(12.0, 94.0), (17.0, 84.0), (24.0, 70.0), (31.0, 56.0)]
    )
    dwell_minutes: float = 6 * 60.0
    cycle: bool = True
    attribute_names: Tuple[str, ...] = ("temperature", "humidity")

    def __post_init__(self) -> None:
        if not self.regimes:
            raise ValueError("regimes must be non-empty")
        if self.dwell_minutes <= 0:
            raise ValueError("dwell_minutes must be positive")
        widths = {len(r) for r in self.regimes}
        if len(widths) != 1:
            raise ValueError("all regimes must have the same dimensionality")

    def regime_index_at(self, minutes: float) -> int:
        """Index of the regime active at ``minutes``."""
        step = int(minutes // self.dwell_minutes)
        if self.cycle:
            return step % len(self.regimes)
        return min(step, len(self.regimes) - 1)

    def value_at(self, minutes: float) -> np.ndarray:
        return np.asarray(self.regimes[self.regime_index_at(minutes)], dtype=float)

    def values_at(self, minutes: np.ndarray) -> np.ndarray:
        minutes = np.asarray(minutes, dtype=float)
        steps = (minutes // self.dwell_minutes).astype(int)
        if self.cycle:
            indices = steps % len(self.regimes)
        else:
            indices = np.minimum(steps, len(self.regimes) - 1)
        table = np.asarray(self.regimes, dtype=float)
        return table[indices]


@dataclass
class GDIDiurnalEnvironment(EnvironmentModel):
    """Synthetic Great Duck Island summer environment (see DESIGN.md §2).

    Temperature follows a sinusoidal diurnal cycle with its minimum just
    before dawn, modulated by a slowly varying weather-front offset drawn
    once per day from a seeded RNG.  Relative humidity is anti-correlated
    with temperature (warm afternoons are dry, cold nights saturate),
    clipped to the physical [0, 100] range.

    Parameters
    ----------
    temp_min / temp_max:
        Bounds of the clean diurnal temperature swing in °C.
    humidity_at_temp_min / humidity_at_temp_max:
        Humidity endpoints of the anti-correlation line.
    front_scale:
        Standard deviation of the per-day weather-front temperature
        offset in °C (fronts shift whole days warmer or colder).
    seed:
        Seed for the daily front sequence.
    """

    temp_min: float = 11.0
    temp_max: float = 32.0
    humidity_at_temp_min: float = 96.0
    humidity_at_temp_max: float = 55.0
    front_scale: float = 1.5
    n_days: int = 31
    seed: int = 2003
    attribute_names: Tuple[str, ...] = ("temperature", "humidity")
    _fronts: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.temp_max <= self.temp_min:
            raise ValueError("temp_max must exceed temp_min")
        if self.n_days <= 0:
            raise ValueError("n_days must be positive")
        rng = np.random.default_rng(self.seed)
        # One smooth offset per day; an AR(1) makes consecutive days
        # meteorologically plausible rather than independent.
        fronts: List[float] = []
        current = 0.0
        for _ in range(self.n_days + 1):
            current = 0.7 * current + rng.normal(0.0, self.front_scale)
            fronts.append(current)
        self._fronts = np.asarray(fronts)

    def front_offsets(self, minutes: np.ndarray) -> np.ndarray:
        """Linearly interpolated weather-front offsets, vectorised.

        This is the single implementation; the scalar
        :meth:`_front_offset` routes through it so the per-message and
        columnar paths share every floating-point operation.
        """
        minutes = np.asarray(minutes, dtype=float)
        day = minutes / MINUTES_PER_DAY
        low = np.clip(np.floor(day).astype(int), 0, len(self._fronts) - 2)
        frac = np.clip(day - low, 0.0, 1.0)
        return (1 - frac) * self._fronts[low] + frac * self._fronts[low + 1]

    def _front_offset(self, minutes: float) -> float:
        """Linearly interpolated weather-front offset for ``minutes``."""
        return float(self.front_offsets(np.asarray([minutes]))[0])

    def temperatures_at(self, minutes: np.ndarray) -> np.ndarray:
        """Clean diurnal temperatures plus weather-front offsets, vectorised."""
        minutes = np.asarray(minutes, dtype=float)
        mid = 0.5 * (self.temp_min + self.temp_max)
        amplitude = 0.5 * (self.temp_max - self.temp_min)
        # Minimum near 05:00, maximum near 17:00 (coastal phase lag).
        phase = 2.0 * np.pi * (minutes - 5 * 60.0) / MINUTES_PER_DAY
        clean = mid - amplitude * np.cos(phase)
        return clean + self.front_offsets(minutes)

    def temperature_at(self, minutes: float) -> float:
        """Clean diurnal temperature plus the weather-front offset."""
        return float(self.temperatures_at(np.asarray([minutes]))[0])

    def humidities_for_temperatures(self, temperatures: np.ndarray) -> np.ndarray:
        """Humidity predicted by the anti-correlation line, vectorised."""
        temperatures = np.asarray(temperatures, dtype=float)
        span = self.temp_max - self.temp_min
        slope = (self.humidity_at_temp_max - self.humidity_at_temp_min) / span
        humidity = self.humidity_at_temp_min + slope * (temperatures - self.temp_min)
        return np.clip(humidity, 0.0, 100.0)

    def humidity_for_temperature(self, temperature: float) -> float:
        """Humidity predicted by the anti-correlation line, clipped."""
        return float(self.humidities_for_temperatures(np.asarray([temperature]))[0])

    def value_at(self, minutes: float) -> np.ndarray:
        temperature = self.temperature_at(minutes)
        humidity = self.humidity_for_temperature(temperature)
        return np.asarray([temperature, humidity], dtype=float)

    def values_at(self, minutes: np.ndarray) -> np.ndarray:
        minutes = np.asarray(minutes, dtype=float)
        temperatures = self.temperatures_at(minutes)
        humidities = self.humidities_for_temperatures(temperatures)
        return np.stack([temperatures, humidities], axis=1)
