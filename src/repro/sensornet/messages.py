"""Message types exchanged between motes and the collector node.

The paper assumes each sensor periodically sends ``<t, p>`` to a single
collector, where ``p = <x_1..x_n>`` is the vector of environment
attributes sampled at time ``t`` (§3.1).  Real deployments also deliver
*malformed* packets (the GDI data set famously does), which the paper's
preprocessing must drop; we model those explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class SensorMessage:
    """A well-formed sensor report ``<t, p>`` from one mote.

    Attributes
    ----------
    sensor_id:
        Identifier of the reporting mote.
    timestamp:
        Sampling time in minutes since the start of the deployment.
    attributes:
        Tuple of sampled environment attributes (e.g. temperature °C,
        relative humidity %).  Stored as a tuple so messages are hashable
        and immutable.
    sequence_number:
        Per-mote monotonically increasing counter, used to detect losses.
    """

    sensor_id: int
    timestamp: float
    attributes: Tuple[float, ...]
    sequence_number: int = 0

    def __post_init__(self) -> None:
        if self.sensor_id < 0:
            raise ValueError("sensor_id must be non-negative")
        if not self.attributes:
            raise ValueError("attributes must be non-empty")

    @property
    def vector(self) -> np.ndarray:
        """The attribute vector ``p`` as a float array."""
        return np.asarray(self.attributes, dtype=float)

    @property
    def n_attributes(self) -> int:
        """Dimensionality of the attribute vector."""
        return len(self.attributes)

    def with_attributes(self, attributes) -> "SensorMessage":
        """Return a copy carrying a different attribute vector.

        Fault and attack injectors use this to corrupt a report while
        preserving its routing metadata.
        """
        return SensorMessage(
            sensor_id=self.sensor_id,
            timestamp=self.timestamp,
            attributes=tuple(float(x) for x in attributes),
            sequence_number=self.sequence_number,
        )

    def shifted(self, minutes: float) -> "SensorMessage":
        """Return a copy with the timestamp shifted by ``minutes``.

        The chaos harness uses this to model a mote with a skewed clock:
        the report's *content* is honest but its claimed sampling time is
        wrong, which lands it in the wrong observation window (or in the
        collector's late-message quarantine for skews into the past).
        """
        return SensorMessage(
            sensor_id=self.sensor_id,
            timestamp=self.timestamp + minutes,
            attributes=self.attributes,
            sequence_number=self.sequence_number,
        )


@dataclass(frozen=True)
class MalformedMessage:
    """A packet that arrived but cannot be parsed into a valid report.

    The collector counts and discards these; they model the corrupted
    packets present in the GDI traces ("missing and malformed sensor
    packets", §4).
    """

    sensor_id: int
    timestamp: float
    reason: str = "corrupted payload"


@dataclass
class DeliveryRecord:
    """Bookkeeping for one transmission attempt over the radio.

    Attributes
    ----------
    message:
        The delivered message, or ``None`` when the packet was lost.
    malformed:
        The malformed stand-in, when the packet arrived corrupted.
    lost:
        True when the packet never reached the collector.
    arrival_minutes:
        When the packet reaches the collector, for links with delay
        impairments; ``None`` means immediate delivery.  Distinct
        arrival times across packets are what produce reordering.
    duplicate:
        True when this record is a radio-level retransmission copy of a
        packet that was already counted once.
    """

    message: Optional[SensorMessage] = None
    malformed: Optional[MalformedMessage] = None
    lost: bool = False
    link_quality: float = field(default=1.0)
    arrival_minutes: Optional[float] = None
    duplicate: bool = False

    @property
    def delivered_ok(self) -> bool:
        """True when a parseable message reached the collector."""
        return self.message is not None
