"""Collector node: receives reports and groups them into time windows.

Implements the paper's Eq. 1 windowing: observations are partitioned into
sets ``O_i = { p | <t, p> in O  and  w*(i-1) <= t <= w*i }`` where ``w``
is the window duration.  The collector also keeps delivery statistics
(lost / malformed / accepted), which the experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from .messages import DeliveryRecord, SensorMessage


@dataclass(frozen=True)
class ObservationWindow:
    """One windowed observation set ``O_i``.

    Attributes
    ----------
    index:
        The window index ``i`` (1-based to match the paper's Eq. 1).
    start_minutes / end_minutes:
        Half-open time span covered, ``[w*(i-1), w*i)``.
    messages:
        The well-formed messages that arrived in the span.
    """

    index: int
    start_minutes: float
    end_minutes: float
    messages: tuple

    @property
    def observations(self) -> np.ndarray:
        """``(N, n_attributes)`` matrix of the attribute vectors."""
        if not self.messages:
            return np.zeros((0, 0))
        return np.vstack([m.vector for m in self.messages])

    @property
    def sensor_ids(self) -> List[int]:
        """Sensor id of each row of :attr:`observations`."""
        return [m.sensor_id for m in self.messages]

    @property
    def is_empty(self) -> bool:
        """True when no parseable report arrived in the window."""
        return not self.messages

    def overall_mean(self) -> np.ndarray:
        """Mean over *all* raw readings in the window (Eq. 2's input).

        Note this weights sensors by how many packets they delivered —
        exactly what the paper's Eq. 2 does by averaging observations
        rather than sensors.  Degraded motes that drop packets therefore
        pull the observable mean less, which is why the paper's B^CO
        stays near-orthogonal under single-sensor faults (§4.1).
        """
        if not self.messages:
            raise ValueError("window is empty")
        return self.observations.mean(axis=0)

    def per_sensor_mean(self) -> Dict[int, np.ndarray]:
        """Average the (possibly multiple) reports of each sensor.

        The paper's per-window procedure treats each sensor as one
        observation source; with a 1-hour window and 5-minute sampling a
        sensor contributes up to 12 raw readings, which we reduce to
        their mean (Θ is assumed approximately constant within w).
        """
        sums: Dict[int, np.ndarray] = {}
        counts: Dict[int, int] = {}
        for message in self.messages:
            vec = message.vector
            if message.sensor_id in sums:
                sums[message.sensor_id] = sums[message.sensor_id] + vec
                counts[message.sensor_id] += 1
            else:
                sums[message.sensor_id] = vec.copy()
                counts[message.sensor_id] = 1
        return {
            sensor_id: sums[sensor_id] / counts[sensor_id] for sensor_id in sums
        }


@dataclass
class DeliveryStats:
    """Running counts of what the collector received."""

    accepted: int = 0
    malformed: int = 0
    lost: int = 0

    @property
    def attempted(self) -> int:
        """Total transmissions the motes attempted."""
        return self.accepted + self.malformed + self.lost

    @property
    def acceptance_rate(self) -> float:
        """Fraction of attempted packets that were usable."""
        if self.attempted == 0:
            return 0.0
        return self.accepted / self.attempted


@dataclass
class CollectorNode:
    """Buffers incoming reports and emits completed observation windows.

    Parameters
    ----------
    window_minutes:
        Window duration ``w`` in minutes (the paper uses 12 samples at a
        5-minute period = 60 minutes).
    """

    window_minutes: float = 60.0
    stats: DeliveryStats = field(default_factory=DeliveryStats)
    _buffer: List[SensorMessage] = field(default_factory=list, repr=False)
    _next_window_index: int = field(default=1, repr=False)

    def __post_init__(self) -> None:
        if self.window_minutes <= 0:
            raise ValueError("window_minutes must be positive")

    def receive(self, record: DeliveryRecord) -> None:
        """Account for one delivery attempt."""
        if record.lost:
            self.stats.lost += 1
            return
        if record.malformed is not None:
            self.stats.malformed += 1
            return
        assert record.message is not None
        self.stats.accepted += 1
        self._buffer.append(record.message)

    def receive_message(self, message: SensorMessage) -> None:
        """Accept a message directly (bypassing the radio model)."""
        self.receive(DeliveryRecord(message=message))

    def _window_bounds(self, index: int) -> "tuple[float, float]":
        return (self.window_minutes * (index - 1), self.window_minutes * index)

    def pop_completed_windows(self, now_minutes: float) -> List[ObservationWindow]:
        """Emit every window that has fully elapsed as of ``now_minutes``.

        Windows are emitted in order, including empty ones (the pipeline
        must see gaps to keep window indices aligned with time).
        """
        completed: List[ObservationWindow] = []
        while True:
            start, end = self._window_bounds(self._next_window_index)
            if end > now_minutes:
                break
            in_window = [m for m in self._buffer if start <= m.timestamp < end]
            self._buffer = [m for m in self._buffer if m.timestamp >= end]
            completed.append(
                ObservationWindow(
                    index=self._next_window_index,
                    start_minutes=start,
                    end_minutes=end,
                    messages=tuple(in_window),
                )
            )
            self._next_window_index += 1
        return completed

    def flush(self) -> Optional[ObservationWindow]:
        """Emit whatever remains in the buffer as a final partial window."""
        if not self._buffer:
            return None
        start, end = self._window_bounds(self._next_window_index)
        window = ObservationWindow(
            index=self._next_window_index,
            start_minutes=start,
            end_minutes=end,
            messages=tuple(self._buffer),
        )
        self._buffer = []
        self._next_window_index += 1
        return window


def windows_from_messages(
    messages: Iterable[SensorMessage], window_minutes: float
) -> List[ObservationWindow]:
    """Partition a complete message list into Eq. 1 windows (batch mode).

    Convenience for trace-driven experiments that already hold the whole
    month of data in memory.
    """
    collector = CollectorNode(window_minutes=window_minutes)
    last_time = 0.0
    for message in messages:
        collector.receive_message(message)
        last_time = max(last_time, message.timestamp)
    windows = collector.pop_completed_windows(last_time + window_minutes)
    return windows
