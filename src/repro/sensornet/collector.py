"""Collector node: receives reports and groups them into time windows.

Implements the paper's Eq. 1 windowing: observations are partitioned into
sets ``O_i = { p | <t, p> in O  and  w*(i-1) <= t <= w*i }`` where ``w``
is the window duration.  The collector also keeps delivery statistics
(lost / malformed / accepted), which the experiments report.

The ingest path is *hardened* against degraded infrastructure: packets
that arrive duplicated (radio retransmissions), late (delayed past their
window's emission or clock-skewed into the past), or carrying non-finite
attribute values are quarantined — counted per category in
:class:`DeliveryStats` and kept out of the observation windows — so the
detection pipeline never sees them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from .messages import DeliveryRecord, SensorMessage


@dataclass(frozen=True)
class ObservationWindow:
    """One windowed observation set ``O_i``.

    Attributes
    ----------
    index:
        The window index ``i`` (1-based to match the paper's Eq. 1).
    start_minutes / end_minutes:
        Half-open time span covered, ``[w*(i-1), w*i)``.
    messages:
        The well-formed messages that arrived in the span.
    """

    index: int
    start_minutes: float
    end_minutes: float
    messages: tuple
    #: Attribute dimensionality, used to shape the observation matrix of
    #: *empty* windows consistently as ``(0, n_attributes)``.  Callers
    #: that cannot know the width (hand-built empty fixtures) may leave
    #: the default; non-empty windows infer the width from the messages.
    n_attributes: int = 0

    @cached_property
    def observations(self) -> np.ndarray:
        """``(N, n_attributes)`` matrix of the attribute vectors.

        Empty windows yield shape ``(0, n_attributes)`` — not ``(0, 0)``
        — so downstream column-wise code (means, vstack with neighbour
        windows) works uniformly across gaps.

        Cached on first access (the window is immutable): the pipeline's
        per-window pass reads the matrix several times and must not pay
        a fresh ``vstack`` each time.  Treat the result as read-only.
        """
        if not self.messages:
            return np.zeros((0, self.n_attributes))
        return np.vstack([m.vector for m in self.messages])

    @property
    def sensor_ids(self) -> List[int]:
        """Sensor id of each row of :attr:`observations`."""
        return [m.sensor_id for m in self.messages]

    @property
    def is_empty(self) -> bool:
        """True when no parseable report arrived in the window."""
        return not self.messages

    def overall_mean(self) -> np.ndarray:
        """Mean over *all* raw readings in the window (Eq. 2's input).

        Note this weights sensors by how many packets they delivered —
        exactly what the paper's Eq. 2 does by averaging observations
        rather than sensors.  Degraded motes that drop packets therefore
        pull the observable mean less, which is why the paper's B^CO
        stays near-orthogonal under single-sensor faults (§4.1).
        """
        if not self.messages:
            raise ValueError("window is empty")
        return self.observations.mean(axis=0)

    def per_sensor_mean(self) -> Dict[int, np.ndarray]:
        """Average the (possibly multiple) reports of each sensor.

        The paper's per-window procedure treats each sensor as one
        observation source; with a 1-hour window and 5-minute sampling a
        sensor contributes up to 12 raw readings, which we reduce to
        their mean (Θ is assumed approximately constant within w).
        """
        sums: Dict[int, np.ndarray] = {}
        counts: Dict[int, int] = {}
        for message in self.messages:
            vec = message.vector
            if message.sensor_id in sums:
                sums[message.sensor_id] = sums[message.sensor_id] + vec
                counts[message.sensor_id] += 1
            else:
                sums[message.sensor_id] = vec.copy()
                counts[message.sensor_id] = 1
        return {
            sensor_id: sums[sensor_id] / counts[sensor_id] for sensor_id in sums
        }


@dataclass(frozen=True, eq=False)
class ArrayWindow:
    """An :class:`ObservationWindow` backed by columnar array *views*.

    Produced by the batched windowers (:func:`windows_from_arrays`, the
    columnar trace path): ``observations`` is a read-only slice of the
    trace's contiguous value array — no per-reading message objects, no
    ``vstack`` copy.  Duck-type compatible with the subset of the
    :class:`ObservationWindow` API the detection pipeline consumes
    (``index``, ``observations``, ``per_sensor_mean``, ``overall_mean``,
    ``sensor_ids``, ``is_empty``), and numerically bit-identical to it:
    ``per_sensor_mean`` accumulates with ``np.bincount``, whose
    sequential index-order adds reproduce the message loop exactly.
    """

    index: int
    start_minutes: float
    end_minutes: float
    #: ``(N, n_attributes)`` read-only view into the trace storage.
    observations: np.ndarray
    #: ``(N,)`` sensor id of each row (read-only view).
    sensor_id_array: np.ndarray
    n_attributes: int = 0

    @property
    def sensor_ids(self) -> List[int]:
        """Sensor id of each row of :attr:`observations`."""
        return [int(s) for s in self.sensor_id_array]

    @property
    def is_empty(self) -> bool:
        """True when no parseable report arrived in the window."""
        return self.observations.shape[0] == 0

    def overall_mean(self) -> np.ndarray:
        """Mean over all raw readings (see ObservationWindow.overall_mean)."""
        if self.is_empty:
            raise ValueError("window is empty")
        return self.observations.mean(axis=0)

    def per_sensor_mean(self) -> Dict[int, np.ndarray]:
        """Per-sensor reading means, keyed in first-occurrence order.

        Dict order matters: the pipeline's alarm/filter bookkeeping
        follows it, so the columnar path must reproduce the object
        path's insertion order (first appearance of each sensor in the
        window) — not sorted order.
        """
        obs = self.observations
        ids = self.sensor_id_array
        if obs.shape[0] == 0:
            return {}
        unique_sorted, first_idx, codes = np.unique(
            ids, return_index=True, return_inverse=True
        )
        n_unique = len(unique_sorted)
        counts = np.bincount(codes, minlength=n_unique)
        sums = np.empty((n_unique, obs.shape[1]))
        for column in range(obs.shape[1]):
            sums[:, column] = np.bincount(
                codes, weights=obs[:, column], minlength=n_unique
            )
        means = sums / counts[:, None]
        order = np.argsort(first_idx, kind="stable")
        return {int(unique_sorted[i]): means[i] for i in order}


@dataclass
class DeliveryStats:
    """Running counts of what the collector received.

    ``accepted``/``malformed``/``lost`` reproduce the paper's delivery
    bookkeeping; the remaining categories count *quarantined* packets —
    ones that arrived parseable but were rejected by the hardened ingest
    path (duplicates, late/out-of-order arrivals, non-finite readings).
    """

    accepted: int = 0
    malformed: int = 0
    lost: int = 0
    duplicate: int = 0
    late: int = 0
    non_finite: int = 0

    @property
    def quarantined(self) -> int:
        """Parseable packets rejected by the hardened ingest path."""
        return self.duplicate + self.late + self.non_finite

    @property
    def attempted(self) -> int:
        """Total transmissions the motes attempted."""
        return self.accepted + self.malformed + self.lost + self.quarantined

    @property
    def acceptance_rate(self) -> float:
        """Fraction of attempted packets that were usable."""
        if self.attempted == 0:
            return 0.0
        return self.accepted / self.attempted

    def as_dict(self) -> Dict[str, int]:
        """Per-category counts, for reports and chaos-campaign summaries."""
        return {
            "accepted": self.accepted,
            "malformed": self.malformed,
            "lost": self.lost,
            "duplicate": self.duplicate,
            "late": self.late,
            "non_finite": self.non_finite,
        }


@dataclass
class CollectorNode:
    """Buffers incoming reports and emits completed observation windows.

    Parameters
    ----------
    window_minutes:
        Window duration ``w`` in minutes (the paper uses 12 samples at a
        5-minute period = 60 minutes).
    """

    window_minutes: float = 60.0
    stats: DeliveryStats = field(default_factory=DeliveryStats)
    #: When False, the duplicate/late/non-finite quarantine is bypassed
    #: (pure paper-faithful Eq. 1 behaviour).
    harden_ingest: bool = True
    _buffer: List[SensorMessage] = field(default_factory=list, repr=False)
    _next_window_index: int = field(default=1, repr=False)
    _seen_keys: Dict[int, Set[Tuple[float, int]]] = field(
        default_factory=dict, repr=False
    )
    _n_attributes: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.window_minutes <= 0:
            raise ValueError("window_minutes must be positive")

    def _quarantine_reason(self, message: SensorMessage) -> Optional[str]:
        """Why ``message`` must not enter a window (None = accept)."""
        if not all(math.isfinite(x) for x in message.attributes):
            return "non_finite"
        if message.timestamp < self.window_minutes * (self._next_window_index - 1):
            # Its window was already emitted (delayed delivery or a
            # clock skewed into the past); admitting it would silently
            # corrupt nothing — it would be dropped later — but counting
            # it here makes the degradation observable.
            return "late"
        key = (message.timestamp, message.sequence_number)
        if key in self._seen_keys.get(message.sensor_id, ()):
            return "duplicate"
        return None

    def receive(self, record: DeliveryRecord) -> None:
        """Account for one delivery attempt."""
        if record.lost:
            self.stats.lost += 1
            return
        if record.malformed is not None:
            self.stats.malformed += 1
            return
        assert record.message is not None
        message = record.message
        if self.harden_ingest:
            reason = self._quarantine_reason(message)
            if reason is not None:
                setattr(self.stats, reason, getattr(self.stats, reason) + 1)
                return
            self._seen_keys.setdefault(message.sensor_id, set()).add(
                (message.timestamp, message.sequence_number)
            )
        self.stats.accepted += 1
        self._n_attributes = message.n_attributes
        self._buffer.append(message)

    def receive_message(self, message: SensorMessage) -> None:
        """Accept a message directly (bypassing the radio model)."""
        self.receive(DeliveryRecord(message=message))

    def _window_bounds(self, index: int) -> "tuple[float, float]":
        return (self.window_minutes * (index - 1), self.window_minutes * index)

    def pop_completed_windows(self, now_minutes: float) -> List[ObservationWindow]:
        """Emit every window that has fully elapsed as of ``now_minutes``.

        Windows are emitted in order, including empty ones (the pipeline
        must see gaps to keep window indices aligned with time).
        """
        completed: List[ObservationWindow] = []
        while True:
            start, end = self._window_bounds(self._next_window_index)
            if end > now_minutes:
                break
            in_window = [m for m in self._buffer if start <= m.timestamp < end]
            self._buffer = [m for m in self._buffer if m.timestamp >= end]
            completed.append(
                ObservationWindow(
                    index=self._next_window_index,
                    start_minutes=start,
                    end_minutes=end,
                    messages=tuple(in_window),
                    n_attributes=self._n_attributes,
                )
            )
            self._next_window_index += 1
        if completed:
            # Keys older than the emission horizon can never be accepted
            # again (the late guard fires first), so the dedup memory
            # stays bounded by one window of traffic per sensor.
            horizon = self.window_minutes * (self._next_window_index - 1)
            for sensor_id, keys in self._seen_keys.items():
                self._seen_keys[sensor_id] = {
                    key for key in keys if key[0] >= horizon
                }
        return completed

    def flush(self) -> Optional[ObservationWindow]:
        """Emit whatever remains in the buffer as a final partial window."""
        if not self._buffer:
            return None
        start, end = self._window_bounds(self._next_window_index)
        window = ObservationWindow(
            index=self._next_window_index,
            start_minutes=start,
            end_minutes=end,
            messages=tuple(self._buffer),
            n_attributes=self._n_attributes,
        )
        self._buffer = []
        self._next_window_index += 1
        return window

    def drop_buffer(self) -> int:
        """Discard all buffered (not yet windowed) messages; returns count.

        Models a collector crash: reports that arrived after the last
        emitted window die with the process.  Window indexing is
        preserved so a restarted collector keeps emitting aligned
        windows.
        """
        dropped = len(self._buffer)
        self._buffer = []
        return dropped


def windows_from_messages(
    messages: Iterable[SensorMessage], window_minutes: float
) -> List[ObservationWindow]:
    """Partition a complete message list into Eq. 1 windows (batch mode).

    Convenience for trace-driven experiments that already hold the whole
    month of data in memory.
    """
    collector = CollectorNode(window_minutes=window_minutes)
    last_time = 0.0
    for message in messages:
        collector.receive_message(message)
        last_time = max(last_time, message.timestamp)
    windows = collector.pop_completed_windows(last_time + window_minutes)
    return windows


#: Canonical (0, 0) observation matrix for windows whose width the
#: collector never learned (no report accepted yet).
_EMPTY_OBSERVATIONS = np.zeros((0, 0))
_EMPTY_OBSERVATIONS.flags.writeable = False


def windows_from_arrays(
    timestamps: np.ndarray,
    sensor_ids: np.ndarray,
    values: np.ndarray,
    window_minutes: float,
) -> List[ArrayWindow]:
    """Columnar :func:`windows_from_messages`: flat arrays in, views out.

    Inputs are parallel per-report arrays sorted by ``(timestamp,
    sensor_id)`` — the canonical trace order.  Each emitted
    :class:`ArrayWindow` holds *views* into one contiguous value block
    (no per-window copies); the block is frozen read-only, so the views
    are safe to share across windows and pipeline stages.

    Replays the batch collector's semantics exactly: non-finite rows
    are quarantined, rows before t=0 are late (the batch path receives
    everything before the single pop, so the late horizon is 0), and
    duplicate quarantine never fires (``Trace.to_messages`` assigns
    unique per-sensor sequence numbers).  The window count comes from
    the collector's own float comparisons, and every window shares the
    trace-wide attribute width — bit-identical matrices, means, and
    bounds, pinned by the parity suite.
    """
    if window_minutes <= 0:
        raise ValueError("window_minutes must be positive")
    timestamps = np.asarray(timestamps, dtype=float)
    sensor_ids = np.asarray(sensor_ids)
    values = np.asarray(values, dtype=float)
    if values.ndim != 2 or not (
        len(timestamps) == len(values) == len(sensor_ids)
    ):
        raise ValueError("need parallel (K,), (K,), (K, d) arrays")
    # The batch collector tracks last_time over *every* message, even
    # quarantined ones — take it before filtering.
    last_time = max(0.0, float(timestamps.max())) if len(timestamps) else 0.0
    keep = np.isfinite(values).all(axis=1) & (timestamps >= 0.0)
    if not keep.all():
        timestamps = timestamps[keep]
        sensor_ids = sensor_ids[keep]
        values = values[keep]
    values = np.ascontiguousarray(values)
    values.flags.writeable = False
    sensor_ids = np.ascontiguousarray(sensor_ids)
    sensor_ids.flags.writeable = False

    n_rows = len(timestamps)
    n_attributes = values.shape[1] if n_rows else 0
    now = last_time + window_minutes
    n_windows = 0
    while window_minutes * (n_windows + 1) <= now:
        n_windows += 1
    boundaries = [window_minutes * i for i in range(n_windows + 1)]
    edges = np.searchsorted(timestamps, np.asarray(boundaries), side="left")

    windows: List[ArrayWindow] = []
    for i in range(1, n_windows + 1):
        lo, hi = int(edges[i - 1]), int(edges[i])
        observations = (
            values[lo:hi] if (hi > lo or n_attributes) else _EMPTY_OBSERVATIONS
        )
        windows.append(
            ArrayWindow(
                index=i,
                start_minutes=float(boundaries[i - 1]),
                end_minutes=float(boundaries[i]),
                observations=observations,
                sensor_id_array=sensor_ids[lo:hi],
                n_attributes=n_attributes,
            )
        )
    return windows
