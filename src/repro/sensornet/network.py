"""Lossy radio links between motes and the collector.

The GDI traces exhibit substantial packet loss and occasional corrupted
packets; the paper's windowing explicitly copes with both ("about a
hundred sensor readings in average, as not all sensor data can be used
due to missed or corrupted packets", §4.1).  This module models a
single-hop star network — the topology the GDI outside motes used to
reach their base station — with per-link loss and corruption processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from .messages import DeliveryRecord, MalformedMessage, SensorMessage


@dataclass
class RadioLink:
    """One mote-to-collector radio link.

    Parameters
    ----------
    loss_probability:
        Chance that a transmitted packet never arrives.
    corruption_probability:
        Chance that an *arriving* packet is malformed and must be
        discarded by the collector's parser.
    seed:
        Per-link RNG seed.
    """

    loss_probability: float = 0.15
    corruption_probability: float = 0.01
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        for name in ("loss_probability", "corruption_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self._rng = np.random.default_rng(self.seed)

    @property
    def quality(self) -> float:
        """Expected end-to-end delivery rate of parseable packets."""
        return (1.0 - self.loss_probability) * (1.0 - self.corruption_probability)

    def transmit(self, message: SensorMessage) -> DeliveryRecord:
        """Attempt delivery of ``message``; returns what the collector saw."""
        if self._rng.random() < self.loss_probability:
            return DeliveryRecord(lost=True, link_quality=self.quality)
        if self._rng.random() < self.corruption_probability:
            malformed = MalformedMessage(
                sensor_id=message.sensor_id,
                timestamp=message.timestamp,
                reason="CRC failure",
            )
            return DeliveryRecord(malformed=malformed, link_quality=self.quality)
        return DeliveryRecord(message=message, link_quality=self.quality)


@dataclass
class StarNetwork:
    """A star of independent :class:`RadioLink` objects keyed by mote id."""

    links: Dict[int, RadioLink] = field(default_factory=dict)

    @classmethod
    def homogeneous(
        cls,
        sensor_ids,
        loss_probability: float = 0.15,
        corruption_probability: float = 0.01,
        seed: int = 0,
    ) -> "StarNetwork":
        """Build a star whose links share loss/corruption parameters.

        Each link still gets an independent RNG stream derived from the
        base seed and the mote id, so loss patterns are uncorrelated
        across motes (as observed in the field).
        """
        links = {
            sensor_id: RadioLink(
                loss_probability=loss_probability,
                corruption_probability=corruption_probability,
                seed=int(seed) * 100_003 + int(sensor_id),
            )
            for sensor_id in sensor_ids
        }
        return cls(links=links)

    def transmit(self, message: SensorMessage) -> DeliveryRecord:
        """Route ``message`` over its mote's link.

        Unknown motes get a perfect ad-hoc link, which keeps small test
        fixtures terse; production topologies should register every mote.
        """
        link = self.links.get(message.sensor_id)
        if link is None:
            return DeliveryRecord(message=message, link_quality=1.0)
        return link.transmit(message)
