"""Lossy radio links between motes and the collector.

The GDI traces exhibit substantial packet loss and occasional corrupted
packets; the paper's windowing explicitly copes with both ("about a
hundred sensor readings in average, as not all sensor data can be used
due to missed or corrupted packets", §4.1).  This module models a
single-hop star network — the topology the GDI outside motes used to
reach their base station — with per-link loss and corruption processes.

Beyond the i.i.d. loss the paper assumes, real links degrade in
*bursts* and deliver packets late, twice, or out of order.  Links can
therefore carry optional impairments: a :class:`GilbertElliottLoss`
two-state burst process, uniform random delay (whose per-packet
variation produces reordering at the collector), and probabilistic
duplication.  :meth:`RadioLink.transmit_all` exposes these; the plain
:meth:`RadioLink.transmit` path is byte-for-byte unchanged when no
impairment is configured, so calibrated experiments are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .messages import DeliveryRecord, MalformedMessage, SensorMessage


@dataclass
class GilbertElliottLoss:
    """Two-state (good/bad) Markov loss process — bursty packet loss.

    The classic Gilbert–Elliott channel: the link flips between a good
    state with low loss and a bad state with high loss; dwell times are
    geometric, producing the loss *bursts* observed on real sensor-net
    radios (and studied for windowed detectors, e.g. arXiv:1710.02573).

    Parameters
    ----------
    p_good_to_bad / p_bad_to_good:
        Per-packet transition probabilities between the two states.
    loss_good / loss_bad:
        Loss probability while in each state.
    start_bad:
        Initial channel state.
    """

    p_good_to_bad: float = 0.02
    p_bad_to_good: float = 0.25
    loss_good: float = 0.05
    loss_bad: float = 0.80
    start_bad: bool = False
    _bad: bool = field(init=False, repr=False)

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self._bad = self.start_bad

    @property
    def in_bad_state(self) -> bool:
        """True while the channel is in its bursty-loss state."""
        return self._bad

    @property
    def expected_loss(self) -> float:
        """Stationary loss rate of the chain (for quality estimates)."""
        denominator = self.p_good_to_bad + self.p_bad_to_good
        if denominator == 0.0:
            return self.loss_bad if self._bad else self.loss_good
        bad_fraction = self.p_good_to_bad / denominator
        return bad_fraction * self.loss_bad + (1.0 - bad_fraction) * self.loss_good

    def next_loss_probability(self, rng: np.random.Generator) -> float:
        """Advance the chain one packet and return the current loss rate."""
        flip = rng.random()
        if self._bad:
            if flip < self.p_bad_to_good:
                self._bad = False
        elif flip < self.p_good_to_bad:
            self._bad = True
        return self.loss_bad if self._bad else self.loss_good


@dataclass
class RadioLink:
    """One mote-to-collector radio link.

    Parameters
    ----------
    loss_probability:
        Chance that a transmitted packet never arrives (ignored when a
        ``burst`` process is attached — the burst chain then governs
        loss).
    corruption_probability:
        Chance that an *arriving* packet is malformed and must be
        discarded by the collector's parser.
    burst:
        Optional Gilbert–Elliott burst-loss process replacing the
        i.i.d. loss model.
    delay_probability / max_delay_minutes:
        Chance that a delivered packet is delayed, and the uniform upper
        bound of that delay.  Independent per-packet delays reorder the
        stream at the collector.
    duplicate_probability:
        Chance that a delivered packet is also delivered a second time
        (link-layer retransmission with a lost ACK).
    seed:
        Per-link RNG seed.
    """

    loss_probability: float = 0.15
    corruption_probability: float = 0.01
    burst: Optional[GilbertElliottLoss] = None
    delay_probability: float = 0.0
    max_delay_minutes: float = 0.0
    duplicate_probability: float = 0.0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        for name in (
            "loss_probability",
            "corruption_probability",
            "delay_probability",
            "duplicate_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.max_delay_minutes < 0:
            raise ValueError("max_delay_minutes must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    @property
    def quality(self) -> float:
        """Expected end-to-end delivery rate of parseable packets."""
        loss = (
            self.loss_probability if self.burst is None else self.burst.expected_loss
        )
        return (1.0 - loss) * (1.0 - self.corruption_probability)

    def transmit(self, message: SensorMessage) -> DeliveryRecord:
        """Attempt delivery of ``message``; returns what the collector saw."""
        if self.burst is None:
            loss_probability = self.loss_probability
        else:
            loss_probability = self.burst.next_loss_probability(self._rng)
        if self._rng.random() < loss_probability:
            return DeliveryRecord(lost=True, link_quality=self.quality)
        if self._rng.random() < self.corruption_probability:
            malformed = MalformedMessage(
                sensor_id=message.sensor_id,
                timestamp=message.timestamp,
                reason="CRC failure",
            )
            return DeliveryRecord(malformed=malformed, link_quality=self.quality)
        return DeliveryRecord(message=message, link_quality=self.quality)

    def _maybe_delay(self, record: DeliveryRecord, now_minutes: float) -> None:
        if (
            record.message is not None
            and self.delay_probability > 0.0
            and self._rng.random() < self.delay_probability
        ):
            record.arrival_minutes = now_minutes + self._rng.uniform(
                0.0, self.max_delay_minutes
            )

    def transmit_all(
        self, message: SensorMessage, now_minutes: Optional[float] = None
    ) -> List[DeliveryRecord]:
        """Attempt delivery including delay/duplication impairments.

        Returns one record per copy that the channel produced (one, or
        two when the packet was duplicated).  Delayed copies carry
        ``arrival_minutes``; the simulator holds them in flight until
        then.  With no impairments configured this draws exactly the
        same RNG stream as :meth:`transmit`, so enabling the richer API
        does not perturb calibrated loss patterns.
        """
        now = message.timestamp if now_minutes is None else now_minutes
        records = [self.transmit(message)]
        if (
            self.duplicate_probability > 0.0
            and records[0].message is not None
            and self._rng.random() < self.duplicate_probability
        ):
            records.append(
                DeliveryRecord(
                    message=message, link_quality=self.quality, duplicate=True
                )
            )
        for record in records:
            self._maybe_delay(record, now)
        return records


@dataclass
class StarNetwork:
    """A star of independent :class:`RadioLink` objects keyed by mote id."""

    links: Dict[int, RadioLink] = field(default_factory=dict)

    @classmethod
    def homogeneous(
        cls,
        sensor_ids,
        loss_probability: float = 0.15,
        corruption_probability: float = 0.01,
        seed: int = 0,
    ) -> "StarNetwork":
        """Build a star whose links share loss/corruption parameters.

        Each link still gets an independent RNG stream derived from the
        base seed and the mote id, so loss patterns are uncorrelated
        across motes (as observed in the field).
        """
        links = {
            sensor_id: RadioLink(
                loss_probability=loss_probability,
                corruption_probability=corruption_probability,
                seed=int(seed) * 100_003 + int(sensor_id),
            )
            for sensor_id in sensor_ids
        }
        return cls(links=links)

    @classmethod
    def impaired(
        cls,
        sensor_ids,
        loss_probability: float = 0.15,
        corruption_probability: float = 0.01,
        burst: Optional[GilbertElliottLoss] = None,
        delay_probability: float = 0.0,
        max_delay_minutes: float = 0.0,
        duplicate_probability: float = 0.0,
        seed: int = 0,
    ) -> "StarNetwork":
        """Build a star whose links share a full impairment profile.

        Like :meth:`homogeneous` but with burst loss, delay/reordering,
        and duplication; each link still gets an independent RNG stream
        and its own copy of the burst chain (bursts are per-link events,
        uncorrelated across motes).
        """
        links = {}
        for sensor_id in sensor_ids:
            link_burst = (
                None
                if burst is None
                else GilbertElliottLoss(
                    p_good_to_bad=burst.p_good_to_bad,
                    p_bad_to_good=burst.p_bad_to_good,
                    loss_good=burst.loss_good,
                    loss_bad=burst.loss_bad,
                    start_bad=burst.start_bad,
                )
            )
            links[sensor_id] = RadioLink(
                loss_probability=loss_probability,
                corruption_probability=corruption_probability,
                burst=link_burst,
                delay_probability=delay_probability,
                max_delay_minutes=max_delay_minutes,
                duplicate_probability=duplicate_probability,
                seed=int(seed) * 100_003 + int(sensor_id),
            )
        return cls(links=links)

    def transmit(self, message: SensorMessage) -> DeliveryRecord:
        """Route ``message`` over its mote's link.

        Unknown motes get a perfect ad-hoc link, which keeps small test
        fixtures terse; production topologies should register every mote.
        """
        link = self.links.get(message.sensor_id)
        if link is None:
            return DeliveryRecord(message=message, link_quality=1.0)
        return link.transmit(message)

    def transmit_all(
        self, message: SensorMessage, now_minutes: Optional[float] = None
    ) -> List[DeliveryRecord]:
        """Route ``message`` with delay/duplication impairments applied."""
        link = self.links.get(message.sensor_id)
        if link is None:
            return [DeliveryRecord(message=message, link_quality=1.0)]
        return link.transmit_all(message, now_minutes=now_minutes)
