"""Time-stepped network simulator tying environment, motes, radio, and
collector together.

The simulator advances in fixed sampling periods (5 minutes for the GDI
configuration).  At each tick every live mote samples the environment,
an optional corruption stage (fault/attack injector from
:mod:`repro.faults`) may rewrite the report, the radio link decides the
packet's fate, and the collector buffers survivors.  Completed Eq.-1
windows are handed to a sink callback — normally the detection pipeline.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from .collector import CollectorNode, ObservationWindow
from .environment import EnvironmentModel
from .messages import DeliveryRecord, SensorMessage
from .network import StarNetwork
from .sensor import Mote

#: A corruption stage takes (message, true_environment_value) and returns
#: the possibly rewritten message, or None to suppress it entirely.
CorruptionStage = Callable[[SensorMessage], Optional[SensorMessage]]


@dataclass
class SimulationReport:
    """What a simulation run produced."""

    windows: List[ObservationWindow] = field(default_factory=list)
    n_ticks: int = 0
    end_minutes: float = 0.0
    #: Delayed packets still in flight when the run ended (never
    #: delivered — the simulated deployment shut down first).
    n_in_flight_at_end: int = 0


@dataclass
class NetworkSimulator:
    """Drives a mote population against an environment model.

    Parameters
    ----------
    environment:
        Shared ground truth Θ(t).
    motes:
        The sensor population.
    network:
        Radio star; defaults to perfect links when ``None``.
    collector:
        Window-building collector node.
    sample_period_minutes:
        Sampling period (5 minutes in the GDI deployment).
    corruption:
        Optional fault/attack stage applied to each report before the
        radio; see :mod:`repro.faults.injector`.
    """

    environment: EnvironmentModel
    motes: Sequence[Mote]
    collector: CollectorNode
    network: Optional[StarNetwork] = None
    sample_period_minutes: float = 5.0
    corruption: Optional[CorruptionStage] = None
    #: Min-heap of ``(arrival_minutes, tiebreak, record)`` for packets a
    #: delayed link has not yet delivered.
    _in_flight: List[Tuple[float, int, DeliveryRecord]] = field(
        default_factory=list, repr=False
    )
    _in_flight_counter: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.sample_period_minutes <= 0:
            raise ValueError("sample_period_minutes must be positive")
        if not self.motes:
            raise ValueError("need at least one mote")

    def _deliver(self, message: SensorMessage, now_minutes: float) -> None:
        if self.network is None:
            self.collector.receive_message(message)
            return
        for record in self.network.transmit_all(message, now_minutes=now_minutes):
            if record.arrival_minutes is None or record.arrival_minutes <= now_minutes:
                self.collector.receive(record)
            else:
                heapq.heappush(
                    self._in_flight,
                    (record.arrival_minutes, self._in_flight_counter, record),
                )
                self._in_flight_counter += 1

    def _deliver_due(self, now_minutes: float) -> None:
        """Hand over every in-flight packet whose arrival time has come."""
        while self._in_flight and self._in_flight[0][0] <= now_minutes:
            _, _, record = heapq.heappop(self._in_flight)
            self.collector.receive(record)

    @property
    def n_in_flight(self) -> int:
        """Delayed packets currently between link and collector."""
        return len(self._in_flight)

    def tick(self, minutes: float) -> None:
        """Run one sampling round at simulation time ``minutes``."""
        self._deliver_due(minutes)
        for mote in self.motes:
            message = mote.sample(minutes)
            if message is None:
                continue
            if self.corruption is not None:
                message = self.corruption(message)
                if message is None:
                    continue
            self._deliver(message, minutes)

    def run(
        self,
        duration_minutes: float,
        on_window: Optional[Callable[[ObservationWindow], None]] = None,
    ) -> SimulationReport:
        """Simulate ``duration_minutes`` of deployment time.

        Parameters
        ----------
        duration_minutes:
            Total simulated time.
        on_window:
            Callback invoked with each completed observation window in
            order; typically ``DetectionPipeline.process_window``.

        Returns
        -------
        SimulationReport
            All completed windows plus run statistics.
        """
        if duration_minutes <= 0:
            raise ValueError("duration_minutes must be positive")
        report = SimulationReport()
        minutes = 0.0
        while minutes < duration_minutes:
            self.tick(minutes)
            report.n_ticks += 1
            minutes += self.sample_period_minutes
            for window in self.collector.pop_completed_windows(minutes):
                report.windows.append(window)
                if on_window is not None:
                    on_window(window)
        report.end_minutes = minutes
        report.n_in_flight_at_end = len(self._in_flight)
        return report
