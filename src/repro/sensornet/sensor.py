"""Mote (sensor node) model.

A correct mote samples the environment as ``p_j = Θ(t) + N_j`` where
``N_j`` is zero-mean measurement noise (§3.1).  The mote also models the
mundane realities the GDI deployment reported: battery decay that
eventually silences the node, and a per-mote chance of skipping a sample
(duty-cycling / local failures) independent of radio loss.

Faults and attacks are *not* implemented here — they are transformations
applied to the emitted messages by :mod:`repro.faults`, mirroring the
paper's view that corruption happens to the data stream of a compromised
or degraded node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .environment import EnvironmentModel
from .messages import SensorMessage


@dataclass
class BatteryModel:
    """Linear battery drain with a shutdown threshold.

    Attributes
    ----------
    initial_charge:
        Starting charge in arbitrary units (1.0 = full).
    drain_per_sample:
        Charge consumed by one sample-and-transmit cycle.
    shutdown_threshold:
        Below this charge the mote stops reporting entirely.
    """

    initial_charge: float = 1.0
    drain_per_sample: float = 0.0
    shutdown_threshold: float = 0.05
    _charge: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.initial_charge <= 0:
            raise ValueError("initial_charge must be positive")
        if self.drain_per_sample < 0:
            raise ValueError("drain_per_sample must be non-negative")
        self._charge = self.initial_charge

    @property
    def charge(self) -> float:
        """Remaining charge."""
        return self._charge

    @property
    def alive(self) -> bool:
        """True while the mote can still sample and transmit."""
        return self._charge > self.shutdown_threshold

    def consume(self) -> None:
        """Account for one sample-and-transmit cycle."""
        self._charge = max(0.0, self._charge - self.drain_per_sample)


@dataclass
class Mote:
    """One sensor node.

    Parameters
    ----------
    sensor_id:
        Network-unique identifier.
    environment:
        The shared ground-truth environment model.
    noise_std:
        Per-attribute standard deviation of the zero-mean measurement
        noise ``N_j``.  A scalar is broadcast across attributes.
    skip_probability:
        Chance that a scheduled sample is silently skipped (models local
        duty-cycling failures, distinct from radio loss).
    battery:
        Optional battery model; ``None`` means ideal power.
    seed:
        Per-mote RNG seed (mote streams must be independent).
    """

    sensor_id: int
    environment: EnvironmentModel
    noise_std: float = 0.35
    skip_probability: float = 0.0
    battery: Optional[BatteryModel] = None
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _sequence: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if not 0.0 <= self.skip_probability < 1.0:
            raise ValueError("skip_probability must be in [0, 1)")
        self._rng = np.random.default_rng((self.seed, self.sensor_id))

    @property
    def alive(self) -> bool:
        """True while the mote is powered."""
        return self.battery is None or self.battery.alive

    def sample(self, minutes: float) -> Optional[SensorMessage]:
        """Take one reading at time ``minutes``; None if skipped or dead.

        The reading is the true environment value plus i.i.d. Gaussian
        noise per attribute, matching the paper's ``p_j = Θ(t) + N_j``.
        """
        if not self.alive:
            return None
        if self.skip_probability > 0.0 and self._rng.random() < self.skip_probability:
            return None
        truth = self.environment.value_at(minutes)
        noise = self._rng.normal(0.0, self.noise_std, size=truth.shape)
        reading = truth + noise
        if self.battery is not None:
            self.battery.consume()
        message = SensorMessage(
            sensor_id=self.sensor_id,
            timestamp=minutes,
            attributes=tuple(float(x) for x in reading),
            sequence_number=self._sequence,
        )
        self._sequence += 1
        return message
