"""Multi-tenant fleet engine: N independent pipelines, one SoA hot loop.

:class:`FleetEngine` packs many independent :class:`DetectionPipeline`
instances ("tenants") into shared struct-of-arrays blocks and advances
the whole fleet with a near-constant number of NumPy kernel calls per
window step, while keeping every tenant's evolution bit-identical to
running it alone through ``process_windows_fast`` (see DESIGN.md §13).
"""

from .engine import FleetEngine

__all__ = ["FleetEngine"]
