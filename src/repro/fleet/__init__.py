"""Multi-tenant fleet engine: N independent pipelines, one SoA hot loop.

:class:`FleetEngine` packs many independent :class:`DetectionPipeline`
instances ("tenants") into shared struct-of-arrays blocks and advances
the whole fleet with a near-constant number of NumPy kernel calls per
window step, while keeping every tenant's evolution bit-identical to
running it alone through ``process_windows_fast`` (see DESIGN.md §13).

:class:`ResilientFleetEngine` wraps that hot loop in a fault-isolation
layer: per-tenant health states (healthy → degraded → quarantined),
exception containment with bisection attribution, and bounded
auto-recovery from per-tenant checkpoints (see DESIGN.md §14).
"""

from .engine import FleetEngine
from .isolation import (
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    FleetIsolationError,
    ResilientFleetEngine,
    TenantFailure,
    TenantHealth,
)

__all__ = [
    "FleetEngine",
    "ResilientFleetEngine",
    "FleetIsolationError",
    "TenantFailure",
    "TenantHealth",
    "HEALTHY",
    "DEGRADED",
    "QUARANTINED",
]
