"""FleetEngine: advance N independent pipelines through shared kernels.

A collector service multiplexing many deployments runs one
:class:`~repro.core.pipeline.DetectionPipeline` per tenant.  Advancing
them one at a time repays the per-window Python overhead N times; this
engine packs the per-tenant state into shared struct-of-arrays blocks
and advances the whole fleet with a near-constant number of NumPy
kernels per window step:

* one :func:`~repro.core.pipeline._batched_window_means` prepass per
  attribute dimensionality covering every tenant's whole trace,
* one batched steady-stretch certificate evaluation per dimensionality
  cohort (persistent ``(K, d)`` centroid and ``(K, M, d)`` other-state
  blocks maintained incrementally as stretches open and close),
* one batched ``(G, N_max, M_max)`` distance kernel per dimensionality
  group for the tenants taking the full clustering path this window,
* one stacked :class:`~repro.core.filtering.VectorFilterBank` update
  per (filter kind, parameters) group, with per-tenant slot regions
  addressed as ``tenant_index << 32 | sensor_id``.

Quiet certified windows additionally defer their per-tenant
bookkeeping (HMM forgetting updates, sequence appends, result tuples)
into per-stretch run-length batches that replay exactly at the next
transition, stretch exit, or unpack — the same operations in the same
order, just executed in one cache-hot burst.

Bit-identity contract: every batched operation is an elementwise
replica of the float arithmetic the per-tenant fast path performs, and
every window a batched lane cannot certify or represent (spawns, mean
spawns, bootstrap, non-finite means, message-backed windows, d == 1
traces, supervised or vector-incompatible tenants) is routed through
the tenant's own exact code path before anything was mutated.  Each
tenant therefore finishes :meth:`FleetEngine.process_windows` with
state bit-identical to running ``process_windows_fast`` on its own —
the ``repro parity --fleet`` CI job pins this per tenant across filter
kinds, supervisor modes, dimensionalities, and sensor counts.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.clustering import ClusterUpdate
from ..core.filtering import FilterTransition, VectorFilterBank
from ..core.identification import identify_window
from ..core.pipeline import (
    DetectionPipeline,
    _batched_window_means,
    _SteadyStretch,
)

#: Tenant slot regions in the stacked filter banks: global slot id =
#: ``tenant_index << 32 | sensor_id``.  Sensor ids must fit 32 bits.
_STRIDE_BITS = 32
_SID_MASK = (1 << _STRIDE_BITS) - 1

#: Padding value for batched state matrices: squared distances to a
#: padded row overflow to inf (the callers hold ``over="ignore"``), so
#: padded columns never win an argmin or shrink a min.
_PAD_VECTOR = 1e300


class _Tenant:
    """One packed deployment: its pipeline plus per-run routing state."""

    __slots__ = (
        "tid",
        "pipeline",
        "mode",
        "windows",
        "stats",
        "bank",
        "scalar_bank",
        "group",
        "steady",
        "cohort",
        "slot",
        "defer",
        "gid_base",
        "_gid_cache",
    )

    def __init__(self, tid: int, pipeline: DetectionPipeline, windows):
        self.tid = tid
        self.pipeline = pipeline
        #: "fleet" (batched lanes + stacked filters), "solo" (own
        #: vector bank, per-window fused step — supervised tenants), or
        #: "oracle" (per-window ``process_window`` — the same fallback
        #: ``process_windows_fast`` takes for unvectorizable banks).
        self.mode = "oracle"
        self.windows: List = windows
        self.stats: List[Optional[tuple]] = [None] * len(windows)
        self.bank: Optional[VectorFilterBank] = None
        self.scalar_bank = None
        self.group: "Optional[_FilterGroup]" = None
        #: The live steady-stretch context (pipeline ``_SteadyStretch``)
        #: while certified; its ``c`` is authoritative in the cohort's
        #: centroid block and synced back lazily at exit/handoff.
        self.steady: Optional[_SteadyStretch] = None
        self.cohort: "Optional[_SteadyCohort]" = None
        self.slot = -1
        #: Deferred quiet-window commit run:
        #: ``[c_id, ids_sorted, n_states, indexes, order_lists]``.
        self.defer: Optional[list] = None
        self.gid_base = tid << _STRIDE_BITS
        self._gid_cache: "Optional[Tuple[np.ndarray, np.ndarray]]" = None

    def gids_for(self, id_array: np.ndarray) -> np.ndarray:
        """Stacked-bank slot ids for this tenant's sensor-id array."""
        cached = self._gid_cache
        if cached is not None and cached[0] is id_array:
            return cached[1]
        if len(id_array) and (
            int(id_array[0]) < 0 or int(id_array[-1]) > _SID_MASK
        ):
            raise ValueError(
                "sensor ids must fit 32 bits to join a stacked filter bank"
            )
        gids = id_array + self.gid_base
        self._gid_cache = (id_array, gids)
        return gids


class _FilterGroup:
    """One stacked filter bank shared by all tenants of one config."""

    __slots__ = ("bank", "members", "sig", "gids", "raws", "slices", "refs")

    def __init__(self, bank: VectorFilterBank):
        self.bank = bank
        self.members: List[_Tenant] = []
        #: Concatenation cache: per-member id-array identity signature,
        #: the stacked gid array, a reused raw buffer, per-member write
        #: slices, and strong refs pinning the id arrays (so their
        #: ``id()`` can't be recycled while the signature lives).
        self.sig: Optional[tuple] = None
        self.gids: Optional[np.ndarray] = None
        self.raws: Optional[np.ndarray] = None
        self.slices: List[Optional[slice]] = []
        self.refs: List[Optional[np.ndarray]] = []


class _SteadyCohort:
    """Struct-of-arrays block over every steady stretch of one ``d``.

    Slots ``[0, size)`` are live; removal swap-fills from the tail so
    the block stays contiguous and the batched certificate can run on
    plain views.  Per slot: the current centroid ``c`` (authoritative —
    the context's list is synced lazily), the inf-padded other-state
    vectors with their ids, and the tenant's learning/spawn constants.
    """

    __slots__ = (
        "dims",
        "size",
        "tenants",
        "c",
        "others",
        "other_sids",
        "alpha",
        "keep",
        "spawn",
        "bound",
        "merge",
    )

    def __init__(self, dims: int, cap: int = 16, o_cap: int = 6):
        self.dims = dims
        self.size = 0
        self.tenants: List[_Tenant] = []
        self.c = np.empty((cap, dims))
        self.others = np.full((cap, o_cap, dims), np.inf)
        self.other_sids: List[List[int]] = []
        self.alpha = np.empty(cap)
        self.keep = np.empty(cap)
        self.spawn = np.empty(cap)
        #: Mirrored ``StateSet._pair_min_bound`` (NaN encodes None —
        #: both fail every certificate comparison).  Authoritative for
        #: the stretch: only this path commits the bound between entry
        #: and exit, so the decay recurrence lives in the block and is
        #: synced back to the state set when the stretch closes.
        self.bound = np.empty(cap)
        self.merge = np.empty(cap)

    def _grow(self, n_others: int) -> None:
        cap, o_cap, dims = self.others.shape
        new_cap = max(cap, self.size + 1)
        new_ocap = max(o_cap, n_others)
        if new_cap > cap:
            new_cap = max(new_cap, 2 * cap)
        if new_ocap > o_cap:
            new_ocap = max(new_ocap, 2 * o_cap)
        if new_cap == cap and new_ocap == o_cap:
            return
        others = np.full((new_cap, new_ocap, dims), np.inf)
        others[: self.size, :o_cap] = self.others[: self.size]
        self.others = others
        if new_cap > cap:
            for name in ("c", "alpha", "keep", "spawn", "bound", "merge"):
                old = getattr(self, name)
                grown = np.empty((new_cap,) + old.shape[1:])
                grown[: self.size] = old[: self.size]
                setattr(self, name, grown)

    def add(
        self,
        tenant: _Tenant,
        centroid_row: np.ndarray,
        other_rows: np.ndarray,
        other_sids: List[int],
    ) -> int:
        self._grow(len(other_sids))
        slot = self.size
        clusterer = tenant.pipeline.clusterer
        self.c[slot] = centroid_row
        self.others[slot] = np.inf
        self.others[slot, : len(other_sids)] = other_rows
        if slot < len(self.tenants):
            self.tenants[slot] = tenant
            self.other_sids[slot] = other_sids
        else:
            self.tenants.append(tenant)
            self.other_sids.append(other_sids)
        alpha = clusterer.alpha
        self.alpha[slot] = alpha
        self.keep[slot] = 1.0 - alpha
        self.spawn[slot] = clusterer.spawn_threshold
        pair_bound = clusterer.states._pair_min_bound
        self.bound[slot] = np.nan if pair_bound is None else pair_bound
        self.merge[slot] = clusterer.merge_threshold
        self.size = slot + 1
        tenant.cohort = self
        tenant.slot = slot
        return slot

    def remove(self, tenant: _Tenant) -> None:
        slot = tenant.slot
        last = self.size - 1
        if slot != last:
            mover = self.tenants[last]
            self.tenants[slot] = mover
            self.other_sids[slot] = self.other_sids[last]
            self.c[slot] = self.c[last]
            self.others[slot] = self.others[last]
            self.alpha[slot] = self.alpha[last]
            self.keep[slot] = self.keep[last]
            self.spawn[slot] = self.spawn[last]
            self.bound[slot] = self.bound[last]
            self.merge[slot] = self.merge[last]
            mover.slot = slot
        self.size = last
        tenant.cohort = None
        tenant.slot = -1


def _bank_group_key(bank: VectorFilterBank) -> tuple:
    """Hashable (kind, params) identity of a vector bank's config."""
    if bank.kind == "k_of_n":
        params = (("k", bank.k), ("n", bank.n))
    elif bank.kind == "sprt":
        params = (
            ("p0", bank.p0),
            ("p1", bank.p1),
            ("alpha", bank.alpha),
            ("beta", bank.beta),
        )
    else:
        params = (("drift", bank.drift), ("threshold", bank.threshold))
    return (bank.kind, params)


class FleetEngine:
    """Advance many independent detection pipelines in lockstep.

    Parameters
    ----------
    pipelines:
        The tenant pipelines.  The engine never copies their state —
        it routes their window processing through shared kernels and
        leaves each pipeline, after every :meth:`process_windows`
        call, in exactly the state an independent
        ``process_windows_fast`` run would have produced.
    """

    def __init__(self, pipelines: Sequence[DetectionPipeline]):
        from ..backend import get_backend

        self.pipelines: List[DetectionPipeline] = list(pipelines)
        # Fleet-level kernels follow the first tenant's backend (any
        # choice is safe: backends are bit-identical by contract, and
        # parity pins it).
        self._backend = (
            self.pipelines[0]._backend
            if self.pipelines
            else get_backend("numpy")
        )
        #: Engine-private scratch for the grouped prepass kernel (never
        #: shared with tenant pipelines or other engines).
        self._kernel_scratch: dict = {}
        self._cohorts: Dict[int, _SteadyCohort] = {}
        #: Active-run state for the stepwise API (``begin_run`` /
        #: ``step_once`` / ``end_run``); None between runs.
        self._run_tenants: Optional[List[_Tenant]] = None
        self._run_groups: Optional[Dict[tuple, _FilterGroup]] = None
        self._run_step = 0
        self._run_steps = 0
        self._run_consumed = 0
        self._fp_state: Optional[dict] = None

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def from_pipelines(
        cls, pipelines: Sequence[DetectionPipeline]
    ) -> "FleetEngine":
        """Pack live pipelines into a fleet engine (no state copied)."""
        return cls(pipelines)

    def to_pipelines(self) -> List[DetectionPipeline]:
        """The tenant pipelines, consistent and individually usable."""
        return list(self.pipelines)

    def digests(self) -> List[str]:
        """Per-tenant content digests (see ``DetectionPipeline.digest``)."""
        return [pipeline.digest() for pipeline in self.pipelines]

    def state_dict(self) -> Dict[str, object]:
        """Versioned JSON-ready checkpoint of every tenant."""
        from ..resilience.checkpoint import snapshot

        payload: Dict[str, object] = {
            "fleet_version": 1,
            "tenants": [snapshot(pipeline) for pipeline in self.pipelines],
        }
        health = self._health_payload()
        if health is not None:
            payload["fleet_health"] = health
        return payload

    def _health_payload(self) -> Optional[Dict[str, object]]:
        """Fleet health telemetry; None for the bare engine.  The
        fault-isolating :class:`~repro.fleet.ResilientFleetEngine`
        overrides this with per-tenant status and counters."""
        return None

    @classmethod
    def restore(cls, payload: Dict[str, object]) -> "FleetEngine":
        """Rebuild a fleet from :meth:`state_dict` output."""
        from ..resilience.checkpoint import CheckpointVersionError, restore

        version = payload.get("fleet_version")
        if version != 1:
            raise CheckpointVersionError(version, 1)
        return cls([restore(entry) for entry in payload["tenants"]])

    # -- the fleet run --------------------------------------------------

    def process_windows(self, windows_per_tenant: Sequence[Sequence]) -> int:
        """Advance every tenant through its own window list.

        ``windows_per_tenant[i]`` feeds ``pipelines[i]``; lists may have
        different lengths (tenants simply finish early).  Returns the
        total number of windows consumed across the fleet.  On return —
        normal or exceptional — every tenant's state is folded back
        into its pipeline, exactly as one ``process_windows_fast`` call
        per tenant would have left it.
        """
        self.begin_run(windows_per_tenant)
        try:
            while self.step_once():
                pass
        finally:
            consumed = self.end_run()
        return consumed

    def begin_run(self, windows_per_tenant: Sequence[Sequence]) -> int:
        """Pack the fleet for a stepwise run; returns the step count.

        The stepwise API (``begin_run`` / ``step_once`` / ``end_run``)
        is :meth:`process_windows` taken apart, so a caller — the
        fault-isolating runtime, a soak harness — can interleave its
        own bookkeeping (supervisor polling, mid-run :meth:`evict`)
        between window steps.  Exactly one run may be active at a time.
        """
        if self._run_tenants is not None:
            raise RuntimeError("a fleet run is already active")
        if len(windows_per_tenant) != len(self.pipelines):
            raise ValueError(
                f"got {len(windows_per_tenant)} window lists for "
                f"{len(self.pipelines)} pipelines"
            )
        # One fp-state save for the whole run, like the fused path:
        # the trusted kernels legitimately saturate to inf.
        self._fp_state = np.seterr(over="ignore")
        try:
            tenants, groups = self._pack(windows_per_tenant)
        except BaseException:
            np.seterr(**self._fp_state)
            self._fp_state = None
            raise
        self._run_tenants = tenants
        self._run_groups = groups
        self._run_steps = max((len(t.windows) for t in tenants), default=0)
        self._run_step = 0
        self._run_consumed = 0
        return self._run_steps

    def step_once(self) -> bool:
        """Advance the active run by one window step; False when done."""
        if self._run_tenants is None:
            raise RuntimeError("no active fleet run")
        if self._run_step >= self._run_steps:
            return False
        self._step(self._run_step, self._run_tenants, self._run_groups)
        self._run_step += 1
        return True

    def end_run(self) -> int:
        """Fold every tenant back into its pipeline and close the run.

        Returns the total number of windows consumed (including those
        of tenants evicted mid-run).  Safe to call at any step — the
        remaining windows are simply left unconsumed.
        """
        tenants, groups = self._run_tenants, self._run_groups
        if tenants is None:
            return 0
        try:
            self._unpack(tenants, groups)
        finally:
            consumed = self._run_consumed + sum(
                min(self._run_step, len(t.windows)) for t in tenants
            )
            self._clear_run()
        return consumed

    def abort_run(self) -> None:
        """Drop an active run *without* folding state back.

        After an exception inside :meth:`step_once` the packed state
        (and possibly some pipelines) is suspect; callers that will
        restore every packed pipeline from checkpoints use this to
        discard the run without risking a second failure in
        :meth:`end_run`'s unpack.  No-op when no run is active.
        """
        if self._run_tenants is None:
            return
        self._clear_run()

    def _clear_run(self) -> None:
        self._run_tenants = None
        self._run_groups = None
        self._run_step = 0
        self._run_steps = 0
        self._run_consumed = 0
        self._cohorts = {}
        if self._fp_state is not None:
            np.seterr(**self._fp_state)
            self._fp_state = None

    def evict(self, tid: int) -> DetectionPipeline:
        """Unpack one tenant mid-run and remove it from the fleet.

        Callable between steps of an active stepwise run: seals the
        tenant's certified steady stretch — replaying any deferred
        quiet-window commit runs — folds its filter state out of the
        stacked group bank, and detaches it from its cohort and filter
        group.  The remaining tenants continue bit-identically; the
        returned pipeline is immediately usable standalone, exactly as
        a ``process_windows_fast`` run over its consumed prefix would
        have left it.
        """
        tenants = self._run_tenants
        if tenants is None:
            raise RuntimeError("no active fleet run")
        for tenant in tenants:
            if tenant.tid == tid:
                break
        else:
            raise KeyError(f"no active tenant with tid {tid}")
        self._unpack_one(tenant)
        tenants.remove(tenant)
        self._run_consumed += min(self._run_step, len(tenant.windows))
        self.pipelines.remove(tenant.pipeline)
        return tenant.pipeline

    def _unpack_one(self, tenant: _Tenant) -> None:
        """Fold a single tenant out of the packed run state."""
        pipeline = tenant.pipeline
        if tenant.steady is not None:
            # Exiting the stretch flushes the deferred commit run and
            # folds the pair bound back — the sealing step that makes
            # the handoff exact mid-stretch.
            self._exit_steady(tenant)
        if tenant.mode == "solo":
            tenant.scalar_bank.load_state_dict(tenant.bank.state_dict())
            pipeline.filter_bank = tenant.scalar_bank
        elif tenant.mode == "fleet":
            group = tenant.group
            gb = group.bank
            per_tenant: Dict[int, List[tuple]] = {}
            for gid, slot in gb._slot_of.items():
                per_tenant.setdefault(gid >> _STRIDE_BITS, []).append(
                    (gid & _SID_MASK, slot)
                )
            # Demux every member to its scalar bank (the evictee keeps
            # that state; survivors restack from it bit-identically —
            # the same scalar -> vector -> stacked round trip every
            # run's pack performs).
            for member in group.members:
                entries = per_tenant.get(member.tid, [])
                entries.sort()
                member.scalar_bank.load_state_dict(
                    {
                        "filters": [
                            [sid, gb._sensor_state(slot)]
                            for sid, slot in entries
                        ]
                    }
                )
            group.members.remove(tenant)
            for member in group.members:
                member.bank = member.pipeline._vector_filter_bank()
            self._load_group_bank(group)
            group.sig = None
            group.gids = None
            group.raws = None
            group.slices = []
            group.refs = []
            tenant.group = None

    # -- packing --------------------------------------------------------

    def _pack(self, windows_per_tenant):
        tenants: List[_Tenant] = []
        groups: Dict[tuple, _FilterGroup] = {}
        self._cohorts = {}
        for tid, (pipeline, windows) in enumerate(
            zip(self.pipelines, windows_per_tenant)
        ):
            tenant = _Tenant(tid, pipeline, list(windows))
            bank = pipeline._vector_filter_bank()
            if bank is None:
                tenant.mode = "oracle"
            elif pipeline.supervisor is not None:
                # The supervisor's after_window hook may read or repair
                # any module, so supervised tenants keep a private bank
                # and run the exact fused per-window step.
                tenant.mode = "solo"
                tenant.bank = bank
                tenant.scalar_bank = pipeline.filter_bank
                pipeline.filter_bank = bank
            else:
                tenant.mode = "fleet"
                tenant.bank = bank
                tenant.scalar_bank = pipeline.filter_bank
                key = _bank_group_key(bank)
                group = groups.get(key)
                if group is None:
                    group = groups[key] = _FilterGroup(
                        VectorFilterBank(
                            key[0], dict(key[1]), kernels=self._backend
                        )
                    )
                group.members.append(tenant)
                tenant.group = group
            tenants.append(tenant)
        for group in groups.values():
            self._load_group_bank(group)
        self._prepass(tenants)
        return tenants, groups

    @staticmethod
    def _load_group_bank(group: _FilterGroup) -> None:
        """Concatenate the members' vector-bank arrays into the group's.

        Each member bank (freshly loaded from its scalar state) holds
        its slots in ascending-sensor-id order, so stacking them in
        member (ascending tenant) order keeps the group's slots in
        ascending global-id order — the ``full`` update shape — and the
        raw state arrays carry over without a dict round-trip.
        """
        gb = group.bank
        slot_of: Dict[int, int] = {}
        actives: List[np.ndarray] = []
        columns: List[List[np.ndarray]] = [[] for _ in range(4)]
        if gb.kind == "k_of_n":
            names = ("_buf", "_pos", "_updates", "_count")
        elif gb.kind == "sprt":
            names = ("_llr",)
        else:
            names = ("_g",)
        for tenant in group.members:
            bank = tenant.bank
            live = len(bank._slot_of)
            offset = len(slot_of)
            for sid, slot in bank._slot_of.items():
                if not 0 <= sid <= _SID_MASK:
                    raise ValueError(
                        "sensor ids must fit 32 bits to join a stacked "
                        "filter bank"
                    )
                slot_of[tenant.gid_base + sid] = offset + slot
            actives.append(bank._active[:live])
            for column, name in zip(columns, names):
                column.append(getattr(bank, name)[:live])
        gb._slot_of = slot_of
        gb._capacity = len(slot_of)
        gb._slot_cache = None
        gb._active = (
            np.concatenate(actives) if actives else np.zeros(0, dtype=bool)
        )
        for column, name in zip(columns, names):
            empty = np.zeros(
                (0, gb.n) if name == "_buf" else 0,
                dtype=bool if name == "_buf" else getattr(gb, name).dtype,
            )
            setattr(
                gb, name, np.concatenate(column) if column else empty
            )
        if gb.kind == "k_of_n":
            live = len(slot_of)
            if live == 0:
                gb._pos_sync = 0
            elif bool((gb._pos[:live] == gb._pos[0]).all()):
                gb._pos_sync = int(gb._pos[0])
            else:
                gb._pos_sync = None

    def _prepass(self, tenants: List[_Tenant]) -> None:
        """One whole-fleet grouped-means pass per dimensionality.

        Concatenating tenants' window lists into one
        ``_batched_window_means`` call is bit-identical per window to
        per-tenant calls: every per-(window, sensor) bincount sum
        accumulates only that window's rows, in the same row order.
        """
        from ..sensornet.collector import ArrayWindow

        by_d: Dict[int, List[_Tenant]] = {}
        for tenant in tenants:
            if tenant.mode == "oracle" or not tenant.windows:
                continue
            dims = {
                window.observations.shape[1]
                for window in tenant.windows
                if isinstance(window, ArrayWindow)
                and window.observations.shape[0] > 0
            }
            if len(dims) == 1:
                by_d.setdefault(dims.pop(), []).append(tenant)
            elif dims:
                # Mixed dimensionalities inside one trace: rare enough
                # to run the tenant's own prepass call.
                tenant.stats = _batched_window_means(
                    tenant.windows, kernels=self._backend
                )
        for members in by_d.values():
            merged: List = []
            for tenant in members:
                merged.extend(tenant.windows)
            stats = _batched_window_means(
                merged, kernels=self._backend, scratch=self._kernel_scratch
            )
            offset = 0
            for tenant in members:
                tenant.stats = stats[offset : offset + len(tenant.windows)]
                offset += len(tenant.windows)

    def _unpack(self, tenants: List[_Tenant], groups) -> None:
        """Fold every tenant's run state back into its pipeline."""
        for tenant in tenants:
            pipeline = tenant.pipeline
            if tenant.steady is not None:
                self._exit_steady(tenant)
            if tenant.mode == "solo":
                tenant.scalar_bank.load_state_dict(tenant.bank.state_dict())
                pipeline.filter_bank = tenant.scalar_bank
        for group in groups.values():
            gb = group.bank
            per_tenant: Dict[int, List[tuple]] = {}
            for gid, slot in gb._slot_of.items():
                per_tenant.setdefault(gid >> _STRIDE_BITS, []).append(
                    (gid & _SID_MASK, slot)
                )
            for tenant in group.members:
                entries = per_tenant.get(tenant.tid, [])
                entries.sort()
                tenant.scalar_bank.load_state_dict(
                    {
                        "filters": [
                            [sid, gb._sensor_state(slot)]
                            for sid, slot in entries
                        ]
                    }
                )
        self._cohorts = {}

    # -- the per-step loop ----------------------------------------------

    def _step(self, step: int, tenants: List[_Tenant], groups) -> None:
        full_candidates: List[_Tenant] = []
        for tenant in tenants:
            if step >= len(tenant.windows):
                continue
            mode = tenant.mode
            if mode == "fleet":
                if tenant.steady is None:
                    full_candidates.append(tenant)
            elif mode == "solo":
                tenant.pipeline._process_window_fast(
                    tenant.windows[step], tenant.stats[step], tenant.bank
                )
            else:
                tenant.pipeline.process_window(tenant.windows[step])

        certified = self._steady_phase(step, full_candidates)
        stashes = self._full_phase(step, full_candidates)
        transitions = self._filter_phase(step, groups, certified, stashes)

        for tenant, kind in certified:
            stat = tenant.stats[step]
            trans = transitions.get(tenant.tid)
            if (
                trans
                or kind != "primary"
                or tenant.pipeline.tracks._open_by_sensor
            ):
                if tenant.defer is not None:
                    self._flush(tenant)
                self._commit_steady_direct(
                    tenant, step, stat, trans or (), kind
                )
            else:
                run = tenant.defer
                if run is None:
                    ctx = tenant.steady
                    run = tenant.defer = [
                        ctx.sid,
                        ctx.steady_ids,
                        tenant.pipeline.clusterer.n_states,
                        [],
                        [],
                    ]
                run[3].append(tenant.windows[step].index)
                run[4].append(stat[3])
        for stash in stashes:
            self._commit_full(stash, transitions.get(stash["tenant"].tid, ()))

    # -- steady lane -----------------------------------------------------

    def _enter_steady(self, tenant: _Tenant, state_id: int) -> None:
        """Open a stretch: the cohort-block analogue of
        ``DetectionPipeline._steady_enter`` (same centroid floats, same
        other-state rows, materialized into arrays instead of lists)."""
        clusterer = tenant.pipeline.clusterer
        matrix, ids = clusterer.states._ensure_cache()
        idx = ids.index(state_id)
        dims = matrix.shape[1]
        cohort = self._cohorts.get(dims)
        if cohort is None:
            cohort = self._cohorts[dims] = _SteadyCohort(dims)
        m = len(ids)
        if idx == m - 1:
            other_rows = matrix[:idx]
            other_sids = ids[:idx]
        else:
            other_rows = np.delete(matrix, idx, axis=0)
            other_sids = ids[:idx] + ids[idx + 1 :]
        cohort.add(tenant, matrix[idx], other_rows, list(other_sids))
        # ctx.c stays authoritative in the cohort block; the list here
        # is synced back (tolist of the same floats) at exit/handoff.
        tenant.steady = _SteadyStretch(state_id, matrix[idx].tolist(), [])

    def _exit_steady(self, tenant: _Tenant) -> None:
        """Flush deferred commits, sync the context, and fold the
        stretch back through the pipeline's own ``_steady_exit``."""
        ctx = tenant.steady
        cohort = tenant.cohort
        slot = tenant.slot
        ctx.c = cohort.c[slot].tolist()
        if tenant.defer is not None:
            self._flush(tenant)
        # The stretch's committed pair bound lived in the cohort block;
        # fold it back (NaN encoded an unknown bound).
        bound = cohort.bound[slot]
        tenant.pipeline.clusterer.states._pair_min_bound = (
            None if math.isnan(bound) else float(bound)
        )
        cohort.remove(tenant)
        tenant.steady = None
        tenant.pipeline._steady_exit(ctx)

    def _steady_phase(
        self, step: int, full_candidates: List[_Tenant]
    ) -> List[Tuple[_Tenant, str]]:
        """Batched steady-stretch certification, one cohort at a time.

        Returns ``(tenant, kind)`` pairs whose window certified (their
        centroids already advanced, bit-identically to
        ``DetectionPipeline._steady_step``); every failed candidate's
        stretch is exited and the tenant joins the full lane.
        """
        certified: List[Tuple[_Tenant, str]] = []
        for cohort in self._cohorts.values():
            if cohort.size:
                self._steady_cohort_step(
                    step, cohort, certified, full_candidates
                )
        return certified

    def _steady_cohort_step(
        self,
        step: int,
        cohort: _SteadyCohort,
        certified: List[Tuple[_Tenant, str]],
        full_candidates: List[_Tenant],
    ) -> None:
        tenants = cohort.tenants
        size = cohort.size
        exits: List[_Tenant] = []
        rows: List[int] = []
        goals: List[np.ndarray] = []
        spreads: List[float] = []
        for slot in range(size):
            tenant = tenants[slot]
            if step >= len(tenant.windows):
                continue
            stat = tenant.stats[step]
            if stat is None or stat[5] is None or stat[6] is None:
                exits.append(tenant)
                continue
            ctx = tenant.steady
            ids = stat[0]
            pinned = ctx.steady_ids
            if pinned is None:
                # First certified window pins the stretch's sensor set
                # (the pipeline also decides filter deferral here; the
                # stacked bank updates every window instead, which the
                # quiescence argument proves state-identical).
                ctx.steady_ids = ids
            elif ids is not pinned and ids != pinned:
                exits.append(tenant)
                continue
            rows.append(slot)
            goals.append(stat[5])
            spreads.append(stat[6])
        if rows:
            if len(rows) == size:
                sub = slice(0, size)
            else:
                sub = np.array(rows)
            c_mat = cohort.c[sub]
            others = cohort.others[sub]
            alphas = cohort.alpha[sub]
            keeps = cohort.keep[sub]
            spawn = cohort.spawn[sub]
            goal = np.array(goals)
            spread = np.array(spreads)
            # Elementwise replicas of _steady_step's Python-float
            # recurrence: same two roundings per element, same
            # left-associated sums.
            new_c = keeps[:, None] * c_mat + alphas[:, None] * goal
            move = new_c - c_mat
            delta = np.sqrt(np.einsum("kd,kd->k", move, move))
            away = goal - c_mat
            gc_sq = np.einsum("kd,kd->k", away, away)
            reach = np.sqrt(gc_sq) + spread + delta
            odiff = goal[:, None, :] - others
            osq = np.einsum("kmd,kmd->km", odiff, odiff)
            # The scalar scan skips NaN entries (NaN < x is False), so
            # mask them to inf before the min — an all-NaN row then
            # reports inf, exactly like the scan's untouched initial.
            osq = np.where(np.isnan(osq), np.inf, osq)
            min_other_sq = osq.min(axis=1)
            min_other = np.sqrt(min_other_sq)
            pad = 1e-9 + 1e-12 * (reach + spread)
            # The per-clusterer pair-bound decay (peek_decayed_pair_
            # bound's exact expression) runs on the mirrored bounds; an
            # inf bound (no pair to shrink) survives untouched and a
            # NaN (unknown) bound stays NaN — failing the >= like the
            # scalar None path.
            bounds = cohort.bound[sub]
            merges = cohort.merge[sub]
            with np.errstate(invalid="ignore"):
                dbound = np.where(
                    np.isinf(bounds),
                    bounds,
                    (bounds - delta) - (np.abs(bounds) + delta) * 1e-12,
                )
            passed = (
                (reach + pad <= spawn)
                & (reach + spread + pad < min_other * (1.0 - 1e-12) - 1e-9)
                & (dbound >= merges)
            ).tolist()
            if all(passed):
                # Quiet step: every stretch certified on the primary
                # branch, so the handoff block is never consulted.
                for slot in rows:
                    certified.append((tenants[slot], "primary"))
                cohort.c[sub] = new_c
                cohort.bound[sub] = dbound
            else:
                self._steady_mixed_commit(
                    cohort,
                    certified,
                    exits,
                    rows,
                    sub,
                    others,
                    osq,
                    min_other_sq,
                    min_other,
                    gc_sq,
                    spread,
                    spawn,
                    keeps,
                    alphas,
                    goal,
                    bounds,
                    merges,
                    passed,
                    new_c,
                    dbound,
                )
        for tenant in exits:
            self._exit_steady(tenant)
            full_candidates.append(tenant)

    def _steady_mixed_commit(
        self,
        cohort: _SteadyCohort,
        certified: List[Tuple[_Tenant, str]],
        exits: List[_Tenant],
        rows: List[int],
        sub,
        others: np.ndarray,
        osq: np.ndarray,
        min_other_sq: np.ndarray,
        min_other: np.ndarray,
        gc_sq: np.ndarray,
        spread: np.ndarray,
        spawn: np.ndarray,
        keeps: np.ndarray,
        alphas: np.ndarray,
        goal: np.ndarray,
        bounds: np.ndarray,
        merges: np.ndarray,
        passed: List[bool],
        new_c: np.ndarray,
        dbound: np.ndarray,
    ) -> None:
        """Resolve a cohort step where some primary certificate failed.

        Batched replica of the basin-handoff branch (evaluated for
        every row; consulted only where the primary check failed).
        The scalar scan's min/second/first-argmin semantics over
        duplicate and inf entries match argmin/partition exactly,
        and an inf minimum (no real others, overflow) fails the
        ``min < gc_sq`` gate on both paths.
        """
        tenants = cohort.tenants
        min_idx = osq.argmin(axis=1)
        if osq.shape[1] > 1:
            second_sq = np.partition(osq, 1, axis=1)[:, 1]
        else:
            second_sq = np.full(len(rows), np.inf)
        # inf "targets" (all-others-padded rows) yield NaN rows here
        # and fail every comparison below, like the scalar branch's
        # min_idx == -1 gate; silence the expected inf - inf.
        with np.errstate(invalid="ignore"):
            target = others[np.arange(len(rows)), min_idx]
            new_c2 = keeps[:, None] * target + alphas[:, None] * goal
            move2 = new_c2 - target
            delta2 = np.sqrt(np.einsum("kd,kd->k", move2, move2))
            dbound2 = np.where(
                np.isinf(bounds),
                bounds,
                (bounds - delta2) - (np.abs(bounds) + delta2) * 1e-12,
            )
        reach2 = min_other + spread + delta2
        second_min = np.minimum(np.sqrt(gc_sq), np.sqrt(second_sq))
        pad2 = 1e-9 + 1e-12 * (reach2 + spread)
        handoff = (
            (min_other_sq < gc_sq)
            & (reach2 + pad2 <= spawn)
            & (reach2 + spread + pad2 < second_min * (1.0 - 1e-12) - 1e-9)
            & (dbound2 >= merges)
        ).tolist()
        min_idx_l = min_idx.tolist()
        dbound2_l = dbound2.tolist()
        committed: List[int] = []
        for k, slot in enumerate(rows):
            tenant = tenants[slot]
            if passed[k]:
                committed.append(k)
                certified.append((tenant, "primary"))
            elif handoff[k]:
                self._steady_handoff_commit(
                    tenant, min_idx_l[k], new_c2[k], dbound2_l[k]
                )
                certified.append((tenant, "handoff"))
            else:
                exits.append(tenant)
        if committed:
            idx = (
                np.array(rows)[committed]
                if isinstance(sub, slice)
                else sub[committed]
            )
            cohort.c[idx] = new_c[committed]
            cohort.bound[idx] = dbound[committed]

    def _steady_handoff_commit(
        self,
        tenant: _Tenant,
        min_idx: int,
        new_c2: np.ndarray,
        new_bound: float,
    ) -> None:
        """Commit a basin handoff whose batched certificate (including
        the mirrored pair-bound decay) passed."""
        ctx = tenant.steady
        cohort = tenant.cohort
        slot = tenant.slot
        # The stretch hands off: flush the deferred quiet run first so
        # everything below lands after those windows' bookkeeping.
        c = cohort.c[slot].tolist()
        ctx.c = c
        if tenant.defer is not None:
            self._flush(tenant)
        cohort.bound[slot] = new_bound
        if ctx.visits:
            tenant.pipeline.clusterer.states.apply_steady_motion(
                ctx.sid, c, ctx.visits
            )
        other_sids = cohort.other_sids[slot]
        new_sid = other_sids[min_idx]
        cohort.others[slot, min_idx] = c
        other_sids[min_idx] = ctx.sid
        ctx.sid = new_sid
        cohort.c[slot] = new_c2
        ctx.c = new_c2.tolist()
        ctx.visits = 1

    def _flush(self, tenant: _Tenant) -> None:
        """Replay a deferred quiet-window run in one cache-hot burst.

        Every deferred window was certified with no filter transitions
        and no open tracks, so its commit reduces to: the repeated
        ``m_co.observe(c, c)`` forgetting update (the transition row is
        untouched since the state never changes; the emission row gets
        the same two in-place roundings per window), the integer visit
        counters (plain additions — folding k of them is exact), the
        sequence appends, and the pending result tuples.
        """
        run = tenant.defer
        if run is None:
            return
        tenant.defer = None
        c_id, ids_sorted, n_states, indexes, orders = run
        k = len(indexes)
        pipeline = tenant.pipeline
        ctx = tenant.steady
        ctx.alarm_count += k
        ctx.visits += k
        pipeline._n_windows += k
        model = pipeline.m_co
        row = model._emission[model._state_index[c_id]]
        column = model._symbol_index[c_id]
        rate = model.emission_innovation
        keep = 1.0 - rate
        # Python floats and NumPy float64 scalars round identically, so
        # replaying the per-window recurrence on a list costs k small
        # loop bodies instead of 2k tiny array kernels.
        values = row.tolist()
        for _ in range(k):
            values = [value * keep for value in values]
            values[column] += rate
        row[:] = values
        model._state_visits[c_id] += k
        model._symbol_visits[c_id] += k
        pair = (c_id, c_id)
        model._pair_counts[pair] = model._pair_counts.get(pair, 0) + k
        model._n_updates += k
        run_states = [c_id] * k
        pipeline.correct_sequence.extend(run_states)
        pipeline.observable_sequence.extend(run_states)
        pending = pipeline._pending_results
        for index, order_first in zip(indexes, orders):
            pending.append(
                (
                    index,
                    "steady",
                    c_id,
                    ids_sorted,
                    order_first,
                    (),
                    n_states,
                    None,
                )
            )

    def _commit_steady_direct(
        self, tenant: _Tenant, step: int, stat, transitions, kind: str
    ) -> None:
        """The certified-window commit, mirroring ``_steady_step``'s."""
        pipeline = tenant.pipeline
        ctx = tenant.steady
        window = tenant.windows[step]
        ctx.alarm_count += 1
        if kind == "primary":
            ctx.visits += 1
        pipeline._n_windows += 1
        c_id = ctx.sid
        ids_sorted = ctx.steady_ids
        transitions = tuple(transitions)
        for transition in transitions:
            if transition.raised:
                pipeline.tracks.open_track(transition.sensor_id, window.index)
            else:
                pipeline.tracks.close_track(transition.sensor_id, window.index)
        pipeline.tracks.record_window_batch(
            c_id, ids_sorted, [c_id] * len(ids_sorted)
        )
        pipeline.m_co.observe(c_id, c_id)
        pipeline.correct_sequence.append(c_id)
        pipeline.observable_sequence.append(c_id)
        pipeline._pending_results.append(
            (
                window.index,
                "steady",
                c_id,
                ids_sorted,
                stat[3],
                transitions,
                pipeline.clusterer.n_states,
                None,
            )
        )

    # -- full lane -------------------------------------------------------

    def _full_phase(self, step: int, tenants: List[_Tenant]) -> List[dict]:
        """The full clustering path for every non-certified tenant.

        Windows with trusted prepass stats and a live clusterer go
        through the batched distance kernels (grouped by attribute
        dimensionality); everything else — slow-lane sanitization,
        bootstrap, untrusted (d == 1) windows — runs the tenant's exact
        per-window mirror of ``_process_window_fast``.
        """
        stashes: List[dict] = []
        by_d: Dict[int, List[_Tenant]] = {}
        for tenant in tenants:
            stat = tenant.stats[step]
            if (
                stat is None
                or stat[4] is None
                or tenant.pipeline.clusterer is None
            ):
                stash = self._full_prefilter_exact(tenant, step)
                if stash is not None:
                    stashes.append(stash)
            else:
                by_d.setdefault(stat[2].shape[1], []).append(tenant)
        for dims, group in by_d.items():
            self._full_batched(step, dims, group, stashes)
        return stashes

    def _full_prefilter_exact(
        self, tenant: _Tenant, step: int
    ) -> Optional[dict]:
        """Per-tenant mirror of ``_process_window_fast`` up to (but not
        including) the filter-bank update; returns None for windows the
        pipeline skips."""
        pipeline = tenant.pipeline
        window = tenant.windows[step]
        stat = tenant.stats[step]
        pipeline._n_windows += 1
        per_sensor = None
        trusted = False
        full_mean = None
        if stat is None:
            per_sensor, overall_mean = pipeline._sanitize(window)
            if per_sensor:
                ids_first = list(per_sensor.keys())
                ids_sorted = sorted(ids_first)
                id_array = np.asarray(ids_sorted, dtype=np.int64)
                observations = np.vstack(
                    [per_sensor[s] for s in ids_sorted]
                )
                position = {s: i for i, s in enumerate(ids_sorted)}
                order_first: Sequence[int] = [position[s] for s in ids_first]
            else:
                ids_sorted = []
        else:
            (
                ids_sorted,
                id_array,
                observations,
                order_first,
                overall_mean,
                full_mean,
            ) = stat[:6]
            if overall_mean is None:
                overall_mean = window.overall_mean()
            else:
                trusted = True
        if not ids_sorted:
            pipeline._pending_results.append(
                (window.index, True, None, None, (), (), 0, False)
            )
            return None
        if pipeline.clusterer is None:
            if per_sensor is None:
                per_sensor = {
                    ids_sorted[p]: observations[p] for p in order_first
                }
            pipeline._bootstrap_clusterer(per_sensor)
        cluster_update = pipeline.clusterer.update(
            observations,
            overall_mean=overall_mean,
            trusted=trusted,
            full_mean=full_mean,
        )
        return self._full_stash(
            tenant,
            window,
            cluster_update,
            ids_sorted,
            id_array,
            order_first,
            overall_mean,
            trusted,
            full_mean,
        )

    def _full_batched(
        self,
        step: int,
        dims: int,
        group: List[_Tenant],
        stashes: List[dict],
    ) -> None:
        """Batched replica of ``OnlineStateClusterer._update_inner`` for
        the no-spawn case, one dimensionality group at a time.

        Tenants whose window could spawn (the precomputed gate fires)
        fall back to their exact per-window path before anything was
        mutated; mean spawns are handled inline per tenant with the
        oracle's own column ordering.
        """
        fleet = []
        n_rows = []
        matrices = []
        id_lists = []
        for tenant in group:
            tenant.pipeline._n_windows += 1
            matrix, ids = tenant.pipeline.clusterer.states._ensure_cache()
            fleet.append(tenant)
            n_rows.append(tenant.stats[step][2].shape[0])
            matrices.append(matrix)
            id_lists.append(ids)
        G = len(fleet)
        n_max = max(n_rows)
        m_max = max(len(ids) for ids in id_lists)
        obs = np.empty((G, n_max, dims))
        states = np.full((G, m_max, dims), _PAD_VECTOR)
        for g, tenant in enumerate(fleet):
            rows = tenant.stats[step][2]
            obs[g, : n_rows[g]] = rows
            # Pad rows duplicate the first real observation so whole-
            # tensor reductions stay harmless (identical rows produce
            # identical distances and argmins).
            obs[g, n_rows[g] :] = rows[0]
            states[g, : len(id_lists[g])] = matrices[g]
        dist1 = self._backend.batched_distances(obs, states)
        # _spawn_far_observations' gate over the same floats: a tenant
        # whose max-min distance clears the threshold might spawn and
        # leaves the batch untouched.
        gate = dist1.min(axis=2).max(axis=1).tolist()
        cols1 = dist1.argmin(axis=2).tolist()

        survivors = []
        for g, tenant in enumerate(fleet):
            clusterer = tenant.pipeline.clusterer
            stat = tenant.stats[step]
            if gate[g] > clusterer.spawn_threshold:
                # Exact path re-runs the whole update (including its
                # own distance pass — bit-identical to this one).
                tenant.pipeline._n_windows -= 1
                stash = self._full_prefilter_exact(tenant, step)
                if stash is not None:  # pragma: no branch
                    stashes.append(stash)
                continue
            ids = id_lists[g]
            assignments = [ids[column] for column in cols1[g][: n_rows[g]]]
            clusterer._apply_learning_update(stat[2], assignments, stat[5])
            merged = clusterer._merge_close_states()
            survivors.append((g, tenant, assignments, merged))
        if not survivors:
            return

        # Post-update fused identification: one batched (G, N+1, M)
        # query with the overall mean as row 0 (row order only decides
        # which row is the mean's; per-row results are unchanged).
        post_states = []
        m_max2 = 0
        for g, tenant, _, _ in survivors:
            matrix, ids = tenant.pipeline.clusterer.states._ensure_cache()
            post_states.append((matrix, ids))
            m_max2 = max(m_max2, len(ids))
        points = np.empty((len(survivors), n_max + 1, dims))
        states2 = np.full((len(survivors), m_max2, dims), _PAD_VECTOR)
        for row, (g, tenant, _, _) in enumerate(survivors):
            stat = tenant.stats[step]
            n = n_rows[g]
            points[row, 0] = stat[4]
            points[row, 1 : n + 1] = stat[2]
            points[row, n + 1 :] = stat[4]
            matrix, ids = post_states[row]
            states2[row, : len(ids)] = matrix
        dist2 = self._backend.batched_distances(points, states2)
        cols2 = dist2.argmin(axis=2).tolist()

        for row, (g, tenant, assignments, merged) in enumerate(survivors):
            clusterer = tenant.pipeline.clusterer
            stat = tenant.stats[step]
            n = n_rows[g]
            ids2 = post_states[row][1]
            columns = cols2[row]
            mean_distance = float(dist2[row, 0, columns[0]])
            mean_spawned = None
            if (
                mean_distance > clusterer.spawn_threshold
                and len(clusterer.states) < clusterer.max_states
            ):
                mean_spawned, sensor_assignments, observable_state = (
                    self._mean_spawn(
                        tenant, stat, n, ids2, dist2[row], mean_distance
                    )
                )
            else:
                sensor_assignments = [
                    ids2[column] for column in columns[1 : n + 1]
                ]
                observable_state = ids2[columns[0]]
            cluster_update = ClusterUpdate(
                assignments=clusterer.states.resolve_batch(assignments),
                spawned=[],
                merged=merged,
                sensor_assignments=sensor_assignments,
                observable_state=observable_state,
                mean_spawned=mean_spawned,
            )
            stashes.append(
                self._full_stash(
                    tenant,
                    tenant.windows[step],
                    cluster_update,
                    stat[0],
                    stat[1],
                    stat[3],
                    stat[4],
                    True,
                    stat[5],
                )
            )

    def _mean_spawn(self, tenant, stat, n, ids2, dist_rows, mean_distance):
        """Inline replica of ``_update_inner``'s mean-spawn block.

        Rebuilds the oracle's (observations..., mean) row order and
        appends the spawned state's distance column, so the final
        argmin tie-breaks match a per-tenant run bit-for-bit.
        """
        clusterer = tenant.pipeline.clusterer
        state = clusterer.states.spawn(stat[4])
        mean_spawned = state.state_id
        m2 = len(ids2)
        oracle_rows = np.empty((n + 1, m2 + 1))
        oracle_rows[:n, :m2] = dist_rows[1 : n + 1, :m2]
        oracle_rows[n, :m2] = dist_rows[0, :m2]
        pts = np.empty((n + 1, stat[2].shape[1]))
        pts[:n] = stat[2]
        pts[n] = stat[4]
        extra_diff = pts - state.vector
        oracle_rows[:, m2] = np.sqrt(
            np.einsum("nd,nd->n", extra_diff, extra_diff)
        )
        ids_ext = list(ids2) + [mean_spawned]
        final = [ids_ext[column] for column in np.argmin(oracle_rows, axis=1)]
        return mean_spawned, final[:-1], final[-1]

    def _full_stash(
        self,
        tenant: _Tenant,
        window,
        cluster_update,
        ids_sorted,
        id_array,
        order_first,
        overall_mean,
        trusted: bool,
        full_mean,
    ) -> dict:
        """The shared ``_process_window_fast`` tail: identification and
        raw alarms, stopping just before the filter-bank update (which
        runs stacked in the filter phase)."""
        pipeline = tenant.pipeline
        assignments = cluster_update.sensor_assignments
        sensor_states = {
            ids_sorted[p]: assignments[p] for p in order_first
        }
        identification = identify_window(
            pipeline.clusterer,
            sensor_states,
            overall_mean=overall_mean,
            sensor_states=sensor_states,
            observable_state=cluster_update.observable_state,
        )
        raw_alarms = pipeline.alarm_generator.process(
            window.index, identification
        )
        correct = identification.correct_state
        return {
            "tenant": tenant,
            "window": window,
            "identification": identification,
            "cluster_update": cluster_update,
            "raw_alarms": raw_alarms,
            "ids_sorted": ids_sorted,
            "id_array": id_array,
            "raws": [state_id != correct for state_id in assignments],
            "trusted": trusted,
            "full_mean": full_mean,
        }

    def _commit_full(self, stash: dict, transitions) -> None:
        """The post-filter half of ``_process_window_fast``."""
        tenant = stash["tenant"]
        pipeline = tenant.pipeline
        window = stash["window"]
        identification = stash["identification"]
        cluster_update = stash["cluster_update"]
        transitions = tuple(transitions)
        for transition in transitions:
            if transition.raised:
                pipeline.tracks.open_track(transition.sensor_id, window.index)
            else:
                pipeline.tracks.close_track(transition.sensor_id, window.index)
        correct = identification.correct_state
        assignments = cluster_update.sensor_assignments
        pipeline.tracks.record_window_batch(
            correct, stash["ids_sorted"], assignments
        )
        pipeline.m_co.observe(correct, identification.observable_state)
        pipeline.correct_sequence.append(correct)
        pipeline.observable_sequence.append(identification.observable_state)
        pipeline._pending_results.append(
            (
                window.index,
                False,
                identification,
                cluster_update,
                tuple(stash["raw_alarms"]),
                transitions,
                pipeline.clusterer.n_states,
                False,
            )
        )
        # Steady-stretch entry hint, verbatim from the fused path.
        if (
            stash["trusted"]
            and stash["full_mean"] is not None
            and cluster_update.mean_spawned is None
            and not cluster_update.spawned
            and not cluster_update.merged
        ):
            n = len(assignments)
            c = assignments[0]
            if (
                assignments.count(c) == n
                and cluster_update.observable_state == c
                and cluster_update.assignments.count(c) == n
            ):
                self._enter_steady(tenant, c)

    # -- stacked filter phase --------------------------------------------

    def _filter_phase(
        self,
        step: int,
        groups,
        certified: List[Tuple[_Tenant, str]],
        stashes: List[dict],
    ) -> Dict[int, List[FilterTransition]]:
        """One stacked bank update per filter group, then demux.

        Steady tenants contribute all-False raw rows over their pinned
        sensor sets (state-identical to the per-tenant deferred
        advance); full-lane tenants contribute their computed raws.
        Transitions come back in ascending global-slot order — i.e.
        tenant-major, sensor-ascending, exactly each tenant's own
        ordering — and are re-keyed to local sensor ids and the
        tenant's own window index.
        """
        contributions: Dict[int, tuple] = {}
        for tenant, _ in certified:
            contributions[tenant.tid] = (tenant.stats[step][1], None, tenant)
        for stash in stashes:
            contributions[stash["tenant"].tid] = (
                stash["id_array"],
                stash["raws"],
                stash["tenant"],
            )
        per_tenant: Dict[int, List[FilterTransition]] = {}
        for group in groups.values():
            members = group.members
            sig = tuple(
                id(entry[0]) if entry is not None else None
                for entry in map(contributions.get, (t.tid for t in members))
            )
            if sig != group.sig:
                self._rebuild_group_cache(group, contributions, sig)
            gids = group.gids
            if gids is None or not len(gids):
                continue
            raws = group.raws
            raws[:] = False
            for member, span in zip(members, group.slices):
                if span is None:
                    continue
                entry = contributions[member.tid]
                if entry[1] is not None:
                    raws[span] = entry[1]
            stacked = group.bank.update_batch(
                step, gids, raws, assume_sorted=True
            )
            for transition in stacked:
                tid = transition.sensor_id >> _STRIDE_BITS
                window_index = contributions[tid][2].windows[step].index
                per_tenant.setdefault(tid, []).append(
                    FilterTransition(
                        sensor_id=transition.sensor_id & _SID_MASK,
                        window_index=window_index,
                        raised=transition.raised,
                    )
                )
        return per_tenant

    def _rebuild_group_cache(
        self, group: _FilterGroup, contributions, sig
    ) -> None:
        """Re-derive a group's stacked gid layout after membership or
        sensor-population changes (id arrays are compared by identity —
        the prepass shares one array per tenant per stable trace)."""
        parts: List[np.ndarray] = []
        slices: List[Optional[slice]] = []
        refs: List[Optional[np.ndarray]] = []
        offset = 0
        for tenant in group.members:
            entry = contributions.get(tenant.tid)
            if entry is None:
                slices.append(None)
                refs.append(None)
                continue
            gid_block = tenant.gids_for(entry[0])
            parts.append(gid_block)
            slices.append(slice(offset, offset + len(gid_block)))
            refs.append(entry[0])
            offset += len(gid_block)
        group.sig = sig
        group.slices = slices
        group.refs = refs
        if parts:
            group.gids = (
                parts[0] if len(parts) == 1 else np.concatenate(parts)
            )
            group.raws = np.empty(offset, dtype=bool)
        else:
            group.gids = None
            group.raws = None
