"""Fault-isolating fleet runtime: quarantine, degraded mode, recovery.

The bare :class:`~repro.fleet.engine.FleetEngine` inverts the paper's
availability story: it advances N deployments through shared
struct-of-arrays kernels, so one tenant feeding malformed windows or
raising from a shared kernel aborts the advance for all N.  This module
wraps the engine in an epoch-based containment loop that degrades
per-tenant instead of failing collectively (DESIGN.md §14):

* **Health states.**  Every tenant is ``healthy`` (batched),
  ``degraded`` (advanced solo on its exact path after its repair-mode
  supervisor recorded a violation), or ``quarantined`` (faulted; under
  bounded recovery or permanently parked).
* **Epochs + checkpoints.**  Windows are consumed in epochs of
  ``checkpoint_interval`` steps; each active tenant's last good state
  is held as a snapshot checkpoint from the epoch boundary.  Chunking is
  invisible: the fast path is bit-identical to the per-window oracle,
  and the oracle carries no cross-call state, so an epoch-chunked run
  equals one continuous ``process_windows_fast`` call per tenant.
* **Containment + bisection attribution.**  Any exception raised while
  a batched epoch advances aborts that engine run; the offending
  tenant(s) are found by bisection replay from the epoch-boundary
  checkpoints — batched probes over tenant subsets narrow the search,
  and each suspect is confirmed alone on its per-tenant exact path
  (``process_windows_fast``, window by window, which also pins the
  faulting window index).  Culprits are quarantined; survivors are
  rolled back to the epoch boundary and re-run batched, bit-identical
  to a run that never contained the culprit.
* **Degraded mode.**  A repair-mode supervisor violation marks the
  tenant degraded, not the fleet: it is evicted from the live engine
  mid-run (sealing any certified steady stretch) and continues solo.
* **Bounded auto-recovery.**  A quarantined tenant restores from its
  last good checkpoint and replays solo with per-window containment,
  skipping windows that still fault; after ``probation`` consecutive
  clean windows it is re-admitted to the batched path.  At most
  ``max_recoveries`` quarantine/restore cycles are attempted before
  the tenant is parked for good.

Telemetry (per-tenant status, quarantine/restore/re-admit counters,
isolation-overhead timings) rides :meth:`FleetEngine.state_dict` under
``"fleet_health"`` and feeds the ``fleet_degradation`` bench block.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.pipeline import DetectionPipeline
from .engine import FleetEngine

HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"

#: Per-tenant failure log cap: state_dict payloads stay bounded even if
#: a tenant faults on every window of a long soak.
_MAX_FAILURES = 64

#: Failure detail strings are clipped to this many characters.
_MAX_DETAIL = 200


class FleetIsolationError(RuntimeError):
    """A batched epoch failed but no tenant reproduces the failure.

    Bisection and the exhaustive per-tenant sweep both came back clean,
    so the fault lives in the shared engine itself (or is
    non-deterministic) — quarantining an arbitrary tenant would hide an
    engine bug, so the failure is surfaced loudly instead.
    """


@dataclass(frozen=True)
class TenantFailure:
    """One recorded tenant fault: what, where, and on which attempt."""

    kind: str
    window_index: Optional[int]
    detail: str
    attempt: int


class TenantHealth:
    """Health record for one tenant: status, counters, checkpoint."""

    __slots__ = (
        "tid",
        "status",
        "failures",
        "failures_dropped",
        "quarantines",
        "restores",
        "readmissions",
        "degradations",
        "recovery_attempts",
        "clean_streak",
        "skipped_windows",
        "position",
        "checkpoint",
        "checkpoint_position",
    )

    def __init__(self, tid: int):
        self.tid = tid
        self.status = HEALTHY
        self.failures: List[TenantFailure] = []
        self.failures_dropped = 0
        self.quarantines = 0
        self.restores = 0
        self.readmissions = 0
        self.degradations = 0
        self.recovery_attempts = 0
        self.clean_streak = 0
        self.skipped_windows = 0
        #: Current position (windows consumed) within the active
        #: ``process_windows`` call.
        self.position = 0
        #: Last good state as a snapshot dict.  ``snapshot`` shares no
        #: mutable state with the live pipeline, and restores go through
        #: a JSON round-trip, so the stored dict stays pristine.
        self.checkpoint: Optional[Dict[str, object]] = None
        self.checkpoint_position = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "tid": self.tid,
            "status": self.status,
            "quarantines": self.quarantines,
            "restores": self.restores,
            "readmissions": self.readmissions,
            "degradations": self.degradations,
            "recovery_attempts": self.recovery_attempts,
            "clean_streak": self.clean_streak,
            "skipped_windows": self.skipped_windows,
            "failures": [asdict(failure) for failure in self.failures],
            "failures_dropped": self.failures_dropped,
        }


class ResilientFleetEngine(FleetEngine):
    """A :class:`FleetEngine` that degrades per tenant, not per fleet.

    Drop-in for the bare engine: same constructor shape, same
    ``process_windows`` / ``digests`` / ``to_pipelines`` /
    ``state_dict`` surface.  Healthy tenants advance through the
    batched kernels bit-identical to a bare-engine (and hence solo
    ``process_windows_fast``) run; faulting tenants are contained,
    attributed, quarantined, and given bounded recovery as described in
    the module docstring.

    Parameters
    ----------
    checkpoint_interval:
        Epoch length in windows; also the per-tenant checkpoint cadence
        and the containment blast radius (a failed epoch replays at
        most this many windows per tenant).
    probation:
        Consecutive clean windows a degraded or recovering tenant must
        produce before re-admission to the batched path.
    max_recoveries:
        Quarantine/restore cycles allowed per tenant before it is
        parked permanently (state frozen at its last good checkpoint).
    """

    def __init__(
        self,
        pipelines: Sequence[DetectionPipeline],
        *,
        checkpoint_interval: int = 256,
        probation: int = 16,
        max_recoveries: int = 2,
    ):
        super().__init__(pipelines)
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if probation < 1:
            raise ValueError("probation must be >= 1")
        if max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")
        self.checkpoint_interval = checkpoint_interval
        self.probation = probation
        self.max_recoveries = max_recoveries
        self.records = [TenantHealth(tid) for tid in range(len(self.pipelines))]
        self.counters: Dict[str, int] = {
            "epochs": 0,
            "checkpoints": 0,
            "rollbacks": 0,
            "attribution_probes": 0,
        }
        self.overhead: Dict[str, float] = {
            "checkpoint_seconds": 0.0,
            "rollback_seconds": 0.0,
            "attribution_seconds": 0.0,
            "recovery_seconds": 0.0,
        }

    # -- telemetry ------------------------------------------------------

    def health_report(self) -> Dict[str, object]:
        """JSON-ready fleet health telemetry."""
        statuses = [record.status for record in self.records]
        return {
            "statuses": statuses,
            "counters": {
                "healthy": statuses.count(HEALTHY),
                "degraded": statuses.count(DEGRADED),
                "quarantined": statuses.count(QUARANTINED),
                "quarantines": sum(r.quarantines for r in self.records),
                "restores": sum(r.restores for r in self.records),
                "readmissions": sum(r.readmissions for r in self.records),
                "degradations": sum(r.degradations for r in self.records),
                "skipped_windows": sum(
                    r.skipped_windows for r in self.records
                ),
                **self.counters,
            },
            "overhead_seconds": dict(self.overhead),
            "tenants": [record.as_dict() for record in self.records],
            "checkpoint_interval": self.checkpoint_interval,
            "probation": self.probation,
            "max_recoveries": self.max_recoveries,
        }

    def _health_payload(self) -> Optional[Dict[str, object]]:
        return self.health_report()

    # -- the isolated fleet run -----------------------------------------

    def process_windows(self, windows_per_tenant: Sequence[Sequence]) -> int:
        """Advance the fleet with per-tenant fault isolation.

        Returns the total number of windows consumed (skipped faulty
        windows count as consumed; windows of permanently parked
        tenants do not).  Never propagates a tenant-attributable
        failure — those are recorded in the health report instead.
        """
        if len(windows_per_tenant) != len(self.pipelines):
            raise ValueError(
                f"got {len(windows_per_tenant)} window lists for "
                f"{len(self.pipelines)} pipelines"
            )
        windows = [list(entry) for entry in windows_per_tenant]
        start = perf_counter()
        for i, record in enumerate(self.records):
            record.position = 0
            if self._parked(record):
                continue
            record.checkpoint = self._dump(self.pipelines[i])
            record.checkpoint_position = 0
        self.overhead["checkpoint_seconds"] += perf_counter() - start
        consumed = 0
        while True:
            active = [
                i
                for i in range(len(windows))
                if not self._parked(self.records[i])
                and self.records[i].position < len(windows[i])
            ]
            if not active:
                break
            consumed += self._run_epoch(windows, active)
        return consumed

    def _parked(self, record: TenantHealth) -> bool:
        return (
            record.status == QUARANTINED
            and record.recovery_attempts > self.max_recoveries
        )

    def _run_epoch(self, windows, active: List[int]) -> int:
        records = self.records
        self.counters["epochs"] += 1
        end = {
            i: min(
                records[i].position + self.checkpoint_interval,
                len(windows[i]),
            )
            for i in active
        }
        batch = [i for i in active if records[i].status == HEALTHY]
        solo = [i for i in active if records[i].status == DEGRADED]
        recovering = [i for i in active if records[i].status == QUARANTINED]
        consumed = 0

        remaining = list(batch)
        rounds = 0
        while remaining:
            rounds += 1
            if rounds > len(batch) + 1:  # pragma: no cover - safety net
                raise FleetIsolationError("isolation rounds exhausted")
            done, demoted, error = self._advance_batched(
                windows, remaining, end
            )
            consumed += done
            solo.extend(demoted)
            if error is None:
                break
            demoted_set = set(demoted)
            packed = [i for i in remaining if i not in demoted_set]
            culprits = self._attribute(windows, packed, end)
            if not culprits:
                self._rollback(packed)
                raise FleetIsolationError(
                    "batched epoch failed but no tenant reproduces the "
                    f"failure solo: {error!r}"
                ) from error
            culprit_tids = {tid for tid, _, _ in culprits}
            self._rollback([i for i in packed if i not in culprit_tids])
            for tid, exc, window_index in culprits:
                self._quarantine(tid, exc, window_index)
                if not self._parked(records[tid]):
                    recovering.append(tid)
            remaining = [i for i in packed if i not in culprit_tids]

        for tid in solo:
            consumed += self._advance_degraded(windows, tid, end)
        for tid in recovering:
            consumed += self._advance_recovery(windows, tid, end)
        self._refresh_checkpoints(windows, active)
        return consumed

    # -- batched lane ----------------------------------------------------

    def _advance_batched(
        self, windows, tids: List[int], end: Dict[int, int]
    ) -> Tuple[int, List[int], Optional[BaseException]]:
        """One batched attempt over ``tids``.

        Returns ``(consumed, demoted_tids, error)``.  On error the
        inner engine was aborted and the still-packed tenants are left
        in a suspect state for the caller to roll back; tenants demoted
        (evicted) before the failure keep their partial progress.
        """
        records = self.records
        slices = [windows[i][records[i].position : end[i]] for i in tids]
        engine = FleetEngine([self.pipelines[i] for i in tids])
        # Repair-mode supervisors are polled between steps: a repaired
        # violation marks the tenant degraded — evicted mid-run, never
        # failing the fleet.
        watch = {
            k: self.pipelines[tid].supervisor_violations
            for k, tid in enumerate(tids)
            if self.pipelines[tid].supervisor is not None
            and self.pipelines[tid].supervisor.mode == "repair"
        }
        demoted: List[int] = []
        consumed = 0
        try:
            engine.begin_run(slices)
            while engine.step_once():
                if not watch:
                    continue
                for k in list(watch):
                    tid = tids[k]
                    if self.pipelines[tid].supervisor_violations > watch[k]:
                        engine.evict(k)
                        del watch[k]
                        demoted.append(tid)
                        consumed += self._demote(
                            tid, min(engine._run_step, len(slices[k]))
                        )
            engine.end_run()
        except Exception as exc:
            engine.abort_run()
            return consumed, demoted, exc
        demoted_set = set(demoted)
        for k, tid in enumerate(tids):
            if tid in demoted_set:
                continue
            records[tid].position = end[tid]
            consumed += len(slices[k])
        return consumed, demoted, None

    def _demote(self, tid: int, n_consumed: int) -> int:
        record = self.records[tid]
        record.status = DEGRADED
        record.degradations += 1
        record.clean_streak = 0
        record.position += n_consumed
        violations = self.pipelines[tid].supervisor.violations
        if violations:
            latest = violations[-1]
            self._record_failure(
                record,
                kind=f"invariant:{latest.invariant}",
                window_index=latest.window_index,
                detail=latest.detail,
            )
        else:  # pragma: no cover - defensive
            self._record_failure(record, "invariant", None, "")
        return n_consumed

    # -- attribution -----------------------------------------------------

    def _attribute(
        self, windows, tids: List[int], end: Dict[int, int]
    ) -> List[Tuple[int, BaseException, Optional[int]]]:
        """Bisection replay: which of ``tids`` reproduce the failure?

        Batched probes over subsets (throwaway pipelines restored from
        the epoch checkpoints) narrow the search; every suspect is then
        confirmed alone on its per-tenant exact path, which also
        identifies the faulting window.  Falls back to an exhaustive
        per-tenant sweep if the bisection probes all pass.
        """
        start = perf_counter()
        results: List[Tuple[int, BaseException, Optional[int]]] = []
        try:
            if len(tids) == 1:
                hit = self._solo_probe(windows, tids[0], end)
                if hit is not None:
                    results.append(hit)
            elif tids:
                self._bisect(windows, list(tids), end, results)
            if not results and len(tids) > 1:
                for tid in tids:
                    hit = self._solo_probe(windows, tid, end)
                    if hit is not None:
                        results.append(hit)
        finally:
            self.overhead["attribution_seconds"] += perf_counter() - start
        return results

    def _bisect(self, windows, tids, end, out) -> None:
        mid = len(tids) // 2
        for half in (tids[:mid], tids[mid:]):
            if not half:
                continue
            if len(half) == 1:
                hit = self._solo_probe(windows, half[0], end)
                if hit is not None:
                    out.append(hit)
            elif self._batch_probe(windows, half, end) is not None:
                self._bisect(windows, half, end, out)

    def _solo_probe(
        self, windows, tid: int, end: Dict[int, int]
    ) -> Optional[Tuple[int, BaseException, Optional[int]]]:
        """Replay one tenant's epoch slice alone, window by window.

        Runs a throwaway pipeline restored from the tenant's checkpoint
        through its exact fused path.  Returns ``(tid, exception,
        window_index)`` for the first faulting window, or None if the
        slice replays cleanly.
        """
        self.counters["attribution_probes"] += 1
        record = self.records[tid]
        pipeline = self._restore_blob(record.checkpoint)
        span = windows[tid][record.checkpoint_position : end[tid]]
        for window in span:
            try:
                pipeline.process_windows_fast([window])
            except Exception as exc:
                return (tid, exc, getattr(window, "index", None))
        return None

    def _batch_probe(
        self, windows, tids: List[int], end: Dict[int, int]
    ) -> Optional[BaseException]:
        """Replay a tenant subset batched on throwaway pipelines."""
        self.counters["attribution_probes"] += 1
        records = self.records
        pipelines = [self._restore_blob(records[i].checkpoint) for i in tids]
        engine = FleetEngine(pipelines)
        try:
            engine.process_windows(
                [
                    windows[i][records[i].checkpoint_position : end[i]]
                    for i in tids
                ]
            )
        except Exception as exc:
            return exc
        return None

    # -- quarantine + recovery ------------------------------------------

    def _quarantine(
        self, tid: int, exc: BaseException, window_index: Optional[int]
    ) -> None:
        record = self.records[tid]
        record.status = QUARANTINED
        record.quarantines += 1
        record.recovery_attempts += 1
        record.clean_streak = 0
        self._record_failure(
            record,
            kind=type(exc).__name__,
            window_index=window_index,
            detail=str(exc),
        )
        # Whether or not recovery attempts remain, the failed advance
        # may have half-mutated the pipeline: park it on its last good
        # state either way.
        start = perf_counter()
        self.pipelines[tid] = self._restore_blob(record.checkpoint)
        record.position = record.checkpoint_position
        record.restores += 1
        self.overhead["rollback_seconds"] += perf_counter() - start

    def _advance_degraded(
        self, windows, tid: int, end: Dict[int, int]
    ) -> int:
        """Advance a degraded tenant solo on its exact path."""
        record = self.records[tid]
        pipeline = self.pipelines[tid]
        span = windows[tid][record.position : end[tid]]
        if not span:
            return 0
        baseline = pipeline.supervisor_violations
        try:
            pipeline.process_windows_fast(span)
        except Exception as exc:
            hit = self._solo_probe(windows, tid, end)
            if hit is not None:
                _, exc, window_index = hit
            else:  # pragma: no cover - non-deterministic fault
                window_index = None
            self._quarantine(tid, exc, window_index)
            return 0
        record.position = end[tid]
        if pipeline.supervisor_violations > baseline:
            record.clean_streak = 0
            latest = pipeline.supervisor.violations[-1]
            self._record_failure(
                record,
                kind=f"invariant:{latest.invariant}",
                window_index=latest.window_index,
                detail=latest.detail,
            )
        else:
            record.clean_streak += len(span)
            if record.clean_streak >= self.probation:
                record.status = HEALTHY
                record.readmissions += 1
                record.clean_streak = 0
        return len(span)

    def _advance_recovery(
        self, windows, tid: int, end: Dict[int, int]
    ) -> int:
        """Replay a quarantined tenant solo with per-window containment.

        Every window is advanced under a pre-window snapshot; a window
        that still faults is rolled back and skipped (recorded, streak
        reset).  The tenant replays its whole epoch slice — re-admission
        to the batched path is decided only at the slice end, once
        ``probation`` consecutive clean windows have accumulated.
        Deciding mid-slice would be a livelock: a tenant whose fault
        lies deeper into the slice than ``probation`` would be
        re-admitted before ever reaching (and skipping) it, then
        re-quarantined, burning its bounded attempts with no progress.
        """
        record = self.records[tid]
        start = perf_counter()
        position = record.position
        consumed = 0
        try:
            while position < end[tid]:
                window = windows[tid][position]
                pipeline = self.pipelines[tid]
                pre = self._dump(pipeline)
                baseline = pipeline.supervisor_violations
                try:
                    pipeline.process_windows_fast([window])
                    clean = pipeline.supervisor_violations == baseline
                except Exception as exc:
                    self.pipelines[tid] = self._restore_blob(pre)
                    record.skipped_windows += 1
                    record.clean_streak = 0
                    self._record_failure(
                        record,
                        kind=type(exc).__name__,
                        window_index=getattr(window, "index", None),
                        detail=str(exc),
                    )
                    position += 1
                    consumed += 1
                    continue
                position += 1
                consumed += 1
                if clean:
                    record.clean_streak += 1
                else:
                    record.clean_streak = 0
        finally:
            record.position = position
            self.overhead["recovery_seconds"] += perf_counter() - start
        if record.clean_streak >= self.probation:
            record.status = HEALTHY
            record.readmissions += 1
            record.clean_streak = 0
        return consumed

    # -- checkpoint plumbing --------------------------------------------

    def _refresh_checkpoints(self, windows, active: List[int]) -> None:
        start = perf_counter()
        for i in active:
            record = self.records[i]
            if self._parked(record):
                continue
            if record.position >= len(windows[i]):
                # Finished tenants take no trailing checkpoint; the
                # next process_windows call re-snapshots everyone.
                continue
            if record.position > record.checkpoint_position:
                record.checkpoint = self._dump(self.pipelines[i])
                record.checkpoint_position = record.position
        self.overhead["checkpoint_seconds"] += perf_counter() - start

    def _rollback(self, tids: List[int]) -> None:
        if not tids:
            return
        start = perf_counter()
        for i in tids:
            record = self.records[i]
            self.pipelines[i] = self._restore_blob(record.checkpoint)
            record.position = record.checkpoint_position
        self.counters["rollbacks"] += len(tids)
        self.overhead["rollback_seconds"] += perf_counter() - start

    def _dump(self, pipeline: DetectionPipeline) -> Dict[str, object]:
        from ..resilience.checkpoint import snapshot

        self.counters["checkpoints"] += 1
        # Stored as a plain dict: ``snapshot`` shares no mutable state
        # with the live pipeline (pinned by the checkpoint alias tests),
        # so serialisation can be deferred to the rare restore path.
        return snapshot(pipeline)

    @staticmethod
    def _restore_blob(blob: Dict[str, object]) -> DetectionPipeline:
        from ..resilience.checkpoint import restore

        # JSON round-trip = defensive deep copy: a restored pipeline must
        # never alias the stored checkpoint it may be rolled back to again.
        return restore(json.loads(json.dumps(blob)))

    def _record_failure(
        self,
        record: TenantHealth,
        kind: str,
        window_index: Optional[int],
        detail: str,
    ) -> None:
        if len(record.failures) >= _MAX_FAILURES:
            record.failures_dropped += 1
            return
        record.failures.append(
            TenantFailure(
                kind=kind,
                window_index=window_index,
                detail=detail[:_MAX_DETAIL],
                attempt=record.recovery_attempts,
            )
        )
