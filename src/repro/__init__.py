"""repro — reproduction of "An Approach for Detecting and Distinguishing
Errors versus Attacks in Sensor Networks" (Basile, Gupta, Kalbarczyk,
Iyer — DSN 2006).

Public API tour
---------------
* :class:`~repro.config.PipelineConfig` — Table 1 parameters.
* :class:`~repro.core.pipeline.DetectionPipeline` — the Fig. 1 loop:
  feed it observation windows, query alarms / diagnoses / ``M_C``.
* :mod:`repro.traces` — the synthetic Great Duck Island workload.
* :mod:`repro.faults` — the §3.3 fault and attack models plus injectors.
* :mod:`repro.sensornet` — the mote / radio / collector substrate.
* :mod:`repro.hmm` — a classic discrete-HMM library (baselines, tests).
* :mod:`repro.baselines` — detectors the paper positions itself against.
* :mod:`repro.experiments` — one callable per paper table and figure.

Quickstart
----------
>>> from repro import DetectionPipeline, PipelineConfig
>>> from repro.traces import generate_gdi_trace, window_trace_by_samples
>>> config = PipelineConfig()
>>> trace = generate_gdi_trace()
>>> pipeline = DetectionPipeline(config)
>>> for window in window_trace_by_samples(trace, config.window_samples):
...     _ = pipeline.process_window(window)
>>> model = pipeline.correct_model()   # the paper's M_C (Fig. 7)
"""

from .config import PipelineConfig
from .core.classification import AnomalyCategory, AnomalyType, Diagnosis
from .core.pipeline import DetectionPipeline, WindowResult

__version__ = "1.0.0"

__all__ = [
    "AnomalyCategory",
    "AnomalyType",
    "DetectionPipeline",
    "Diagnosis",
    "PipelineConfig",
    "WindowResult",
    "__version__",
]
