"""Tests for repro.hmm.online_em (general online HMM estimation, [10])."""

import numpy as np
import pytest

from repro.hmm import DiscreteHMM, OnlineEMEstimator, sample_sequence


@pytest.fixture
def ground_truth() -> DiscreteHMM:
    """A sticky, well-separated two-state model."""
    return DiscreteHMM(
        transition=[[0.95, 0.05], [0.05, 0.95]],
        emission=[[0.95, 0.05], [0.05, 0.95]],
        initial=[0.5, 0.5],
    )


class TestConstruction:
    def test_initial_model_is_stochastic(self):
        estimator = OnlineEMEstimator(n_states=3, n_symbols=4)
        model = estimator.current_model()
        assert np.allclose(model.transition.sum(axis=1), 1.0)
        assert np.allclose(model.emission.sum(axis=1), 1.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            OnlineEMEstimator(n_states=0, n_symbols=2)
        with pytest.raises(ValueError):
            OnlineEMEstimator(n_states=2, n_symbols=2, step_size=1.0)

    def test_deterministic_given_seed(self):
        a = OnlineEMEstimator(2, 2, seed=3)
        b = OnlineEMEstimator(2, 2, seed=3)
        for symbol in [0, 1, 1, 0, 1]:
            a.observe(symbol)
            b.observe(symbol)
        assert np.allclose(a.current_model().emission, b.current_model().emission)


class TestUpdates:
    def test_model_stays_stochastic_under_any_stream(self, rng):
        estimator = OnlineEMEstimator(3, 5, step_size=0.2)
        for symbol in rng.integers(0, 5, size=500):
            estimator.observe(int(symbol))
        model = estimator.current_model()
        assert np.allclose(model.transition.sum(axis=1), 1.0)
        assert np.allclose(model.emission.sum(axis=1), 1.0)
        assert np.all(model.emission >= 0.0)

    def test_filter_is_a_distribution(self, rng):
        estimator = OnlineEMEstimator(4, 3)
        for symbol in rng.integers(0, 3, size=100):
            estimator.observe(int(symbol))
        assert np.isclose(estimator.filter_distribution.sum(), 1.0)

    def test_rejects_out_of_alphabet_symbol(self):
        with pytest.raises(ValueError):
            OnlineEMEstimator(2, 2).observe(5)

    def test_update_counter(self):
        estimator = OnlineEMEstimator(2, 2)
        estimator.observe_sequence([0, 1, 0])
        assert estimator.n_updates == 3


class TestLearning:
    def test_recovers_emission_separation(self, ground_truth, rng):
        data = sample_sequence(ground_truth, 4000, rng).observations
        estimator = OnlineEMEstimator(2, 2, step_size=0.03, seed=1)
        estimator.observe_sequence(data)
        emission = estimator.current_model().emission
        # Up to relabelling, each state should specialise on one symbol.
        separation = max(
            emission[0, 0] * emission[1, 1], emission[0, 1] * emission[1, 0]
        )
        assert separation > 0.5

    def test_recovers_stickiness(self, ground_truth, rng):
        data = sample_sequence(ground_truth, 4000, rng).observations
        estimator = OnlineEMEstimator(2, 2, step_size=0.03, seed=1)
        estimator.observe_sequence(data)
        transition = estimator.current_model().transition
        # The chain is sticky: self-transitions should dominate.
        assert transition[0, 0] > 0.6
        assert transition[1, 1] > 0.6

    def test_tracks_a_regime_switch(self, rng):
        # Feed a long run of symbol 0 then a long run of symbol 1; the
        # filtered state must move with the regime.
        estimator = OnlineEMEstimator(2, 2, step_size=0.05, seed=2)
        estimator.observe_sequence([0] * 400)
        state_a = int(np.argmax(estimator.filter_distribution))
        estimator.observe_sequence([1] * 400)
        state_b = int(np.argmax(estimator.filter_distribution))
        emission = estimator.current_model().emission
        assert emission[state_b, 1] > 0.6
        # Either the state switched or a single state re-specialised;
        # in both cases symbol 1 must now be well explained.
        likelihood_of_one = (
            estimator.filter_distribution @ emission[:, 1]
        )
        assert likelihood_of_one > 0.6
