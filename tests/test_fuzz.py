"""Tests for the adversarial fuzz/soak harness and its CLI surface."""

import numpy as np
import pytest

from repro.cli import main
from repro.resilience.fuzz import (
    PATHOLOGY_KINDS,
    FuzzReport,
    fuzz_command,
    pathological_window,
    run_fuzz,
)


class TestPathologicalWindows:
    @pytest.mark.parametrize("kind", PATHOLOGY_KINDS)
    def test_every_kind_builds_a_valid_window(self, kind):
        rng = np.random.default_rng(3)
        window = pathological_window(7, kind, rng, n_sensors=6)
        assert window.index == 7
        assert window.n_attributes == 2
        assert window.observations.shape[1] == 2

    def test_kinds_shape_their_payloads(self):
        rng = np.random.default_rng(0)
        empty = pathological_window(1, "empty", rng)
        assert empty.observations.shape == (0, 2)
        single = pathological_window(2, "single_sensor", rng)
        assert len({m.sensor_id for m in single.messages}) == 1
        nan_burst = pathological_window(3, "nan_burst", rng)
        assert np.isnan(nan_burst.observations).any()
        inf_burst = pathological_window(4, "inf_burst", rng)
        assert np.isinf(inf_burst.observations).any()
        huge = pathological_window(5, "huge_magnitude", rng)
        assert np.max(np.abs(huge.observations)) >= 1e290
        duplicates = pathological_window(6, "duplicate_ids", rng)
        ids = [m.sensor_id for m in duplicates.messages]
        assert len(ids) > len(set(ids))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown pathology"):
            pathological_window(1, "alien", np.random.default_rng(0))

    def test_windows_are_seed_deterministic(self):
        a = pathological_window(9, "nan_burst", np.random.default_rng(11))
        b = pathological_window(9, "nan_burst", np.random.default_rng(11))
        assert np.array_equal(
            a.observations, b.observations, equal_nan=True
        )


class TestRunFuzz:
    def test_small_run_is_clean(self):
        report = run_fuzz(n_seeds=3, windows_per_seed=40, base_seed=0)
        assert report.ok
        assert report.crashes == []
        assert report.violations == []
        assert report.checkpoint_failures == []
        assert report.n_windows == 120
        assert sum(report.kind_counts.values()) == 120

    def test_runs_are_deterministic(self):
        first = run_fuzz(n_seeds=2, windows_per_seed=30, base_seed=5)
        second = run_fuzz(n_seeds=2, windows_per_seed=30, base_seed=5)
        assert first == second

    def test_base_seed_changes_the_stream(self):
        a = run_fuzz(n_seeds=1, windows_per_seed=40, base_seed=0)
        b = run_fuzz(n_seeds=1, windows_per_seed=40, base_seed=999)
        assert a.kind_counts != b.kind_counts

    @pytest.mark.parametrize("mode", ["warn", "repair", "raise"])
    def test_all_supervisor_modes_survive(self, mode):
        report = run_fuzz(
            n_seeds=2, windows_per_seed=30, base_seed=1, mode=mode
        )
        assert report.ok, report.render()

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            run_fuzz(n_seeds=0)
        with pytest.raises(ValueError):
            run_fuzz(windows_per_seed=0)
        with pytest.raises(ValueError):
            run_fuzz(checkpoint_every=0)


class TestReportAndCommand:
    def test_render_mentions_verdict_and_counts(self):
        report = run_fuzz(n_seeds=1, windows_per_seed=25, base_seed=2)
        text = report.render()
        assert "verdict: OK" in text
        assert "crashes: 0" in text
        assert "pathologies:" in text

    def test_findings_flip_verdict_and_exit_code(self):
        report = FuzzReport(
            n_seeds=1,
            windows_per_seed=1,
            base_seed=0,
            mode="warn",
            crashes=["seed 0 window 1 kind empty: RuntimeError('boom')"],
        )
        assert not report.ok
        assert "verdict: FINDINGS" in report.render()

    def test_fuzz_command_ok(self):
        text, code = fuzz_command(
            n_seeds=2, windows=20, soak=False, base_seed=0, mode="warn"
        )
        assert code == 0
        assert "verdict: OK" in text
        assert "2 seeds x 20 windows" in text

    def test_soak_variant_labelled_and_longer(self):
        text, code = fuzz_command(
            n_seeds=1, windows=None, soak=True, base_seed=0, mode="warn"
        )
        assert code == 0
        assert text.startswith("soak:")
        assert "1 seeds x 400 windows" in text


class TestCli:
    def test_repro_fuzz_smoke(self, capsys):
        code = main(
            ["fuzz", "--seeds", "2", "--windows", "15", "--base-seed", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: OK" in out

    def test_repro_fuzz_mode_flag(self, capsys):
        code = main(
            ["fuzz", "--seeds", "1", "--windows", "10", "--mode", "repair"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "supervisor mode repair" in out
