"""Tests for the §6 cluster-monitoring extension (repro.clusters)."""

import numpy as np
import pytest

from repro.core.classification import AnomalyCategory, AnomalyType
from repro.clusters import (
    CLUSTER_ADMISSIBLE_RANGES,
    EcommerceWorkloadEnvironment,
    cluster_pipeline_config,
    cryptominer_campaign,
    dashboard_deletion_campaign,
    memory_leak_campaign,
    run_cluster_scenario,
)


class TestEcommerceWorkloadEnvironment:
    def test_attributes_and_dimensionality(self):
        env = EcommerceWorkloadEnvironment(n_days=3)
        assert env.attribute_names == ("load", "latency", "cpu")
        assert env.value_at(0.0).shape == (3,)

    def test_daily_cycle_night_vs_evening(self):
        env = EcommerceWorkloadEnvironment(n_days=3, surge_probability=0.0)
        night = env.load_at(3 * 60.0)
        evening = env.load_at(20 * 60.0)
        assert evening > 2 * night

    def test_values_within_admissible_ranges(self):
        env = EcommerceWorkloadEnvironment(n_days=5)
        for minutes in range(0, 5 * 24 * 60, 30):
            value = env.value_at(float(minutes))
            for attr, (low, high) in zip(value, CLUSTER_ADMISSIBLE_RANGES):
                assert low <= attr <= high

    def test_latency_and_cpu_monotone_in_load(self):
        env = EcommerceWorkloadEnvironment()
        latencies = [env.latency_for_load(x) for x in (2.0, 10.0, 18.0)]
        cpus = [env.cpu_for_load(x) for x in (2.0, 10.0, 18.0)]
        assert latencies == sorted(latencies)
        assert cpus == sorted(cpus)

    def test_surge_days_add_midday_load(self):
        env = EcommerceWorkloadEnvironment(
            n_days=5, surge_probability=1.0, surge_boost=5.0
        )
        quiet = EcommerceWorkloadEnvironment(
            n_days=5, surge_probability=0.0, seed=env.seed
        )
        assert env.load_at(13 * 60.0) > quiet.load_at(13 * 60.0) + 3.0

    def test_deterministic_given_seed(self):
        a = EcommerceWorkloadEnvironment(seed=5)
        b = EcommerceWorkloadEnvironment(seed=5)
        assert np.allclose(a.value_at(12345.0), b.value_at(12345.0))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            EcommerceWorkloadEnvironment(base_load=10.0, peak_load=5.0)
        with pytest.raises(ValueError):
            EcommerceWorkloadEnvironment(n_days=0)


@pytest.fixture(scope="module")
def clean_cluster():
    return run_cluster_scenario(n_days=5)


@pytest.fixture(scope="module")
def leak_cluster():
    return run_cluster_scenario(n_days=6, campaign=memory_leak_campaign())


@pytest.fixture(scope="module")
def miner_cluster():
    return run_cluster_scenario(n_days=6, campaign=cryptominer_campaign())


@pytest.fixture(scope="module")
def deletion_cluster():
    return run_cluster_scenario(n_days=6, campaign=dashboard_deletion_campaign())


class TestCleanCluster:
    def test_no_tracks(self, clean_cluster):
        assert clean_cluster.pipeline.tracks.n_tracks == 0

    def test_system_verdict_none(self, clean_cluster):
        verdict = clean_cluster.pipeline.system_diagnosis().anomaly_type
        assert verdict is AnomalyType.NONE

    def test_workload_states_span_the_day(self, clean_cluster):
        model = clean_cluster.pipeline.correct_model()
        loads = sorted(
            float(model.state_vectors[s][0]) for s in model.state_ids
        )
        assert loads[0] < 8.0  # a night state
        assert loads[-1] > 14.0  # a peak state


class TestMemoryLeak:
    def test_leaking_replica_tracked(self, leak_cluster):
        tracked = {t.sensor_id for t in leak_cluster.pipeline.tracks.tracks}
        assert tracked == {4}

    def test_wedged_replica_classified_stuck(self, leak_cluster):
        diagnosis = leak_cluster.pipeline.diagnose_sensor(4)
        assert diagnosis is not None
        assert diagnosis.anomaly_type is AnomalyType.STUCK_AT
        assert diagnosis.category is AnomalyCategory.ERROR

    def test_system_level_clean(self, leak_cluster):
        verdict = leak_cluster.pipeline.system_diagnosis().anomaly_type
        assert verdict is AnomalyType.NONE


class TestCryptominer:
    def test_compromised_replica_detected(self, miner_cluster):
        tracked = {t.sensor_id for t in miner_cluster.pipeline.tracks.tracks}
        assert 7 in tracked

    def test_diagnosis_is_error_like(self, miner_cluster):
        # The paper's §3.3 caveat: an adversary mimicking an error gets
        # an error-side diagnosis; quantised ratios may land on unknown.
        diagnosis = miner_cluster.pipeline.diagnose_sensor(7)
        assert diagnosis is not None
        assert diagnosis.anomaly_type in (
            AnomalyType.CALIBRATION,
            AnomalyType.UNKNOWN_ERROR,
        )


class TestDashboardDeletion:
    def test_attack_classified(self, deletion_cluster):
        verdict = deletion_cluster.pipeline.system_diagnosis().anomaly_type
        assert verdict is AnomalyType.DYNAMIC_DELETION

    def test_all_colluders_tracked(self, deletion_cluster):
        truth = set(deletion_cluster.campaign.malicious_sensor_ids())
        tracked = {
            t.sensor_id for t in deletion_cluster.pipeline.tracks.tracks
        }
        assert truth <= tracked

    def test_colluders_diagnosed_as_attack(self, deletion_cluster):
        for sensor_id in deletion_cluster.campaign.malicious_sensor_ids():
            diagnosis = deletion_cluster.pipeline.diagnose_sensor(sensor_id)
            assert diagnosis is not None
            assert diagnosis.category is AnomalyCategory.ATTACK


class TestConfig:
    def test_cluster_config_keeps_table1_learning_factors(self):
        config = cluster_pipeline_config()
        assert config.alpha == 0.10
        assert config.beta == 0.90
        assert config.gamma == 0.90

    def test_window_is_fifteen_minutes(self):
        assert cluster_pipeline_config().window_minutes == 15.0

    def test_rejects_nonpositive_replicas(self):
        with pytest.raises(ValueError):
            run_cluster_scenario(n_replicas=0)
