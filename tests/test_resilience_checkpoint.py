"""Checkpoint/restore: component state dicts and the pipeline round-trip
property (a restored pipeline continues a trace exactly like the
original)."""

import json

import numpy as np
import pytest

from repro import DetectionPipeline, PipelineConfig
from repro.core.alarms import AlarmGenerator
from repro.core.clustering import OnlineStateClusterer
from repro.core.filtering import (
    CUSUMFilter,
    FilterBank,
    KOfNFilter,
    SPRTFilter,
    filter_from_state_dict,
)
from repro.core.identification import identify_window
from repro.core.online_hmm import OnlineHMM
from repro.core.tracks import TrackManager
from repro.resilience import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointVersionError,
    load_checkpoint,
    restore,
    save_checkpoint,
    snapshot,
)
from repro.sensornet import ObservationWindow, SensorMessage


def window(index, readings, minutes_per_window=60.0):
    """Build a window from {sensor_id: (temp, humidity)}."""
    start = (index - 1) * minutes_per_window
    messages = tuple(
        SensorMessage(
            sensor_id=sid, timestamp=start + 1.0, attributes=tuple(attrs)
        )
        for sid, attrs in sorted(readings.items())
    )
    return ObservationWindow(
        index=index,
        start_minutes=start,
        end_minutes=start + minutes_per_window,
        messages=messages,
    )


def faulty_trace(n_windows, fault_from=9, n_sensors=5):
    """Healthy windows, then sensor 4 stuck at an outlier value."""
    rng = np.random.default_rng(7)
    windows = []
    for i in range(1, n_windows + 1):
        base = (20.0 + rng.normal(0, 0.2), 75.0 + rng.normal(0, 0.5))
        readings = {s: base for s in range(n_sensors)}
        if i >= fault_from:
            readings[4] = (55.0, 5.0)
        windows.append(window(i, readings))
    return windows


def json_round_trip(payload):
    return json.loads(json.dumps(payload, sort_keys=True))


class TestComponentStateDicts:
    def test_clusterer_round_trip(self):
        clusterer = OnlineStateClusterer(
            initial_vectors=[np.array([20.0, 75.0]), np.array([40.0, 30.0])]
        )
        clusterer.update(np.array([[21.0, 74.0], [39.0, 31.0], [20.5, 74.5]]))
        clusterer.maybe_spawn(np.array([90.0, 90.0]))
        rebuilt = OnlineStateClusterer.from_state_dict(
            json_round_trip(clusterer.state_dict())
        )
        assert rebuilt.n_states == clusterer.n_states
        probe = np.array([20.8, 74.2])
        assert rebuilt.assign(probe) == clusterer.assign(probe)
        for original, copy in zip(
            clusterer.states.vectors(), rebuilt.states.vectors()
        ):
            np.testing.assert_array_equal(original, copy)

    def test_online_hmm_round_trip(self):
        hmm = OnlineHMM(transition_innovation=0.25, emission_innovation=0.25)
        for correct, observed in [(0, 0), (0, 1), (1, 1), (1, 0), (0, 0)]:
            hmm.observe(correct, observed)
        rebuilt = OnlineHMM.from_state_dict(json_round_trip(hmm.state_dict()))
        assert rebuilt.n_updates == hmm.n_updates
        np.testing.assert_array_equal(
            rebuilt.transition_matrix()[0], hmm.transition_matrix()[0]
        )
        np.testing.assert_array_equal(
            rebuilt.emission_matrix().matrix, hmm.emission_matrix().matrix
        )
        # Both must evolve identically from here on.
        hmm.observe(1, 1)
        rebuilt.observe(1, 1)
        np.testing.assert_array_equal(
            rebuilt.emission_matrix().matrix, hmm.emission_matrix().matrix
        )

    def test_empty_hmm_round_trip(self):
        hmm = OnlineHMM()
        rebuilt = OnlineHMM.from_state_dict(json_round_trip(hmm.state_dict()))
        assert rebuilt.n_updates == 0

    @pytest.mark.parametrize(
        "filt",
        [
            KOfNFilter(k=3, n=5),
            SPRTFilter(),
            CUSUMFilter(),
        ],
    )
    def test_filter_round_trip(self, filt):
        for raw in [True, True, False, True]:
            filt.update(raw)
        rebuilt = filter_from_state_dict(json_round_trip(filt.state_dict()))
        assert type(rebuilt) is type(filt)
        assert rebuilt.active == filt.active
        # Identical future behaviour, not just identical flags.
        for raw in [True, False, True, True, True]:
            assert rebuilt.update(raw) == filt.update(raw)

    def test_unknown_filter_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown alarm filter kind"):
            filter_from_state_dict({"kind": "median"})

    def test_filter_bank_round_trip(self):
        bank = FilterBank(factory=lambda: KOfNFilter(k=2, n=3))
        for i in range(4):
            bank.update(i, {0: True, 1: False})
        rebuilt = FilterBank(factory=lambda: KOfNFilter(k=2, n=3))
        rebuilt.load_state_dict(json_round_trip(bank.state_dict()))
        assert bank.update(5, {0: True, 1: True}) == rebuilt.update(
            5, {0: True, 1: True}
        )

    def test_track_manager_round_trip(self):
        tracks = TrackManager(
            transition_innovation=0.25, emission_innovation=0.25
        )
        tracks.open_track(4, window_index=3)
        tracks.record_window(0, {4: 1})
        tracks.record_window(0, {4: 1})
        rebuilt = TrackManager.from_state_dict(
            json_round_trip(tracks.state_dict())
        )
        assert len(rebuilt.tracks) == len(tracks.tracks)
        original = tracks.latest_track_for(4)
        copy = rebuilt.latest_track_for(4)
        assert copy.opened_window == original.opened_window
        assert copy.symbols == original.symbols
        np.testing.assert_array_equal(
            copy.model.emission_matrix().matrix,
            original.model.emission_matrix().matrix,
        )
        # The rebuilt manager still routes new symbols to the open track.
        rebuilt.record_window(0, {4: 1})
        assert len(rebuilt.latest_track_for(4).symbols) == 3

    def test_alarm_generator_round_trip(self):
        generator = AlarmGenerator()
        clusterer = OnlineStateClusterer(
            initial_vectors=[np.array([20.0, 75.0]), np.array([55.0, 5.0])]
        )
        per_sensor = {
            0: np.array([20.0, 75.0]),
            1: np.array([20.5, 74.5]),
            2: np.array([55.0, 5.0]),
        }
        identification = identify_window(
            clusterer, per_sensor, overall_mean=np.array([20.2, 74.8])
        )
        alarms = generator.process(1, identification)
        assert alarms, "fixture should raise a raw alarm for sensor 2"
        rebuilt = AlarmGenerator.from_state_dict(
            json_round_trip(generator.state_dict())
        )
        assert len(rebuilt.alarms) == len(generator.alarms)
        assert rebuilt.alarms[0].sensor_id == generator.alarms[0].sensor_id


class TestConfigJson:
    def test_round_trip(self):
        config = PipelineConfig(window_samples=8, alpha=0.3)
        config.classifier.orthogonality_threshold = 0.5
        rebuilt = PipelineConfig.from_json_dict(
            json_round_trip(config.to_json_dict())
        )
        assert rebuilt == config

    def test_unknown_field_rejected(self):
        payload = PipelineConfig().to_json_dict()
        payload["not_a_field"] = 1
        with pytest.raises(ValueError, match="unknown"):
            PipelineConfig.from_json_dict(payload)


class TestSnapshotRestore:
    def test_fresh_pipeline_round_trip(self):
        pipeline = DetectionPipeline(PipelineConfig())
        rebuilt = restore(json_round_trip(snapshot(pipeline)))
        assert rebuilt.clusterer is None
        assert rebuilt.n_windows == 0
        assert rebuilt.config == pipeline.config

    def test_version_mismatch_rejected(self):
        payload = snapshot(DetectionPipeline())
        payload["checkpoint_format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="checkpoint format version"):
            restore(payload)

    def test_version_error_names_found_and_expected(self):
        payload = snapshot(DetectionPipeline())
        payload["checkpoint_format_version"] = 1  # pre-supervisor layout
        with pytest.raises(CheckpointVersionError) as excinfo:
            restore(payload)
        error = excinfo.value
        assert isinstance(error, ValueError)  # old callers keep working
        assert error.found == 1
        assert error.expected == CHECKPOINT_FORMAT_VERSION
        assert "found 1" in str(error)
        assert f"expected {CHECKPOINT_FORMAT_VERSION}" in str(error)

    def test_version_error_on_missing_version_field(self):
        payload = snapshot(DetectionPipeline())
        del payload["checkpoint_format_version"]
        with pytest.raises(CheckpointVersionError) as excinfo:
            restore(payload)
        assert excinfo.value.found is None

    def test_round_trip_property_mid_trace(self):
        """The headline guarantee: crash mid-trace, restore, and the rest
        of the trace produces *identical* diagnoses and statistics."""
        windows = faulty_trace(30, fault_from=9)
        original = DetectionPipeline(PipelineConfig())
        for w in windows[:15]:
            original.process_window(w)

        rebuilt = restore(json_round_trip(snapshot(original)))
        assert rebuilt.n_windows == original.n_windows

        for w in windows[15:]:
            result_a = original.process_window(w)
            result_b = rebuilt.process_window(w)
            assert result_a.skipped == result_b.skipped
            assert result_a.correct_state == result_b.correct_state
            assert result_a.observable_state == result_b.observable_state
            assert [a.sensor_id for a in result_a.raw_alarms] == [
                a.sensor_id for a in result_b.raw_alarms
            ]

        assert rebuilt.correct_sequence == original.correct_sequence
        assert rebuilt.observable_sequence == original.observable_sequence
        assert len(rebuilt.alarm_generator.alarms) == len(
            original.alarm_generator.alarms
        )
        # B^CO and the per-track B^CE agree bit-for-bit (JSON float
        # serialization round-trips exactly).
        np.testing.assert_array_equal(
            rebuilt.m_co.emission_matrix().matrix,
            original.m_co.emission_matrix().matrix,
        )
        assert len(rebuilt.tracks.tracks) == len(original.tracks.tracks)
        for track_a, track_b in zip(original.tracks.tracks, rebuilt.tracks.tracks):
            np.testing.assert_array_equal(
                track_a.model.emission_matrix().matrix,
                track_b.model.emission_matrix().matrix,
            )

        diagnoses_a = original.diagnose_all()
        diagnoses_b = rebuilt.diagnose_all()
        assert set(diagnoses_a) == set(diagnoses_b)
        for sensor_id in diagnoses_a:
            assert (
                diagnoses_a[sensor_id].anomaly_type
                is diagnoses_b[sensor_id].anomaly_type
            )
            assert diagnoses_a[sensor_id].confidence == pytest.approx(
                diagnoses_b[sensor_id].confidence
            )
        assert (
            original.system_diagnosis().anomaly_type
            is rebuilt.system_diagnosis().anomaly_type
        )

    def test_detects_the_planted_fault_after_restore(self):
        windows = faulty_trace(30, fault_from=9)
        pipeline = DetectionPipeline(PipelineConfig())
        for w in windows[:15]:
            pipeline.process_window(w)
        rebuilt = restore(json_round_trip(snapshot(pipeline)))
        for w in windows[15:]:
            rebuilt.process_window(w)
        assert 4 in rebuilt.diagnose_all()

    def test_config_override(self):
        pipeline = DetectionPipeline(PipelineConfig())
        override = PipelineConfig(window_samples=6)
        rebuilt = restore(snapshot(pipeline), config=override)
        assert rebuilt.config.window_samples == 6

    def test_file_round_trip(self, tmp_path):
        windows = faulty_trace(12)
        pipeline = DetectionPipeline(PipelineConfig())
        for w in windows:
            pipeline.process_window(w)
        path = tmp_path / "checkpoints" / "state.json"
        save_checkpoint(pipeline, path)
        rebuilt = load_checkpoint(path)
        assert rebuilt.n_windows == 12
        assert rebuilt.correct_sequence == pipeline.correct_sequence

    def test_pipeline_snapshot_restore_methods(self):
        pipeline = DetectionPipeline(PipelineConfig())
        pipeline.process_window(
            window(1, {s: (20.0, 75.0) for s in range(5)})
        )
        rebuilt = DetectionPipeline.restore(pipeline.snapshot())
        assert rebuilt.n_windows == 1
        assert rebuilt.clusterer.n_states == pipeline.clusterer.n_states

    def test_exported_from_serialization_module(self):
        from repro.analysis import serialization

        assert serialization.CHECKPOINT_FORMAT_VERSION == CHECKPOINT_FORMAT_VERSION
        assert serialization.save_checkpoint is save_checkpoint
        assert serialization.load_checkpoint is load_checkpoint
