"""Unit tests for repro.core.tracks (error/attack track management)."""

import pytest

from repro.core.states import BOTTOM_STATE_ID
from repro.core.tracks import TrackManager


class TestTrackLifecycle:
    def test_open_and_close(self):
        manager = TrackManager()
        track = manager.open_track(sensor_id=3, window_index=10)
        assert track.is_open
        assert manager.open_sensor_ids == [3]
        closed = manager.close_track(3, window_index=20)
        assert closed is track
        assert not track.is_open
        assert track.closed_window == 20
        assert manager.open_sensor_ids == []

    def test_open_is_idempotent_while_active(self):
        manager = TrackManager()
        first = manager.open_track(3, 10)
        second = manager.open_track(3, 12)
        assert first is second
        assert manager.n_tracks == 1

    def test_reopen_after_close_creates_new_track(self):
        manager = TrackManager()
        manager.open_track(3, 10)
        manager.close_track(3, 20)
        manager.open_track(3, 30)
        assert manager.n_tracks == 2
        tracks = manager.tracks_for_sensor(3)
        assert tracks[0].closed_window == 20
        assert tracks[1].is_open

    def test_track_ids_sequential(self):
        manager = TrackManager()
        a = manager.open_track(1, 5)
        b = manager.open_track(2, 5)
        assert (a.track_id, b.track_id) == (1, 2)

    def test_close_unknown_sensor_is_none(self):
        assert TrackManager().close_track(9, 1) is None

    def test_latest_track_for(self):
        manager = TrackManager()
        assert manager.latest_track_for(1) is None
        manager.open_track(1, 5)
        manager.close_track(1, 6)
        manager.open_track(1, 9)
        assert manager.latest_track_for(1).opened_window == 9


class TestRecording:
    def test_disagreement_records_mapped_state(self):
        manager = TrackManager()
        manager.open_track(3, 1)
        manager.record_window(correct_state=0, sensor_states={3: 5})
        track = manager.latest_track_for(3)
        assert track.symbols == [(0, 5)]

    def test_agreement_records_bottom(self):
        manager = TrackManager()
        manager.open_track(3, 1)
        manager.record_window(correct_state=0, sensor_states={3: 0})
        track = manager.latest_track_for(3)
        assert track.symbols == [(0, BOTTOM_STATE_ID)]

    def test_missing_sensor_contributes_nothing(self):
        manager = TrackManager()
        manager.open_track(3, 1)
        manager.record_window(correct_state=0, sensor_states={1: 0})
        assert manager.latest_track_for(3).length == 0

    def test_only_open_tracks_record(self):
        manager = TrackManager()
        manager.open_track(3, 1)
        manager.close_track(3, 2)
        manager.record_window(correct_state=0, sensor_states={3: 5})
        assert manager.latest_track_for(3).length == 0

    def test_m_ce_is_updated_per_record(self):
        manager = TrackManager()
        manager.open_track(3, 1)
        for _ in range(5):
            manager.record_window(correct_state=0, sensor_states={3: 7})
        track = manager.latest_track_for(3)
        assert track.model.n_updates == 5
        emission = track.model.emission_matrix()
        assert 7 in emission.symbol_ids

    def test_disagreement_fraction(self):
        manager = TrackManager()
        manager.open_track(3, 1)
        manager.record_window(0, {3: 5})
        manager.record_window(0, {3: 0})
        track = manager.latest_track_for(3)
        assert track.disagreement_fraction() == pytest.approx(0.5)

    def test_empty_track_disagreement_is_zero(self):
        manager = TrackManager()
        track = manager.open_track(3, 1)
        assert track.disagreement_fraction() == 0.0

    def test_multiple_open_tracks_record_independently(self):
        manager = TrackManager()
        manager.open_track(1, 1)
        manager.open_track(2, 1)
        manager.record_window(0, {1: 4, 2: 0})
        assert manager.latest_track_for(1).symbols == [(0, 4)]
        assert manager.latest_track_for(2).symbols == [(0, BOTTOM_STATE_ID)]
