"""Unit tests for repro.sensornet.messages."""

import numpy as np
import pytest

from repro.sensornet import DeliveryRecord, MalformedMessage, SensorMessage


class TestSensorMessage:
    def test_vector_roundtrip(self):
        msg = SensorMessage(sensor_id=3, timestamp=10.0, attributes=(21.5, 80.0))
        assert np.allclose(msg.vector, [21.5, 80.0])
        assert msg.n_attributes == 2

    def test_rejects_negative_sensor_id(self):
        with pytest.raises(ValueError):
            SensorMessage(sensor_id=-1, timestamp=0.0, attributes=(1.0,))

    def test_rejects_empty_attributes(self):
        with pytest.raises(ValueError):
            SensorMessage(sensor_id=0, timestamp=0.0, attributes=())

    def test_is_hashable(self):
        msg = SensorMessage(sensor_id=0, timestamp=0.0, attributes=(1.0, 2.0))
        assert msg in {msg}

    def test_with_attributes_preserves_metadata(self):
        msg = SensorMessage(
            sensor_id=5, timestamp=42.0, attributes=(1.0, 2.0), sequence_number=9
        )
        corrupted = msg.with_attributes([3.0, 4.0])
        assert corrupted.sensor_id == 5
        assert corrupted.timestamp == 42.0
        assert corrupted.sequence_number == 9
        assert corrupted.attributes == (3.0, 4.0)

    def test_with_attributes_does_not_mutate_original(self):
        msg = SensorMessage(sensor_id=0, timestamp=0.0, attributes=(1.0,))
        msg.with_attributes([9.0])
        assert msg.attributes == (1.0,)


class TestDeliveryRecord:
    def test_delivered_ok(self):
        msg = SensorMessage(sensor_id=0, timestamp=0.0, attributes=(1.0,))
        assert DeliveryRecord(message=msg).delivered_ok

    def test_lost_is_not_ok(self):
        assert not DeliveryRecord(lost=True).delivered_ok

    def test_malformed_is_not_ok(self):
        record = DeliveryRecord(
            malformed=MalformedMessage(sensor_id=1, timestamp=5.0)
        )
        assert not record.delivered_ok
